//! Derivation-service walkthrough: cold derivation → warm cache hit → batched duplicate
//! requests, against an in-memory `lift-service` instance.
//!
//! The ROADMAP's production framing is a long-lived compiler service absorbing many
//! `(program, device)` requests. This example drives the three behaviours that make that
//! economical:
//!
//! 1. **cold miss** — the first request runs the full enumerate-and-tune search and the
//!    tuned derivation is cached under its content address (structural hash + canonical
//!    rendering as collision guard + device + tuning grid + rule-set/cost-model versions),
//! 2. **warm hit** — the same request again replays the recorded rule chain through the
//!    provenance machinery and re-validates it end to end (typecheck, compile with the
//!    ownership pass, execute, output check): one candidate instead of a search, which is
//!    orders of magnitude faster while remaining provably sound,
//! 3. **batching** — N identical requests drained as one batch deduplicate onto a single
//!    derivation; a structurally similar workload (same pattern skeleton, here the 2D
//!    tiled MM sharing the plain MM's program) warm-starts its search from the cached
//!    tuned point.
//!
//! Run with `cargo run --release --example derivation_service`.

use std::time::Instant;

use lift::service::{DerivationService, Request, ServiceConfig};
use lift::telemetry::Null;
use lift::tuner::{Strategy, TuningConfig, Workload};
use lift::vgpu::DeviceProfile;

fn request_for(workload: &Workload, device: &DeviceProfile) -> Request {
    let mut config = TuningConfig::new(
        device.clone(),
        workload.space_for(device),
        Strategy::RandomHillClimb {
            seed: 0x11f7,
            samples: 4,
            max_steps: 3,
        },
    );
    config.base.max_candidates = 3000;
    Request {
        name: workload.name.to_string(),
        program: workload.program.clone(),
        config,
    }
}

fn main() {
    let device = DeviceProfile::nvidia();
    let mut service =
        DerivationService::open(ServiceConfig::default()).expect("in-memory service opens");

    // 1. Cold: a full enumerate-and-tune search, cached under its content address.
    let request = request_for(&Workload::matrix_multiply(), &device);
    let start = Instant::now();
    let cold = service
        .request_with(request.clone(), &Null)
        .expect("cold derivation succeeds");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("== Cold miss ==");
    println!(
        "{} on {}: served {:?} in {cold_ms:.1} ms, estimated time {:.1}",
        cold.name, device.name, cold.served, cold.variant.estimated_time
    );
    for step in &cold.variant.derivation {
        println!("    {step}");
    }

    // 2. Warm: the recorded chain replays through provenance and re-proves itself.
    let start = Instant::now();
    let warm = service
        .request_with(request.clone(), &Null)
        .expect("warm hit succeeds");
    let warm_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("\n== Warm hit ==");
    println!(
        "served {:?} in {warm_ms:.1} ms ({:.0}x faster), kernel byte-identical: {}",
        warm.served,
        cold_ms / warm_ms,
        warm.variant.kernel_source == cold.variant.kernel_source
    );

    // 3. Batching: five identical requests coalesce onto the cached entry; the tiled MM —
    //    same program, different tuning grid — misses but warm-starts from the plain MM's
    //    tuned point (shared pattern skeleton).
    for _ in 0..5 {
        service.submit(request.clone());
    }
    service.submit(request_for(&Workload::mm_tiled(), &device));
    let start = Instant::now();
    let responses = service.drain_with(&Null).expect("batched drain succeeds");
    let batch_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("\n== Batched drain ({batch_ms:.1} ms) ==");
    for response in &responses {
        println!(
            "{:16} served {:?}{}",
            response.name,
            response.served,
            if response.warm_seeds > 0 {
                format!(
                    " (warm-started from {} cached seed(s))",
                    response.warm_seeds
                )
            } else {
                String::new()
            }
        );
    }

    let stats = service.stats();
    println!(
        "\nservice totals: {} requests = {} hits + {} misses + {} coalesced; \
         {} derivations run, {} warm-started",
        stats.requests,
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.derivations,
        stats.warm_started
    );
}
