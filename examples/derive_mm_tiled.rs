//! Derives the register/local-blocked tiled matrix multiply of the paper's Table 1 and
//! prints the full derivation transcript.
//!
//! No hand-lowering happens here: the exploration starts from the three-line high-level
//! `mm` program and the tiled kernel falls out of the rule system — `mm-tiled-2d` forms the
//! 2D tile grid (`split ∘ transpose ∘ split`), nests `mapWrg(1)/mapWrg(0)` work groups over
//! both dimensions, stages both tiles cooperatively into `__local` memory through 2D
//! `mapLcl` nests, and register-blocks the A-row in `__private` memory; the generic
//! fusion/lowering rules then finish the job. The recorded provenance chain is replayed
//! with [`lift::rewrite::explain`], so the transcript provably rebuilds the variant.
//!
//! Run with `cargo run --release --example derive_mm_tiled`.

use lift::benchmarks::mm;
use lift::rewrite::{explain, explore, ExplorationConfig, RuleOptions, TileSize};
use lift::vgpu::{DeviceProfile, LaunchConfig};

fn main() {
    let program = mm::high_level_program(16, 16, 16);
    println!("== High-level program ==\n{program}");

    let config = ExplorationConfig {
        max_depth: 6,
        beam_width: 400,
        max_candidates: 20_000,
        rule_options: RuleOptions {
            split_sizes: vec![4, 8],
            vector_widths: vec![4],
            tile_sizes: vec![TileSize::d2(8, 8)],
        },
        launch: LaunchConfig::d2((16, 16), (8, 8)),
        best_n: 300,
        device: DeviceProfile::nvidia(),
        ..ExplorationConfig::default()
    };
    let result = explore(&program, &config).expect("exploration runs");
    println!(
        "explored {} candidates, {} validated variants\n",
        result.explored,
        result.variants.len(),
    );

    let tiled = result
        .variants
        .iter()
        .find(|v| {
            v.derivation
                .iter()
                .any(|s| format!("{:?}", s.rule).contains("tiled"))
        })
        .expect("the 2D-tiled variant derives and validates");
    println!(
        "tiled variant: estimated time {:.1} units (best overall: {:.1})\n",
        tiled.estimated_time,
        result
            .variants
            .first()
            .map_or(f64::NAN, |v| v.estimated_time),
    );

    let explanation =
        explain(&program, &tiled.derivation, &config.rule_options).expect("recorded chain replays");
    println!("{explanation}");

    println!(
        "== Generated OpenCL kernel of the tiled variant ==\n{}",
        tiled.kernel_source
    );
}
