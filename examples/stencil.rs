//! Stencil computation with the `slide` pattern, showing the effect of array-access
//! simplification (Section 5.3 / Section 7.4 of the paper): the same program is compiled with
//! and without the optimisation and the index complexity and estimated runtimes are compared.
//!
//! Run with `cargo run --release --example stencil`.

use lift::benchmarks::runner::{run_lift, run_reference};
use lift::benchmarks::{convolution, ProblemSize};
use lift::codegen::CompilationOptions;
use lift::vgpu::DeviceProfile;

fn main() {
    let case = convolution::case(ProblemSize::Small);
    println!(
        "17-point convolution over {} output elements\n",
        case.expected.len()
    );

    let device = DeviceProfile::nvidia();
    let reference = run_reference(&case).expect("reference runs");
    println!(
        "hand-written reference  : estimated time {:>12.1} units",
        reference.estimated_time(&device)
    );

    for (label, options) in [
        ("no optimisations       ", CompilationOptions::none()),
        (
            "barrier + control flow ",
            CompilationOptions::without_array_access_simplification(),
        ),
        (
            "+ array simplification ",
            CompilationOptions::all_optimisations(),
        ),
    ] {
        let outcome = run_lift(&case, &options).expect("compiles and runs");
        assert!(outcome.correct);
        println!(
            "{label}: estimated time {:>12.1} units  ({} integer index ops, {} source lines)",
            outcome.estimated_time(&device),
            outcome.counters.int_ops + outcome.counters.div_mod_ops,
            outcome.source_lines
        );
    }

    println!(
        "\nThe array-access simplification collapses the index arithmetic introduced by the \
         sliding-window and split views; for the transposition-based benchmarks (ATAX, MM) it \
         additionally removes divisions and modulos, which is where Figure 8 of the paper \
         reports the largest effect."
    );
}
