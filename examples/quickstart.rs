//! Quickstart: write a small Lift program, compile it to OpenCL, inspect the kernel and run it
//! on the virtual GPU.
//!
//! Run with `cargo run --release --example quickstart`.

use lift::prelude::*;
use lift_vgpu::{KernelArg, LaunchConfig};

fn main() {
    // 1. Write the program: a parallel "axpy-like" pairwise multiplication
    //    out[i] = x[i] * y[i], expressed as mapGlb(mult) . zip(x, y).
    let n = ArithExpr::size_var("N");
    let mut program = Program::new("pairwise_mult");
    let mult = program.user_fun(UserFun::mult_pair());
    let map = program.map_glb(0, mult);
    let zip = program.zip2();
    program.with_root(
        vec![
            ("x", Type::array(Type::float(), n.clone())),
            ("y", Type::array(Type::float(), n)),
        ],
        |p, params| {
            let zipped = p.apply(zip, [params[0], params[1]]);
            p.apply1(map, zipped)
        },
    );
    println!("== Lift IL ==\n{program}");

    // 2. Compile it for a concrete launch configuration.
    let options = CompilationOptions::all_optimisations().with_launch_1d(1024, 128);
    let kernel = compile(&program, &options).expect("the program compiles");
    println!("== Generated OpenCL ==\n{}", kernel.source());

    // 3. Execute the generated kernel on the virtual GPU.
    let x: Vec<f32> = (0..1024).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..1024).map(|i| 0.5 * i as f32).collect();
    let result = ExecutionRequest::new(&kernel.module)
        .launch(
            &kernel.kernel_name,
            LaunchConfig::d1(1024, 128),
            vec![
                KernelArg::Buffer(x.clone()),
                KernelArg::Buffer(y.clone()),
                KernelArg::zeros(1024),
                KernelArg::Int(1024),
            ],
        )
        .expect("the kernel runs");

    let out = &result.buffers[2];
    assert!((out[10] - x[10] * y[10]).abs() < 1e-3);
    println!("out[10] = {} (expected {})", out[10], x[10] * y[10]);

    // 4. Look at the cost model: estimated times under the two device profiles.
    for device in [DeviceProfile::nvidia(), DeviceProfile::amd()] {
        println!(
            "estimated time on {:<20}: {:.1} units",
            device.name,
            result.report.estimated_time(&device)
        );
    }
}
