//! Auto-tuning walkthrough: matrix multiplication from a high-level expression to a tuned
//! OpenCL kernel, per device profile.
//!
//! The pipeline the paper's evaluation rests on (Sections 6–7) has three layers:
//!
//! 1. `lift-rewrite` *derives* OpenCL programs from the high-level expression by applying
//!    semantics-preserving rules — but under fixed numeric parameters,
//! 2. `lift-codegen`/`lift-vgpu` compile and execute each candidate, validating it against
//!    the reference interpreter and scoring it with the device cost model,
//! 3. `lift-tuner` (this example) searches the *parameter* space on top: split factors,
//!    vector widths and launch configurations, per device profile.
//!
//! The tuned launch differs from anything a fixed default would pick — and differs between
//! the NVIDIA and AMD profiles, which is the performance-portability story of the paper.
//!
//! Run with `cargo run --release --example autotune_mm`.

use lift::rewrite::{explore, ExplorationConfig};
use lift::tuner::{tune, Strategy, TuningConfig, Workload};
use lift::vgpu::DeviceProfile;

fn main() {
    // The high-level program: map(λrow. map(λcol. dot(row, col))(transpose B))(A) — no
    // OpenCL-specific pattern anywhere, and no launch configuration chosen yet.
    let workload = Workload::matrix_multiply();
    println!("== High-level program ==\n{}", workload.program);

    for device in [DeviceProfile::nvidia(), DeviceProfile::amd()] {
        println!("== Tuning for {} ==", device.name);

        // Baseline: what the exploration finds under the fixed default configuration.
        let default_best = explore(
            &workload.program,
            &ExplorationConfig {
                device: device.clone(),
                ..ExplorationConfig::default()
            },
        )
        .expect("default exploration runs")
        .variants
        .first()
        .map(|v| v.estimated_time);

        // The tuner searches (RuleOptions, launch) jointly. Points sharing rule options
        // share one rule search — only scoring reruns per launch.
        let config = TuningConfig::new(
            device.clone(),
            workload.space_for(&device),
            Strategy::RandomHillClimb {
                seed: 7,
                samples: 6,
                max_steps: 3,
            },
        );
        let result = tune(&workload.program, &config).expect("tuning runs");

        let best_point = result.best_point.expect("tuning found a point");
        let best = result.best_variant.expect("tuning found a variant");
        println!(
            "  default configuration best: {}",
            default_best.map_or("-".into(), |t| format!("{t:.1}")),
        );
        println!(
            "  tuned best:                 {:.1}  (splits {:?}, launch {:?}/{:?})",
            best.estimated_time,
            best_point.rule_options.split_sizes,
            best_point.launch.global,
            best_point.launch.local,
        );
        println!(
            "  {} points evaluated, {} rule searches ({} shared)",
            result.points_evaluated, result.enumerations, result.enumeration_cache_hits,
        );
        println!("  derivation of the winner:");
        for step in &best.derivation {
            println!("    {step}");
        }
        println!();
    }
}
