//! Explains a derivation: a step-by-step transcript of how the exploration turned the
//! high-level dot product into its best OpenCL variant.
//!
//! The search records full provenance for every candidate — the ordered rule chain with,
//! for each step, the structural path of the rewritten site and which of the rule's
//! parameterised alternatives was taken. [`lift::rewrite::explain`] replays that chain from
//! the original program and renders the intermediate expression after every application, so
//! the transcript is not a log of what probably happened but a recipe that provably
//! rebuilds the variant (the provenance round-trip test pins this for every workload).
//!
//! Run with `cargo run --release --example explain_dot_product`.

use lift::benchmarks::dot_product;
use lift::rewrite::{explain, explore, ExplorationConfig, RuleOptions};
use lift::vgpu::{DeviceProfile, LaunchConfig};

fn main() {
    let program = dot_product::high_level_program(1024);
    println!("== High-level program ==\n{program}");

    let config = ExplorationConfig {
        max_depth: 5,
        beam_width: 48,
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: vec![],
        },
        launch: LaunchConfig::d1(32, 8),
        device: DeviceProfile::nvidia(),
        best_n: 3,
        ..ExplorationConfig::default()
    };
    let result = explore(&program, &config).expect("exploration runs");
    let best = result
        .variants
        .first()
        .expect("the search found a validated variant");

    println!(
        "explored {} candidates, {} validated variants; best estimated time {:.1} units\n",
        result.explored,
        result.variants.len(),
        best.estimated_time,
    );

    let explanation =
        explain(&program, &best.derivation, &config.rule_options).expect("recorded chain replays");
    println!("{explanation}");

    println!(
        "== Generated OpenCL kernel of the explained variant ==\n{}",
        best.kernel_source
    );
}
