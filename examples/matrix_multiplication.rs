//! Matrix multiplication with two different mappings (the MM benchmark of Table 1), comparing
//! generated code against the hand-written reference kernel under both device profiles.
//!
//! Run with `cargo run --release --example matrix_multiplication`.

use lift::benchmarks::runner::{relative_performance, run_lift, run_reference};
use lift::benchmarks::{mm, ProblemSize};
use lift::codegen::CompilationOptions;
use lift::vgpu::DeviceProfile;

fn main() {
    let devices = [DeviceProfile::amd(), DeviceProfile::nvidia()];
    for (label, case) in [
        ("MM (AMD mapping)", mm::amd_case(ProblemSize::Small)),
        ("MM (NVIDIA mapping)", mm::nvidia_case(ProblemSize::Small)),
    ] {
        println!("== {label} ==");
        let generated =
            run_lift(&case, &CompilationOptions::all_optimisations()).expect("compiles and runs");
        let reference = run_reference(&case).expect("reference runs");
        assert!(generated.correct, "generated kernel must be correct");
        assert!(reference.correct, "reference kernel must be correct");
        println!(
            "  generated kernel: {} source lines",
            generated.source_lines
        );
        for device in &devices {
            let rel = relative_performance(&generated, &reference, device);
            println!(
                "  {:<22} relative performance vs hand-written: {:.2}x",
                device.name, rel
            );
        }
        println!(
            "  counters: {} flops, {} global accesses, {} local accesses, {} barriers",
            generated.counters.flops,
            generated.counters.global_accesses,
            generated.counters.local_accesses,
            generated.counters.barriers
        );
    }
}
