//! The paper's running example: the partial dot product of Listing 1, compiled to the OpenCL
//! kernel of Figure 7 and executed on the virtual GPU.
//!
//! Run with `cargo run --release --example dot_product`.

use lift::benchmarks::dot_product;
use lift::codegen::{compile, CompilationOptions};
use lift::vgpu::{DeviceProfile, ExecutionRequest, LaunchConfig};

fn main() {
    let n = 16 * 1024;
    let program = dot_product::lift_program(n);
    println!("== Listing 1 (low-level Lift IL) ==\n{program}");

    // Compile for 64 threads per work group, one work group per 128-element chunk.
    let launch = LaunchConfig::d1(n / 2, 64);
    let options = CompilationOptions::all_optimisations().with_launch(launch.global, launch.local);
    let kernel = compile(&program, &options).expect("compiles");
    println!(
        "== Generated kernel (compare with Figure 7) ==\n{}",
        kernel.source()
    );

    // Prepare inputs and launch.
    let x: Vec<f32> = (0..n).map(|i| ((i % 17) as f32) * 0.25).collect();
    let y: Vec<f32> = (0..n).map(|i| ((i % 29) as f32) - 14.0).collect();
    let (args, out_idx) = kernel
        .bind_args(&[x.clone(), y.clone()], &Default::default())
        .expect("arguments bind");
    let result = ExecutionRequest::new(&kernel.module)
        .launch(&kernel.kernel_name, launch, args)
        .expect("runs");

    // The kernel produces one partial sum per work group; finish the reduction on the host,
    // exactly as the paper does ("we omit a second kernel which sums up all intermediate
    // results").
    let partials = &result.buffers[out_idx];
    let total: f32 = partials.iter().sum();
    let expected: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
    println!("dot product = {total} (host reference {expected})");
    assert!((total - expected).abs() < 1e-2 * expected.abs());

    let device = DeviceProfile::nvidia();
    println!(
        "work groups: {}, barriers: {}, estimated time: {:.1} units",
        result.report.counters.work_groups,
        result.report.counters.barriers,
        result.report.estimated_time(&device)
    );
}
