//! Derives the convolution stencil from its high-level program and prints the best
//! variants — the stencil analogue of `derive_dot_product`.
//!
//! Run with `cargo run --release --example derive_convolution`.

use lift::benchmarks::convolution;
use lift::rewrite::{explore, ExplorationConfig, RuleOptions};
use lift::vgpu::{DeviceProfile, EngineSelection, LaunchConfig};

fn main() {
    let n_out = 128;
    let program = convolution::high_level_program(n_out, convolution::FILTER);
    println!("high-level input:\n{program}");

    let config = ExplorationConfig {
        max_depth: 5,
        beam_width: 64,
        max_candidates: 4000,
        rule_options: RuleOptions {
            split_sizes: vec![32, 64],
            vector_widths: vec![4],
            tile_sizes: vec![
                lift::rewrite::TileSize::d1(32),
                lift::rewrite::TileSize::d1(64),
            ],
        },
        launch: LaunchConfig::d1(128, 32),
        best_n: 6,
        device: DeviceProfile::nvidia(),
        // `Auto` (the default) prefers the bytecode tier and falls back per kernel.
        engine: EngineSelection::Auto,
        ..ExplorationConfig::default()
    };
    let result = explore(&program, &config).expect("exploration runs");
    println!(
        "explored {} candidates, {} lowered, {} compile-rejected, {} incorrect, {} kernels run",
        result.explored,
        result.lowered,
        result.rejected_compile,
        result.rejected_incorrect,
        result.executed_kernels
    );
    for (i, v) in result.variants.iter().enumerate() {
        println!("--- variant {i}: estimated time {:.1}", v.estimated_time);
        for step in &v.derivation {
            println!("    {:?} @ {}", step.rule, step.location);
        }
        println!("{}", v.program);
    }
}
