//! Automatic derivation of the dot product: from a high-level `map`/`reduce` expression to
//! OpenCL kernels, via the rewrite rules of `lift-rewrite`.
//!
//! The starting point is the algorithmic expression the paper begins Section 3 with —
//! `join ∘ map(reduce(+, 0)) ∘ split 128 ∘ map(×) ∘ zip` — containing no OpenCL-specific
//! pattern at all. The exploration driver applies semantics-preserving rewrite rules under a
//! budget, re-typechecks every derived expression, validates each fully lowered candidate
//! against the reference interpreter on the virtual GPU and ranks the survivors with the
//! analytical cost model. The winner's derivation chain and generated kernel are printed.
//!
//! Run with `cargo run --release --example derive_dot_product`.

use lift::ir::prelude::*;
use lift::rewrite::{explore, ExplorationConfig, RuleOptions};
use lift::vgpu::{DeviceProfile, EngineSelection, LaunchConfig};

/// The high-level partial dot product of length `n` (chunks of 128, like Listing 1).
fn high_level_dot_product(n: usize) -> Program {
    let mut p = Program::new("dot");
    let mult = p.user_fun(UserFun::mult_pair());
    let add = p.user_fun(UserFun::add());
    let multiply = p.map(mult);
    let sum = p.reduce(add, 0.0);
    let per_chunk = p.map(sum);
    let s128 = p.split(128usize);
    let j = p.join();
    let z = p.zip2();
    p.with_root(
        vec![
            ("x", Type::array(Type::float(), n)),
            ("y", Type::array(Type::float(), n)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            let products = p.apply1(multiply, zipped);
            let chunks = p.apply1(s128, products);
            let partials = p.apply1(per_chunk, chunks);
            p.apply1(j, partials)
        },
    );
    p
}

fn main() {
    let n = 1024;
    let program = high_level_dot_product(n);
    println!("== High-level program (no OpenCL-specific patterns) ==\n{program}");

    let config = ExplorationConfig {
        max_depth: 5,
        beam_width: 64,
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: vec![],
        },
        launch: LaunchConfig::d1(32, 8),
        device: DeviceProfile::nvidia(),
        best_n: 3,
        // Candidates are validated on the bytecode execution tier; kernels the bytecode
        // compiler cannot handle fall back to the interpreter with identical results.
        engine: EngineSelection::Bytecode,
        ..ExplorationConfig::default()
    };
    let result = explore(&program, &config).expect("exploration runs");

    let validated = result.lowered - result.rejected_compile - result.rejected_incorrect;
    println!(
        "explored {} rewrites: {} typecheck-rejected, {} lowered candidates, {} failed to \
         compile, {} disagreed with the interpreter, {} validated ({} best returned)\n",
        result.explored,
        result.rejected_typecheck,
        result.lowered,
        result.rejected_compile,
        result.rejected_incorrect,
        validated,
        result.variants.len(),
    );

    assert!(
        result.variants.len() >= 2,
        "the exploration should find at least two distinct lowered variants"
    );

    for (i, variant) in result.variants.iter().enumerate() {
        println!(
            "== Variant {} (estimated time {:.1} units) ==",
            i + 1,
            variant.estimated_time
        );
        println!("derivation:");
        for (step_no, step) in variant.derivation.iter().enumerate() {
            println!(
                "  {:>2}. [{:?}] {:<24} at {}",
                step_no + 1,
                step.kind,
                step.rule,
                step.location
            );
        }
        println!("lowered Lift IL:\n{}", variant.program);
    }

    let best = &result.variants[0];
    println!(
        "== Generated OpenCL kernel of the best variant ==\n{}",
        best.kernel_source
    );
}
