//! Differential test for the whole derivation pipeline: a high-level `map`/`reduce` program
//! is lowered by the `lift-rewrite` exploration, and an explored variant is compiled with
//! `lift-codegen` and executed on the `lift-vgpu` virtual GPU with inputs the exploration has
//! never seen. The result must agree with the reference interpreter — both for the original
//! high-level program and for the derived variant itself (the rules are semantics-preserving,
//! so the two references coincide).

use lift::codegen::{compile_program, CompilationOptions};
use lift::interp::{evaluate, Value};
use lift::ir::prelude::*;
use lift::rewrite::{explore, ExplorationConfig, RuleOptions};
use lift::vgpu::{ExecutionRequest, LaunchConfig};
use proptest::prelude::*;

/// High-level partial dot product over `n` elements in chunks of 32.
fn high_level_dot(n: usize) -> Program {
    let mut p = Program::new("dot");
    let mult = p.user_fun(UserFun::mult_pair());
    let add = p.user_fun(UserFun::add());
    let m1 = p.map(mult);
    let red = p.reduce(add, 0.0);
    let m2 = p.map(red);
    let s = p.split(32usize);
    let j = p.join();
    let z = p.zip2();
    p.with_root(
        vec![
            ("x", Type::array(Type::float(), n)),
            ("y", Type::array(Type::float(), n)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            let mapped = p.apply1(m1, zipped);
            let split = p.apply1(s, mapped);
            let outer = p.apply1(m2, split);
            p.apply1(j, outer)
        },
    );
    p
}

fn run_variant_on_vgpu(program: &Program, inputs: &[Vec<f32>], launch: LaunchConfig) -> Vec<f32> {
    let options = CompilationOptions::all_optimisations().with_launch(launch.global, launch.local);
    let compiled = compile_program(program, &options).expect("derived variant compiles");
    let (args, out_idx) = compiled
        .bind_args(inputs, &Default::default())
        .expect("arguments bind");
    let result = ExecutionRequest::new(&compiled.module)
        .launch_sequence(&compiled.launch_plan(launch), args)
        .expect("derived variant executes");
    result.buffers[out_idx].clone()
}

const LAUNCH: LaunchConfig = LaunchConfig {
    global: [16, 1, 1],
    local: [4, 1, 1],
};

/// The exploration is deterministic and independent of the proptest inputs, so it runs once
/// and every generated case reuses the result.
fn explored() -> &'static lift::rewrite::Exploration {
    static EXPLORATION: std::sync::OnceLock<lift::rewrite::Exploration> =
        std::sync::OnceLock::new();
    EXPLORATION.get_or_init(|| {
        let program = high_level_dot(128);
        let config = ExplorationConfig {
            max_depth: 4,
            beam_width: 32,
            rule_options: RuleOptions {
                split_sizes: vec![2],
                vector_widths: vec![4],
                tile_sizes: vec![],
            },
            launch: LAUNCH,
            best_n: 8,
            ..ExplorationConfig::default()
        };
        explore(&program, &config).expect("exploration runs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every explored variant agrees with the interpreter on inputs the exploration never saw.
    #[test]
    fn explored_variants_agree_with_the_interpreter_on_fresh_inputs(
        seed in 0u32..10_000,
        variant_choice in 0usize..8,
    ) {
        let n = 128;
        let program = high_level_dot(n);
        let launch = LAUNCH;
        let result = explored();
        prop_assert!(
            result.variants.len() >= 2,
            "expected at least two validated variants, got {}",
            result.variants.len()
        );
        let variant = &result.variants[variant_choice % result.variants.len()];

        // Fresh random inputs, different from the exploration's deterministic ones.
        let x: Vec<f32> =
            (0..n).map(|i| (((i as u32 * 37 + seed) % 23) as f32) * 0.25 - 2.5).collect();
        let y: Vec<f32> =
            (0..n).map(|i| (((i as u32 * 53 + seed) % 19) as f32) * 0.25 - 2.0).collect();
        let values = [Value::from_f32_slice(&x), Value::from_f32_slice(&y)];

        // The interpreter agrees between the original and the derived program…
        let original = evaluate(&program, &values).expect("original runs").flatten_f32();
        let derived =
            evaluate(&variant.program, &values).expect("variant runs").flatten_f32();
        prop_assert_eq!(&original, &derived, "derivation changed interpreter semantics");

        // …and the compiled variant on the virtual GPU agrees with both.
        let gpu = run_variant_on_vgpu(&variant.program, &[x, y], launch);
        prop_assert!(
            lift::vgpu::outputs_match(&gpu, &original),
            "vgpu output {:?}… disagrees with interpreter {:?}…",
            &gpu[..4.min(gpu.len())],
            &original[..4.min(original.len())]
        );
    }
}
