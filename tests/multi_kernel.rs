//! Multi-kernel compilation: programs with global-memory intermediates split at device-wide
//! synchronisation points into kernel *sequences* sharing host-allocated temporaries.
//!
//! Three properties are pinned here:
//!
//! 1. the hand-lowered two-stage dot product (`mapGlb` partial sums staged with `toGlobal`,
//!    feeding a kernel-level `reduceSeq`) compiles to two kernels sharing one global
//!    temporary and validates on the virtual GPU against the reference interpreter,
//! 2. the same schedule is **derived automatically** by the `lift-rewrite` exploration from
//!    the high-level full dot product — no hand-lowering,
//! 3. the single-kernel ↔ multi-kernel boundary: every program the old single-kernel path
//!    accepts compiles to exactly one kernel whose source is byte-identical between
//!    [`compile`] and [`compile_program`] — across the Table 1 benchmark programs and every
//!    single-kernel variant an exploration derives.

use lift::benchmarks::{all_benchmarks, dot_product, ProblemSize};
use lift::codegen::{compile, compile_program, CodegenError, CompilationOptions, CompiledProgram};
use lift::interp::{evaluate, Value};
use lift::ir::Program;
use lift::rewrite::{explore, ExplorationConfig, RuleOptions};
use lift::vgpu::{outputs_match, ExecutionRequest, LaunchConfig};

/// Executes a compiled (possibly multi-kernel) program with the shared-pool ABI.
fn run_program(compiled: &CompiledProgram, inputs: &[Vec<f32>], launch: LaunchConfig) -> Vec<f32> {
    let (args, out_idx) = compiled
        .bind_args(inputs, &Default::default())
        .expect("arguments bind");
    let result = ExecutionRequest::new(&compiled.module)
        .launch_sequence(&compiled.launch_plan(launch), args)
        .expect("kernel sequence executes");
    result.buffers[out_idx].clone()
}

fn interpret(program: &Program, inputs: &[Vec<f32>]) -> Vec<f32> {
    let values: Vec<Value> = inputs.iter().map(|v| Value::from_f32_slice(v)).collect();
    evaluate(program, &values)
        .expect("interpreter runs")
        .flatten_f32()
}

fn test_inputs(n: usize) -> Vec<Vec<f32>> {
    let x: Vec<f32> = (0..n).map(|i| ((i % 17) as f32) * 0.25 - 2.0).collect();
    let y: Vec<f32> = (0..n).map(|i| ((i % 13) as f32) * 0.5 - 3.0).collect();
    vec![x, y]
}

#[test]
fn hand_lowered_two_stage_dot_compiles_to_two_kernels_and_validates() {
    let n = 1024;
    let program = dot_product::two_stage_program(n);
    let launch = LaunchConfig::d1(8, 4);
    let options = CompilationOptions::all_optimisations().with_launch(launch.global, launch.local);
    let compiled = compile_program(&program, &options).expect("two-stage program compiles");

    // Two kernels sharing one global temporary; the producer stage is parallel, the final
    // reduction is sequential (launched as a single work item).
    assert!(compiled.is_multi_kernel());
    assert_eq!(compiled.kernels.len(), 2);
    assert_eq!(compiled.temp_buffers.len(), 1);
    assert!(compiled.kernels[0].parallel, "stage 1 is the mapGlb stage");
    assert!(
        !compiled.kernels[1].parallel,
        "stage 2 is a sequential kernel-level reduction"
    );
    let source = compiled.source();
    assert!(source.contains("kernel void two_stage_dot_k0"));
    assert!(source.contains("kernel void two_stage_dot_k1"));
    // The temporary is a kernel parameter of both stages and documented in the host ABI.
    let tmp = &compiled.temp_buffers[0].name;
    assert!(source.contains("host ABI"));
    assert_eq!(source.matches(&format!("*{tmp}")).count(), 2);

    // The launch plan: full ND-range for the parallel stage, a single work item for the
    // sequential one.
    let plan = compiled.launch_plan(launch);
    assert_eq!(plan[0].launch, launch);
    assert_eq!(plan[1].launch, LaunchConfig::d1(1, 1));

    // Differential validation against the reference interpreter.
    let inputs = test_inputs(n);
    let actual = run_program(&compiled, &inputs, launch);
    let expected = interpret(&program, &inputs);
    assert!(
        outputs_match(&actual, &expected),
        "vgpu {actual:?} vs interpreter {expected:?}"
    );

    // The single-kernel entry point rejects the program with a pointer to the new API.
    match compile(&program, &options) {
        Err(CodegenError::Unsupported(msg)) => {
            assert!(msg.contains("compile_program"), "unexpected message: {msg}")
        }
        other => panic!("expected an Unsupported error, got {other:?}"),
    }
}

#[test]
fn rewrite_derives_the_two_stage_schedule_without_hand_lowering() {
    // The acceptance workload: the high-level full dot product, lowered purely by the rule
    // engine. Among the validated variants there must be a multi-kernel derivation: mapGlb
    // partial sums staged with toGlobal feeding a second kernel-level reduce.
    let n = 1024;
    let program = dot_product::high_level_full_program(n);
    let config = ExplorationConfig {
        max_depth: 7,
        beam_width: 64,
        max_candidates: 6000,
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: vec![],
        },
        launch: LaunchConfig::d1(8, 4),
        best_n: 16,
        ..ExplorationConfig::default()
    };
    let result = explore(&program, &config).expect("exploration runs");
    assert!(
        !result.variants.is_empty(),
        "no validated variants (lowered {}, compile-rejected {}, incorrect {})",
        result.lowered,
        result.rejected_compile,
        result.rejected_incorrect
    );
    let multi: Vec<_> = result
        .variants
        .iter()
        .filter(|v| v.kernel_count >= 2)
        .collect();
    assert!(
        !multi.is_empty(),
        "no multi-kernel variant among {} validated variants",
        result.variants.len()
    );
    // The derivation used the toGlobal lowering rule and a mapGlb lowering.
    let derived = multi
        .iter()
        .find(|v| {
            v.derivation.iter().any(|s| s.rule == "wrap-toGlobal")
                && v.derivation.iter().any(|s| s.rule == "map-to-mapGlb")
        })
        .expect("a toGlobal(mapGlb …) derivation exists among the multi-kernel variants");
    assert!(derived.kernel_source.contains("get_global_id"));
    // Every variant explore returns was already validated against the interpreter on the
    // exploration's own inputs; re-validate the derived program on fresh inputs end to end.
    let options = CompilationOptions::all_optimisations()
        .with_launch(config.launch.global, config.launch.local);
    let compiled =
        compile_program(&derived.program, &options).expect("derived two-stage program compiles");
    assert!(compiled.is_multi_kernel());
    assert!(!compiled.temp_buffers.is_empty());
    let inputs = test_inputs(n);
    let actual = run_program(&compiled, &inputs, config.launch);
    let expected = interpret(&derived.program, &inputs);
    assert!(
        outputs_match(&actual, &expected),
        "vgpu {actual:?} vs interpreter {expected:?}"
    );
}

#[test]
fn single_kernel_programs_compile_identically_on_both_paths() {
    // Property over the Table 1 benchmark programs: everything the old single-kernel path
    // accepts compiles to exactly one kernel, and `compile` and `compile_program` agree
    // byte for byte.
    for case in all_benchmarks(ProblemSize::Small) {
        let options = CompilationOptions::all_optimisations()
            .with_launch(case.launch.global, case.launch.local);
        let single = compile(&case.program, &options)
            .unwrap_or_else(|e| panic!("{}: single-kernel compile failed: {e}", case.info.name));
        let multi = compile_program(&case.program, &options)
            .unwrap_or_else(|e| panic!("{}: compile_program failed: {e}", case.info.name));
        assert_eq!(multi.kernels.len(), 1, "{}", case.info.name);
        assert!(multi.temp_buffers.is_empty(), "{}", case.info.name);
        assert_eq!(single.source(), multi.source(), "{}", case.info.name);
        assert_eq!(
            single.kernel_name, multi.kernels[0].name,
            "{}",
            case.info.name
        );
        assert_eq!(single.params, multi.params, "{}", case.info.name);
    }
}

#[test]
fn explored_single_kernel_variants_are_byte_identical_on_both_paths() {
    // The same boundary property over machine-derived programs: every single-kernel variant
    // of a partial-dot exploration compiles identically through both entry points.
    let program = dot_product::high_level_program(512);
    let config = ExplorationConfig {
        max_depth: 5,
        beam_width: 48,
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: vec![],
        },
        launch: LaunchConfig::d1(16, 4),
        // The cost model now often prefers multi-kernel schedules; keep enough variants to
        // cover the single-kernel ones this test is about.
        best_n: 60,
        ..ExplorationConfig::default()
    };
    let result = explore(&program, &config).expect("exploration runs");
    assert!(!result.variants.is_empty());
    let mut checked = 0;
    for variant in &result.variants {
        if variant.kernel_count != 1 {
            continue;
        }
        let options = CompilationOptions::all_optimisations()
            .with_launch(config.launch.global, config.launch.local);
        let single = compile(&variant.program, &options).expect("single-kernel path compiles");
        let multi = compile_program(&variant.program, &options).expect("program path compiles");
        assert_eq!(multi.kernels.len(), 1);
        assert_eq!(single.source(), multi.source());
        assert_eq!(single.source(), variant.kernel_source);
        checked += 1;
    }
    assert!(checked > 0, "no single-kernel variants to check");
}
