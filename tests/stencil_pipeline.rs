//! End-to-end tests of the stencil subsystem: `pad` boundary handling through the whole
//! pipeline (ir → interp → codegen → vgpu), automatic derivation of the convolution and
//! Jacobi kernels by the rewrite engine, and the overlapped-tiling (`toLocal`-staged)
//! variant winning the cost-guided search with a tuner-searched tile size.

use lift::arith::Environment;
use lift::benchmarks::{convolution, jacobi};
use lift::codegen::{compile, CompilationOptions};
use lift::interp::{evaluate, Value};
use lift::ir::{PadMode, Program, Type, UserFun};
use lift::rewrite::{explore, ExplorationConfig, RuleOptions};
use lift::vgpu::{DeviceProfile, ExecutionRequest, LaunchConfig};
use lift_bench::autotune_config;
use lift_tuner::{tune, Workload};
use proptest::prelude::*;

// --------------------------------------------------------------- pad property tests

/// `mapGlb(reduceSeq(add, 0)) ∘ slide(3, 1) ∘ pad(left, right, mode)`: a boundary-handled
/// 3-point sum whose output covers every padded window.
fn padded_stencil(n: usize, left: usize, right: usize, mode: PadMode) -> Program {
    let mut p = Program::new("padded_stencil");
    let add = p.user_fun(UserFun::add());
    let red = p.reduce_seq(add, 0.0);
    let glb = p.map_glb(0, red);
    let pad = p.pad(left, right, mode);
    let s = p.slide(3usize, 1usize);
    p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
        let padded = p.apply1(pad, params[0]);
        let windows = p.apply1(s, padded);
        p.apply1(glb, windows)
    });
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every pad mode and random sizes/offsets, the vgpu-executed compiled kernel
    /// agrees with the interpreter — and executes without a single out-of-bounds read (the
    /// virtual GPU fails the launch on any OOB access, so a successful run is the proof).
    #[test]
    fn pad_modes_agree_between_interpreter_and_vgpu(
        n in 6usize..40,
        left in 0usize..4,
        right in 0usize..4,
        mode_pick in 0u8..3,
        seed in 0u32..1000,
    ) {
        let mode = [PadMode::Clamp, PadMode::Mirror, PadMode::Wrap][mode_pick as usize];
        // n >= 6 > left/right, so a mirror reflection stays within one array length and
        // the padded array always admits at least one window.

        let program = padded_stencil(n, left, right, mode);
        let input: Vec<f32> = (0..n)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((h >> 7) % 17) as f32 * 0.25 - 2.0
            })
            .collect();
        let expected = evaluate(&program, &[Value::from_f32_slice(&input)])
            .expect("interpreter runs")
            .flatten_f32();

        let out_len = n + left + right - 2;
        let local = [1usize, 2, 4][(seed % 3) as usize].min(out_len.max(1));
        let global = out_len.div_ceil(local) * local;
        let options =
            CompilationOptions::all_optimisations().with_launch_1d(global, local);
        let kernel = compile(&program, &options).expect("compiles");
        let (args, buffer_index) = kernel
            .bind_args(std::slice::from_ref(&input), &Environment::new())
            .expect("arguments bind");
        // Any out-of-bounds access fails the launch with `VgpuError::OutOfBounds`.
        let result = ExecutionRequest::new(&kernel.module)
            .launch(&kernel.kernel_name, LaunchConfig::d1(global, local), args)
            .expect("vgpu executes the padded stencil without out-of-bounds accesses");
        let out = &result.buffers[buffer_index];
        prop_assert_eq!(out.len(), expected.len());
        for (i, (a, e)) in out.iter().zip(&expected).enumerate() {
            prop_assert!(
                (a - e).abs() <= 1e-3 * (1.0 + e.abs()),
                "element {}: vgpu {} vs interpreter {}",
                i, a, e
            );
        }
    }
}

// ------------------------------------------------------- automatic stencil derivation

fn conv_exploration_config(tile_sizes: Vec<lift::rewrite::TileSize>) -> ExplorationConfig {
    ExplorationConfig {
        max_depth: 5,
        beam_width: 64,
        max_candidates: 4000,
        rule_options: RuleOptions {
            split_sizes: vec![16, 32],
            vector_widths: vec![4],
            tile_sizes,
        },
        launch: LaunchConfig::d1(128, 16),
        best_n: 12,
        device: DeviceProfile::nvidia(),
        ..ExplorationConfig::default()
    }
}

/// The rule engine re-derives the paper's Section 3.2 convolution kernel — the
/// `mapWrg(mapLcl(reduceSeq ∘ zip(weights))) ∘ split ∘ slide` shape of the hand-lowered
/// [`convolution::lift_program`] — from the high-level stencil program, and every returned
/// variant is a validated implementation of the same convolution.
#[test]
fn exploration_rederives_the_section32_convolution_kernel() {
    let n_out = 128;
    let program = convolution::high_level_program(n_out, convolution::FILTER);
    let result = explore(&program, &conv_exploration_config(vec![])).expect("exploration runs");
    assert!(!result.variants.is_empty(), "no validated variants");

    // Differential check against the host reference: every variant is validated against
    // the interpreter by the explorer; spot-check the best one against the host too.
    let input: Vec<f32> = (0..n_out + convolution::FILTER - 1)
        .map(|i| ((i % 11) as f32) * 0.25 - 1.0)
        .collect();
    let weights: Vec<f32> = (0..convolution::FILTER)
        .map(|i| ((i % 5) as f32) * 0.1 - 0.2)
        .collect();
    let expected = convolution::host_reference(&input, &weights);
    for v in &result.variants {
        let out = evaluate(
            &v.program,
            &[
                Value::from_f32_slice(&input),
                Value::from_f32_slice(&weights),
            ],
        )
        .expect("derived variant runs")
        .flatten_f32();
        assert_eq!(out.len(), expected.len());
        for (a, e) in out.iter().zip(&expected) {
            assert!((a - e).abs() < 1e-3 * (1.0 + e.abs()), "{a} vs {e}");
        }
    }

    // The Section 3.2 shape: a work-group kernel over split slide windows.
    let section32 = result.variants.iter().find(|v| {
        let rendering = v.program.to_string();
        v.derivation
            .iter()
            .any(|s| s.rule == "map-to-mapWrg-mapLcl")
            && rendering.contains("mapWrg0(mapLcl0")
            && rendering.contains("slide(17,1)")
    });
    assert!(
        section32.is_some(),
        "no mapWrg∘mapLcl∘split∘slide variant was derived; got derivations {:?}",
        result
            .variants
            .iter()
            .map(|v| v.derivation.iter().map(|s| s.rule).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
}

/// With tile sizes enabled, the overlapped-tiling rule derives the `toLocal`-staged
/// work-group kernel: each group cooperatively copies its overlapping tile into local
/// memory before the per-window reductions.
#[test]
fn exploration_derives_the_local_staged_tiled_convolution() {
    let program = convolution::high_level_program(128, convolution::FILTER);
    let result = explore(
        &program,
        &conv_exploration_config(vec![
            lift::rewrite::TileSize::d1(16),
            lift::rewrite::TileSize::d1(32),
        ]),
    )
    .expect("exploration runs");
    let staged = result
        .variants
        .iter()
        .find(|v| v.derivation.iter().any(|s| s.rule == "stencil-wrg-tiling"))
        .expect("the overlapped-tiling derivation validates");
    let rendering = staged.program.to_string();
    assert!(rendering.contains("toLocal(mapLcl0(id))"), "{rendering}");
    // Tile of v windows over a 17-wide filter = slide(v + 16, v).
    assert!(
        rendering.contains("slide(32,16)") || rendering.contains("slide(48,32)"),
        "tile slide missing: {rendering}"
    );
    // The staged kernel really stages: its source declares a local array and barriers.
    assert!(
        staged.kernel_source.contains("local float"),
        "{}",
        staged.kernel_source
    );
    assert!(
        staged.kernel_source.contains("barrier("),
        "{}",
        staged.kernel_source
    );
}

/// The 2D Jacobi stencil derives automatically from `pad2d`/`slide2d` — the mapped layout
/// patterns compile as index views — and validates against the host reference.
#[test]
fn jacobi_2d_derives_automatically_and_matches_the_host_reference() {
    let (rows, cols) = (8usize, 12usize);
    let program = jacobi::high_level_program(rows, cols);
    let config = ExplorationConfig {
        max_depth: 10,
        beam_width: 32,
        max_candidates: 6000,
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: vec![lift::rewrite::TileSize::d1(4)],
        },
        launch: LaunchConfig::d1(8, 4),
        best_n: 4,
        device: DeviceProfile::nvidia(),
        ..ExplorationConfig::default()
    };
    let result = explore(&program, &config).expect("exploration runs");
    assert!(
        !result.variants.is_empty(),
        "no validated jacobi variants (lowered {}, compile-rejected {}, incorrect {})",
        result.lowered,
        result.rejected_compile,
        result.rejected_incorrect
    );

    let grid: Vec<f32> = (0..rows * cols)
        .map(|i| ((i % 7) as f32) * 0.25 - 0.5)
        .collect();
    let expected = jacobi::host_reference(&grid, rows, cols);
    for v in &result.variants {
        let out = evaluate(
            &v.program,
            &[
                Value::from_f32_matrix(&grid, rows, cols),
                Value::from_f32_slice(&jacobi::WEIGHTS),
            ],
        )
        .expect("derived jacobi runs")
        .flatten_f32();
        assert_eq!(out.len(), expected.len());
        for (i, (a, e)) in out.iter().zip(&expected).enumerate() {
            assert!(
                (a - e).abs() < 1e-3 * (1.0 + e.abs()),
                "point {i}: {a} vs {e}"
            );
        }
        // The derived kernels read the padded grid through views: the clamp pad's
        // branch-free min/max indexing appears in the source.
        assert!(
            v.kernel_source.contains("min(") && v.kernel_source.contains("max("),
            "expected clamped pad indexing in:\n{}",
            v.kernel_source
        );
    }
}

// ------------------------------------------------------------- the tiled variant wins

/// Acceptance: on the NVIDIA profile, the overlapped-tiling (`toLocal`-staged) variant
/// wins the joint `(RuleOptions × launch)` search for the 1D convolution, at a
/// tuner-searched tile size. (On the AMD profile the wider wavefronts amortise the
/// per-access issue cost further and the unstaged work-group variant keeps winning — the
/// kind of device-specific outcome the auto-tuner exists to discover.)
#[test]
fn staged_tiled_convolution_wins_the_tuned_search_on_nvidia() {
    let workload = Workload::convolution_1d();
    let device = DeviceProfile::nvidia();
    let config = autotune_config(&workload, &device);
    let result = tune(&workload.program, &config).expect("tuning runs");
    let best = result.best_variant.as_ref().expect("a best variant exists");
    assert!(
        best.derivation
            .iter()
            .any(|s| s.contains("stencil-wrg-tiling")),
        "tuned best is not the overlapped-tiling variant: {:?}",
        best.derivation
    );
    let point = result.best_point.as_ref().expect("a best point exists");
    assert!(
        !point.rule_options.tile_sizes.is_empty(),
        "the winning point carries no searched tile sizes"
    );
    assert!(
        best.kernel_source.contains("local float"),
        "the winning kernel does not stage its tile in local memory"
    );
}
