//! Differential soundness properties tying the two race-robustness layers together:
//!
//! 1. **Static accept ⇒ dynamically race-free.** For every candidate the rewrite
//!    exploration derives from the six tuned workloads, passing the compile-time
//!    parallelism-ownership pass implies the virtual GPU's shadow-memory race detector
//!    observes no conflict — scoring with the detector on rejects nothing the plain run
//!    accepts, and produces byte-identical variants.
//!
//! 2. **The committed tuned-best derivations are sound.** Every `best` entry of the
//!    committed `BENCH_autotune.json` replays to a variant that the ownership pass accepts
//!    and the race detector leaves untouched, with the committed estimated time.

use lift::rewrite::{enumerate, ExplorationConfig, RuleOptions};
use lift::tuner::Workload;
use lift::vgpu::{DeviceProfile, EngineSelection, LaunchConfig};
use lift_bench::autotune_config;
use lift_bench::schema::{parse, Json};

/// A launch every workload's lowered candidates execute correctly under (the virtual GPU
/// masks surplus work items, so a fixed grid works across problem sizes).
const LAUNCH: LaunchConfig = LaunchConfig {
    global: [64, 1, 1],
    local: [16, 1, 1],
};

/// The workload's canonical search configuration at one representative point: the shared
/// autotune budgets (depth, beam, candidate cap) with a fixed launch and rule options.
fn workload_config(workload: &Workload, device: &DeviceProfile) -> ExplorationConfig {
    ExplorationConfig {
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: workload.tile_sets.first().cloned().unwrap_or_default(),
        },
        launch: LAUNCH,
        ..autotune_config(workload, device).base
    }
}

#[test]
fn static_accept_implies_dynamically_race_free_across_all_workloads() {
    let device = DeviceProfile::nvidia();
    for workload in Workload::all() {
        let config = workload_config(&workload, &device);
        let enumerated = enumerate(&workload.program, &config)
            .unwrap_or_else(|e| panic!("{}: enumeration fails: {e}", workload.name));
        assert!(
            enumerated.lowered() > 0,
            "{}: the search lowered no candidates",
            workload.name
        );
        let detected = enumerated
            .score(&config)
            .unwrap_or_else(|e| panic!("{}: scoring fails: {e}", workload.name));
        let plain = enumerated
            .score(&ExplorationConfig {
                detect_races: false,
                ..config
            })
            .unwrap_or_else(|e| panic!("{}: scoring fails: {e}", workload.name));

        // The property: no statically accepted candidate races dynamically.
        assert_eq!(
            detected.rejected_race, 0,
            "{}: a statically accepted candidate raced: {:?}",
            workload.name, detected.soundness.dynamic_rejections
        );
        assert_eq!(
            detected.rejected_divergence, 0,
            "{}: a statically accepted candidate diverged at a barrier: {:?}",
            workload.name, detected.soundness.dynamic_rejections
        );
        assert!(detected.soundness.dynamic_rejections.is_empty());

        // The detector changes nothing else: same static verdicts, same execution
        // verdicts, byte-identical winners.
        assert_eq!(detected.rejected_unsound, plain.rejected_unsound);
        assert_eq!(detected.rejected_compile, plain.rejected_compile);
        assert_eq!(detected.rejected_incorrect, plain.rejected_incorrect);
        assert_eq!(detected.executed_kernels, plain.executed_kernels);
        assert_eq!(
            detected.variants.len(),
            plain.variants.len(),
            "{}: detector changed the variant count",
            workload.name
        );
        assert!(!detected.variants.is_empty(), "{}", workload.name);
        for (a, b) in detected.variants.iter().zip(&plain.variants) {
            assert_eq!(a.kernel_source, b.kernel_source, "{}", workload.name);
            assert_eq!(a.estimated_time, b.estimated_time, "{}", workload.name);
            assert_eq!(a.counters, b.counters, "{}", workload.name);
        }
    }
}

fn f64s(json: &Json) -> Vec<f64> {
    json.as_arr()
        .expect("numeric array")
        .iter()
        .filter_map(Json::as_f64)
        .collect()
}

fn launch_dims(json: &Json) -> [usize; 3] {
    let dims = f64s(json);
    assert_eq!(dims.len(), 3);
    [dims[0] as usize, dims[1] as usize, dims[2] as usize]
}

#[test]
fn committed_tuned_best_derivations_are_statically_accepted_and_race_free() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_autotune.json");
    let doc = parse(&std::fs::read_to_string(path).expect("read BENCH_autotune.json"))
        .expect("parse BENCH_autotune.json");
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .expect("results[]");
    assert!(!results.is_empty());
    let workloads = Workload::all();

    for entry in results {
        let name = entry
            .get("workload")
            .and_then(Json::as_str)
            .expect("workload name");
        let device = match entry.get("device").and_then(Json::as_str) {
            Some("nvidia-titan-black") => DeviceProfile::nvidia(),
            Some("amd-r9-295x2") => DeviceProfile::amd(),
            other => panic!("{name}: unknown device {other:?}"),
        };
        let Some(best) = entry.get("best").filter(|b| !matches!(b, Json::Null)) else {
            panic!("{name}: committed entry without a tuned best");
        };
        let workload = workloads
            .iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("unknown workload {name}"));

        // Rebuild the exact exploration the tuner ran at its best point.
        let config = ExplorationConfig {
            rule_options: RuleOptions {
                split_sizes: f64s(best.get("split_sizes").expect("split_sizes"))
                    .iter()
                    .map(|v| *v as i64)
                    .collect(),
                vector_widths: f64s(best.get("vector_widths").expect("vector_widths"))
                    .iter()
                    .map(|v| *v as usize)
                    .collect(),
                // Each committed tile is a `[rows, cols]` pair (1D stencil tiles are
                // `[1, x]`).
                tile_sizes: best
                    .get("tile_sizes")
                    .and_then(Json::as_arr)
                    .expect("tile_sizes")
                    .iter()
                    .map(|pair| {
                        let pair = f64s(pair);
                        assert_eq!(pair.len(), 2, "tile_sizes entries are [rows, cols]");
                        lift::rewrite::TileSize::d2(pair[0] as i64, pair[1] as i64)
                    })
                    .collect(),
            },
            launch: LaunchConfig {
                global: launch_dims(best.get("global").expect("global")),
                local: launch_dims(best.get("local").expect("local")),
            },
            ..autotune_config(workload, &device).base
        };
        let expected: Vec<&str> = best
            .get("derivation")
            .and_then(Json::as_arr)
            .expect("derivation")
            .iter()
            .map(|s| s.as_str().expect("derivation step"))
            .collect();
        let tuned_best_time = entry
            .get("tuned_best_time")
            .and_then(Json::as_f64)
            .expect("tuned_best_time");

        // Score with the race detector on (the default): the committed winner must
        // survive as the point's best variant with the committed estimated time.
        let enumerated = enumerate(&workload.program, &config)
            .unwrap_or_else(|e| panic!("{name}/{}: enumeration fails: {e}", device.name));
        let scored = enumerated
            .score(&config)
            .unwrap_or_else(|e| panic!("{name}/{}: scoring fails: {e}", device.name));
        assert_eq!(scored.rejected_race, 0, "{name}/{}", device.name);
        assert_eq!(scored.rejected_divergence, 0, "{name}/{}", device.name);
        let winner = scored
            .variants
            .first()
            .unwrap_or_else(|| panic!("{name}/{}: no variant survived", device.name));
        let derivation: Vec<String> = winner
            .derivation
            .iter()
            .map(|s| format!("{} @ {}", s.rule, s.location))
            .collect();
        assert_eq!(
            derivation, expected,
            "{name}/{}: tuned-best derivation changed",
            device.name
        );
        assert!(
            (winner.estimated_time - tuned_best_time).abs() <= 1e-3 * tuned_best_time,
            "{name}/{}: tuned-best time drifted: {} vs committed {tuned_best_time}",
            device.name,
            winner.estimated_time
        );

        // …and the detector did not perturb the result: the plain scoring yields a
        // byte-identical winner.
        let plain = enumerated
            .score(&ExplorationConfig {
                detect_races: false,
                ..config.clone()
            })
            .unwrap_or_else(|e| panic!("{name}/{}: scoring fails: {e}", device.name));
        let plain_winner = plain.variants.first().expect("plain winner");
        assert_eq!(winner.kernel_source, plain_winner.kernel_source);
        assert_eq!(winner.estimated_time, plain_winner.estimated_time);

        // The bytecode tier replays the committed tuned-best to the bit: same derivation,
        // same counters, same estimated time as the interpreter-backed scoring above.
        let bytecode = enumerated
            .score(&ExplorationConfig {
                engine: EngineSelection::Bytecode,
                ..config
            })
            .unwrap_or_else(|e| panic!("{name}/{}: bytecode scoring fails: {e}", device.name));
        assert_eq!(bytecode.rejected_race, 0, "{name}/{}", device.name);
        assert_eq!(bytecode.rejected_divergence, 0, "{name}/{}", device.name);
        let bytecode_winner = bytecode
            .variants
            .first()
            .unwrap_or_else(|| panic!("{name}/{}: no bytecode variant", device.name));
        assert_eq!(winner.kernel_source, bytecode_winner.kernel_source);
        assert_eq!(winner.counters, bytecode_winner.counters);
        assert_eq!(
            winner.estimated_time.to_bits(),
            bytecode_winner.estimated_time.to_bits(),
            "{name}/{}: bytecode tuned-best time drifted",
            device.name
        );
    }
}
