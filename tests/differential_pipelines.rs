//! Differential property test: randomly composed data-layout pipelines are compiled with the
//! full Lift pipeline and executed on the virtual GPU; the result must always agree with the
//! reference interpreter (and therefore with the denotational semantics of the patterns).
//!
//! The generated programs have the shape
//! `join . mapWrg(mapLcl(f)) . split L . <random layout prefix>` where the prefix is a random
//! sequence of `gather(reverse)`, `split k . join`, and `gather(stride)` steps — i.e. exactly
//! the kind of view compositions whose index generation (Section 5.3) is the subtle part of
//! the compiler.

use lift::codegen::{compile, CompilationOptions};
use lift::interp::{evaluate, Value};
use lift::ir::prelude::*;
use lift::vgpu::{ExecutionRequest, LaunchConfig};
use lift_arith::ArithExpr;
use proptest::prelude::*;

/// One data-layout step applied before the parallel copy.
#[derive(Clone, Debug)]
enum LayoutStep {
    Reverse,
    /// `join . split k` (a no-op data movement exercising both views).
    SplitJoin(usize),
    /// `gather(stride s)`, a transposition-style permutation.
    Stride(usize),
}

fn layout_step() -> impl Strategy<Value = LayoutStep> {
    prop_oneof![
        Just(LayoutStep::Reverse),
        prop_oneof![Just(2usize), Just(4), Just(8)].prop_map(LayoutStep::SplitJoin),
        prop_oneof![Just(2usize), Just(4), Just(8)].prop_map(LayoutStep::Stride),
    ]
}

/// Builds the program for a fixed input length of 128 elements and 32-wide work groups.
fn build_program(steps: &[LayoutStep], negate: bool) -> Program {
    const N: usize = 128;
    let mut p = Program::new("pipeline");
    let f = if negate {
        p.user_fun(
            UserFun::new(
                "negate",
                vec![("x", Type::float())],
                Type::float(),
                ScalarExpr::cf(0.0).sub(ScalarExpr::param(0)),
            )
            .expect("well-formed"),
        )
    } else {
        p.user_fun(UserFun::id_float())
    };
    let ml = p.map_lcl(0, f);
    let wg = p.map_wrg(0, ml);
    let split32 = p.split(32usize);
    let join_out = p.join();
    p.with_root(
        vec![("x", Type::array(Type::float(), ArithExpr::cst(N as i64)))],
        |p, params| {
            let mut value = params[0];
            for step in steps {
                value = match step {
                    LayoutStep::Reverse => {
                        let g = p.gather(Reorder::Reverse);
                        p.apply1(g, value)
                    }
                    LayoutStep::SplitJoin(k) => {
                        let s = p.split(*k);
                        let j = p.join();
                        let split = p.apply1(s, value);
                        p.apply1(j, split)
                    }
                    LayoutStep::Stride(s) => {
                        let g = p.gather(Reorder::Stride(ArithExpr::cst(*s as i64)));
                        p.apply1(g, value)
                    }
                };
            }
            let split = p.apply1(split32, value);
            let mapped = p.apply1(wg, split);
            p.apply1(join_out, mapped)
        },
    );
    p
}

fn run_compiled(program: &Program, input: &[f32], simplify: bool) -> Vec<f32> {
    let options = if simplify {
        CompilationOptions::all_optimisations()
    } else {
        CompilationOptions::none()
    }
    .with_launch_1d(input.len(), 32);
    let kernel = compile(program, &options).expect("pipeline compiles");
    let (args, out_index) = kernel
        .bind_args(&[input.to_vec()], &Default::default())
        .expect("arguments bind");
    let result = ExecutionRequest::new(&kernel.module)
        .launch(&kernel.kernel_name, LaunchConfig::d1(input.len(), 32), args)
        .expect("pipeline executes");
    result.buffers[out_index].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_pipelines_agree_with_the_interpreter(
        steps in proptest::collection::vec(layout_step(), 0..4),
        negate in any::<bool>(),
        seed in 0u32..1000,
    ) {
        let input: Vec<f32> = (0..128).map(|i| ((i as u32 * 37 + seed) % 101) as f32).collect();
        let program = build_program(&steps, negate);

        let expected = evaluate(&program, &[Value::from_f32_slice(&input)])
            .expect("interpreter")
            .flatten_f32();

        for simplify in [true, false] {
            let actual = run_compiled(&program, &input, simplify);
            prop_assert_eq!(&actual, &expected, "steps {:?} simplify {}", steps, simplify);
        }
    }
}
