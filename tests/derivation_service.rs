//! Workspace-level integration tests for the derivation service (`lift-service`): the
//! differential warm-vs-cold guarantee, request batching/deduplication pinned by
//! telemetry, persistence across reopen, and whole-generation invalidation on a rule-set
//! version bump.

use lift::service::{DerivationService, Request, Served, ServiceConfig};
use lift::telemetry::{counts_by_kind, InMemory, Null};
use lift::tuner::{Strategy, TuningConfig, Workload};
use lift::vgpu::DeviceProfile;

/// A deliberately small but real tuning request: the full pipeline runs (enumerate,
/// compile with the ownership pass, execute, validate), just over a reduced budget.
fn small_request(workload: &Workload) -> Request {
    let device = DeviceProfile::nvidia();
    let mut config = TuningConfig::new(
        device.clone(),
        workload.space_for(&device),
        Strategy::RandomHillClimb {
            seed: 1,
            samples: 2,
            max_steps: 2,
        },
    );
    // The dot product lowers within a few hundred candidates; MM needs the full budget to
    // reach a complete derivation.
    config.base.max_candidates = if workload.name == "dot_product" {
        400
    } else {
        3000
    };
    Request {
        name: workload.name.to_string(),
        program: workload.program.clone(),
        config,
    }
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("lift-service-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn warm_hits_replay_byte_identical_to_cold_derivations() {
    let mut service = DerivationService::open(ServiceConfig::default()).expect("service opens");
    for workload in [Workload::dot_product(), Workload::matrix_multiply()] {
        let request = small_request(&workload);
        let cold = service
            .request_with(request.clone(), &Null)
            .expect("cold derivation succeeds");
        assert_eq!(cold.served, Served::ColdMiss, "{}", workload.name);

        // The cold path must serve exactly what the tuner alone would have found.
        let direct = lift::tuner::tune(&request.program, &request.config)
            .expect("direct tuning succeeds")
            .best_variant
            .expect("direct tuning finds a variant");
        assert_eq!(
            cold.variant.kernel_source, direct.kernel_source,
            "{}",
            workload.name
        );

        // The warm hit replays the recorded chain through provenance and re-validates it;
        // the served variant must be byte-identical to the cold one.
        let warm = service
            .request_with(request, &Null)
            .expect("warm hit succeeds");
        assert_eq!(warm.served, Served::WarmHit, "{}", workload.name);
        assert_eq!(warm.variant.steps, cold.variant.steps, "{}", workload.name);
        assert_eq!(
            warm.variant.kernel_source, cold.variant.kernel_source,
            "{}: warm and cold kernels must be byte-identical",
            workload.name
        );
        assert_eq!(
            warm.variant.estimated_time, cold.variant.estimated_time,
            "{}: the deterministic cost model must re-score identically",
            workload.name
        );
        assert_eq!(warm.rule_options, cold.rule_options, "{}", workload.name);
        assert_eq!(warm.launch, cold.launch, "{}", workload.name);
    }
    let stats = service.stats();
    assert_eq!(stats.replay_failures, 0);
    assert_eq!((stats.hits, stats.misses), (2, 2));
}

#[test]
fn a_batch_of_identical_requests_costs_exactly_one_derivation() {
    let mut service = DerivationService::open(ServiceConfig::default()).expect("service opens");
    let collector = InMemory::default();
    let request = small_request(&Workload::dot_product());
    for _ in 0..5 {
        service.submit(request.clone());
    }
    let responses = service
        .drain_with(&collector)
        .expect("batched drain succeeds");

    assert_eq!(responses.len(), 5);
    assert_eq!(responses[0].served, Served::ColdMiss);
    for response in &responses[1..] {
        assert_eq!(response.served, Served::Coalesced);
        assert_eq!(
            response.variant.kernel_source,
            responses[0].variant.kernel_source
        );
        assert_eq!(response.variant.steps, responses[0].variant.steps);
    }

    let stats = service.stats();
    assert_eq!(stats.requests, 5);
    assert_eq!(
        stats.derivations, 1,
        "five identical requests cost one derivation"
    );
    assert_eq!(stats.coalesced, 4);

    // Telemetry pins the deduplication independently of the service's own counters:
    // exactly one cache_miss event for the whole batch, and no hits.
    let events = collector.events();
    let counts = counts_by_kind(&events);
    let count = |kind: &str| {
        counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    };
    assert_eq!(count("cache_miss"), 1);
    assert_eq!(count("cache_hit"), 0);
}

#[test]
fn the_cache_persists_across_service_reopen() {
    let root = temp_root("persist");
    let config = ServiceConfig {
        root: Some(root.clone()),
        ..ServiceConfig::default()
    };
    let request = small_request(&Workload::dot_product());

    let mut service = DerivationService::open(config.clone()).expect("first open");
    let cold = service
        .request_with(request.clone(), &Null)
        .expect("cold derivation succeeds");
    assert_eq!(cold.served, Served::ColdMiss);
    drop(service);

    // A brand-new process-equivalent: same directory, fresh service. The entry must come
    // back from disk and serve a re-validated warm hit.
    let mut reopened = DerivationService::open(config).expect("reopen");
    assert_eq!(reopened.store().len(), 1, "the entry survived the reopen");
    let warm = reopened
        .request_with(request, &Null)
        .expect("warm hit succeeds");
    assert_eq!(warm.served, Served::WarmHit);
    assert_eq!(warm.variant.kernel_source, cold.variant.kernel_source);
    assert_eq!(
        reopened.stats().derivations,
        0,
        "no re-derivation after reopen"
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bumping_the_rule_set_version_invalidates_prior_entries() {
    let root = temp_root("invalidate");
    let request = small_request(&Workload::dot_product());

    let mut service = DerivationService::open(ServiceConfig {
        root: Some(root.clone()),
        ..ServiceConfig::default()
    })
    .expect("first open");
    service
        .request_with(request.clone(), &Null)
        .expect("cold derivation succeeds");
    assert_eq!(service.store().len(), 1);
    drop(service);

    // The same directory under a bumped rule-set version: the persisted generation is
    // stale — every prior entry is dropped at open (reported, not served) and the request
    // is a miss again, re-derived from scratch.
    let collector = InMemory::default();
    let mut bumped = DerivationService::open_with(
        ServiceConfig {
            root: Some(root.clone()),
            rule_set_version: lift::rewrite::RULE_SET_VERSION + 1,
            ..ServiceConfig::default()
        },
        &collector,
    )
    .expect("reopen under the bumped version");
    assert_eq!(
        bumped.store().len(),
        0,
        "the stale generation was dropped at open"
    );
    assert_eq!(bumped.store().invalidated(), 1);

    let response = bumped
        .request_with(request.clone(), &collector)
        .expect("re-derivation succeeds");
    assert_eq!(
        response.served,
        Served::ColdMiss,
        "the stale entry was never served"
    );
    assert_eq!(bumped.stats().derivations, 1);

    let events = collector.events();
    let counts = counts_by_kind(&events);
    assert!(
        counts
            .iter()
            .any(|(k, n)| *k == "cache_invalidate" && *n == 1),
        "invalidation is reported: {counts:?}"
    );
    assert!(counts.iter().any(|(k, n)| *k == "cache_miss" && *n == 1));
    assert!(!counts.iter().any(|(k, _)| *k == "cache_hit"));

    // Reopening under the *original* version after the bumped generation persisted also
    // invalidates — generations never mix.
    drop(bumped);
    let original = DerivationService::open(ServiceConfig {
        root: Some(root.clone()),
        ..ServiceConfig::default()
    })
    .expect("reopen under the original version");
    assert_eq!(original.store().len(), 0);

    let _ = std::fs::remove_dir_all(&root);
}
