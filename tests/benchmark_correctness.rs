//! Workspace-level integration test: every Table 1 benchmark compiles through the full Lift
//! pipeline, executes on the virtual GPU at every optimisation level, and both the generated
//! kernel and the hand-written reference kernel reproduce the host-computed result.

use lift::benchmarks::runner::{run_lift, run_reference};
use lift::benchmarks::{all_benchmarks, ProblemSize};
use lift::codegen::CompilationOptions;

#[test]
fn all_benchmarks_generate_correct_kernels() {
    for case in all_benchmarks(ProblemSize::Small) {
        let outcome = run_lift(&case, &CompilationOptions::all_optimisations())
            .unwrap_or_else(|e| panic!("{}: {e}", case.info.name));
        assert!(
            outcome.correct,
            "{}: generated kernel output does not match the host reference",
            case.info.name
        );
        assert!(
            outcome.source_lines > 0,
            "{}: empty kernel source",
            case.info.name
        );
    }
}

#[test]
fn all_reference_kernels_are_correct() {
    for case in all_benchmarks(ProblemSize::Small) {
        let outcome = run_reference(&case).unwrap_or_else(|e| panic!("{}: {e}", case.info.name));
        assert!(
            outcome.correct,
            "{}: reference kernel output does not match the host reference",
            case.info.name
        );
    }
}

#[test]
fn optimisation_levels_do_not_change_results() {
    // Check the ablation levels on a representative subset (the cheap benchmarks) so the test
    // stays fast; the figure8 harness exercises all of them.
    for case in all_benchmarks(ProblemSize::Small)
        .into_iter()
        .filter(|c| matches!(c.info.name, "NN" | "MRI-Q" | "K-Means" | "Convolution"))
    {
        let reference = run_lift(&case, &CompilationOptions::all_optimisations()).unwrap();
        for options in [
            CompilationOptions::without_array_access_simplification(),
            CompilationOptions::none(),
        ] {
            let outcome = run_lift(&case, &options).unwrap();
            assert!(
                outcome.correct,
                "{} at level {}",
                case.info.name,
                options.label()
            );
            assert_eq!(
                outcome.output, reference.output,
                "{}: optimisations changed the numerical result",
                case.info.name
            );
        }
    }
}
