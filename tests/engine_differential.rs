//! Differential properties of the two virtual-GPU execution engines.
//!
//! The bytecode tier must be observationally indistinguishable from the slotted
//! interpreter: same output buffers (bit for bit), same cost counters, same execution
//! profiles, and the same error taxonomy — with race detection on or off. This suite
//! checks that equivalence three ways:
//!
//! 1. **Gated workloads.** Every candidate the rewrite exploration derives from the six
//!    tuned workloads scores identically on both engines (verdict counters, winners,
//!    estimated times compared bit for bit).
//! 2. **Random derived kernels.** Randomly composed data-layout pipelines (the
//!    view-composition shapes whose index generation is the subtle part of the compiler)
//!    launch to bitwise-equal buffers and counters on both engines.
//! 3. **Error taxonomy.** A failing launch (out-of-bounds access) produces the same
//!    [`VgpuError`] value from both engines.

use lift::codegen::{compile, CompilationOptions};
use lift::ir::prelude::*;
use lift::rewrite::{enumerate, Exploration, ExplorationConfig, RuleOptions};
use lift::tuner::Workload;
use lift::vgpu::{
    DeviceProfile, EngineSelection, ExecutionRequest, LaunchConfig, LaunchResult, VgpuError,
};
use lift_arith::ArithExpr;
use lift_bench::autotune_config;
use proptest::prelude::*;

/// A launch every workload's lowered candidates execute correctly under (the virtual GPU
/// masks surplus work items, so a fixed grid works across problem sizes).
const LAUNCH: LaunchConfig = LaunchConfig {
    global: [64, 1, 1],
    local: [16, 1, 1],
};

fn workload_config(workload: &Workload, device: &DeviceProfile) -> ExplorationConfig {
    ExplorationConfig {
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: workload.tile_sets.first().cloned().unwrap_or_default(),
        },
        launch: LAUNCH,
        ..autotune_config(workload, device).base
    }
}

/// Asserts two scored explorations are observationally identical, including the winners'
/// estimated times bit for bit.
fn assert_scored_identical(name: &str, a: &Exploration, b: &Exploration) {
    assert_eq!(a.explored, b.explored, "{name}: explored");
    assert_eq!(a.lowered, b.lowered, "{name}: lowered");
    assert_eq!(a.rejected_typecheck, b.rejected_typecheck, "{name}");
    assert_eq!(a.rejected_compile, b.rejected_compile, "{name}");
    assert_eq!(a.rejected_incorrect, b.rejected_incorrect, "{name}");
    assert_eq!(a.rejected_unsound, b.rejected_unsound, "{name}");
    assert_eq!(a.rejected_race, b.rejected_race, "{name}");
    assert_eq!(a.rejected_divergence, b.rejected_divergence, "{name}");
    assert_eq!(a.executed_kernels, b.executed_kernels, "{name}");
    assert_eq!(a.soundness, b.soundness, "{name}: soundness report");
    assert_eq!(a.variants.len(), b.variants.len(), "{name}: variant count");
    for (va, vb) in a.variants.iter().zip(&b.variants) {
        assert_eq!(va.kernel_source, vb.kernel_source, "{name}");
        assert_eq!(va.counters, vb.counters, "{name}: counters");
        assert_eq!(va.stage_counters, vb.stage_counters, "{name}");
        assert_eq!(va.stage_names, vb.stage_names, "{name}");
        assert_eq!(
            va.estimated_time.to_bits(),
            vb.estimated_time.to_bits(),
            "{name}: estimated time differs: {} vs {}",
            va.estimated_time,
            vb.estimated_time
        );
        assert_eq!(
            va.profile(&DeviceProfile::nvidia()),
            vb.profile(&DeviceProfile::nvidia()),
            "{name}: execution profile"
        );
    }
}

#[test]
fn gated_workloads_score_identically_on_both_engines() {
    let device = DeviceProfile::nvidia();
    for workload in Workload::all() {
        let config = workload_config(&workload, &device);
        let enumerated = enumerate(&workload.program, &config)
            .unwrap_or_else(|e| panic!("{}: enumeration fails: {e}", workload.name));
        for detect_races in [true, false] {
            let interp = enumerated
                .score(&ExplorationConfig {
                    engine: EngineSelection::Interpreter,
                    detect_races,
                    ..config.clone()
                })
                .unwrap_or_else(|e| panic!("{}: interpreter scoring fails: {e}", workload.name));
            let bytecode = enumerated
                .score(&ExplorationConfig {
                    engine: EngineSelection::Bytecode,
                    detect_races,
                    ..config.clone()
                })
                .unwrap_or_else(|e| panic!("{}: bytecode scoring fails: {e}", workload.name));
            assert!(
                !interp.variants.is_empty(),
                "{}: no variant survived",
                workload.name
            );
            let label = format!("{} (detect_races={detect_races})", workload.name);
            assert_scored_identical(&label, &interp, &bytecode);
        }
    }
}

/// One data-layout step applied before the parallel copy (mirrors the shapes of the
/// `differential_pipelines` suite).
#[derive(Clone, Debug)]
enum LayoutStep {
    Reverse,
    SplitJoin(usize),
    Stride(usize),
}

fn layout_step() -> impl Strategy<Value = LayoutStep> {
    prop_oneof![
        Just(LayoutStep::Reverse),
        prop_oneof![Just(2usize), Just(4), Just(8)].prop_map(LayoutStep::SplitJoin),
        prop_oneof![Just(2usize), Just(4), Just(8)].prop_map(LayoutStep::Stride),
    ]
}

/// Builds the program for a fixed input length of 128 elements and 32-wide work groups.
fn build_program(steps: &[LayoutStep], negate: bool) -> Program {
    const N: usize = 128;
    let mut p = Program::new("pipeline");
    let f = if negate {
        p.user_fun(
            UserFun::new(
                "negate",
                vec![("x", Type::float())],
                Type::float(),
                ScalarExpr::cf(0.0).sub(ScalarExpr::param(0)),
            )
            .expect("well-formed"),
        )
    } else {
        p.user_fun(UserFun::id_float())
    };
    let ml = p.map_lcl(0, f);
    let wg = p.map_wrg(0, ml);
    let split32 = p.split(32usize);
    let join_out = p.join();
    p.with_root(
        vec![("x", Type::array(Type::float(), ArithExpr::cst(N as i64)))],
        |p, params| {
            let mut value = params[0];
            for step in steps {
                value = match step {
                    LayoutStep::Reverse => {
                        let g = p.gather(Reorder::Reverse);
                        p.apply1(g, value)
                    }
                    LayoutStep::SplitJoin(k) => {
                        let s = p.split(*k);
                        let j = p.join();
                        let split = p.apply1(s, value);
                        p.apply1(j, split)
                    }
                    LayoutStep::Stride(s) => {
                        let g = p.gather(Reorder::Stride(ArithExpr::cst(*s as i64)));
                        p.apply1(g, value)
                    }
                };
            }
            let split = p.apply1(split32, value);
            let mapped = p.apply1(wg, split);
            p.apply1(join_out, mapped)
        },
    );
    p
}

fn run_on(
    program: &Program,
    input: &[f32],
    engine: EngineSelection,
    detect_races: bool,
) -> LaunchResult {
    let options = CompilationOptions::all_optimisations().with_launch_1d(input.len(), 32);
    let kernel = compile(program, &options).expect("pipeline compiles");
    let (args, _) = kernel
        .bind_args(&[input.to_vec()], &Default::default())
        .expect("arguments bind");
    ExecutionRequest::new(&kernel.module)
        .engine(engine)
        .race_detection(detect_races)
        .launch(&kernel.kernel_name, LaunchConfig::d1(input.len(), 32), args)
        .expect("pipeline executes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_derived_kernels_run_identically_on_both_engines(
        steps in proptest::collection::vec(layout_step(), 0..4),
        negate in any::<bool>(),
        seed in 0u32..1000,
    ) {
        let input: Vec<f32> =
            (0..128).map(|i| ((i as u32 * 37 + seed) % 101) as f32 - 50.0).collect();
        let program = build_program(&steps, negate);
        for detect_races in [true, false] {
            let interp = run_on(&program, &input, EngineSelection::Interpreter, detect_races);
            let bytecode = run_on(&program, &input, EngineSelection::Bytecode, detect_races);
            prop_assert_eq!(
                interp.buffers.len(), bytecode.buffers.len(),
                "steps {:?}", &steps
            );
            for (a, b) in interp.buffers.iter().zip(&bytecode.buffers) {
                let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&a_bits, &b_bits, "steps {:?} races {}", &steps, detect_races);
            }
            prop_assert_eq!(&interp.report, &bytecode.report, "steps {:?}", &steps);
        }
    }
}

#[test]
fn failing_launches_report_the_same_error_on_both_engines() {
    // Compiled for 128 elements but handed a 64-element buffer: every work item past the
    // truncated input reads out of bounds, and both engines must fail identically.
    let program = build_program(&[], false);
    let options = CompilationOptions::all_optimisations().with_launch_1d(128, 32);
    let kernel = compile(&program, &options).expect("pipeline compiles");
    let full: Vec<f32> = (0..128).map(|i| i as f32).collect();
    let (args, _) = kernel
        .bind_args(&[full], &Default::default())
        .expect("arguments bind");
    let truncated: Vec<_> = args
        .into_iter()
        .enumerate()
        .map(|(i, arg)| {
            if i == 0 {
                lift::vgpu::KernelArg::Buffer(vec![0.0; 64])
            } else {
                arg
            }
        })
        .collect();
    let mut errors: Vec<VgpuError> = Vec::new();
    for engine in [EngineSelection::Interpreter, EngineSelection::Bytecode] {
        for detect_races in [true, false] {
            let err = ExecutionRequest::new(&kernel.module)
                .engine(engine)
                .race_detection(detect_races)
                .launch(
                    &kernel.kernel_name,
                    LaunchConfig::d1(128, 32),
                    truncated.clone(),
                )
                .expect_err("truncated input must fail the launch");
            assert!(
                matches!(err, VgpuError::OutOfBounds { .. }),
                "expected OutOfBounds, got {err:?}"
            );
            errors.push(err);
        }
    }
    for e in &errors[1..] {
        assert_eq!(e, &errors[0], "engines disagree on the error");
    }
}
