//! Differential properties of the two virtual-GPU execution engines.
//!
//! The bytecode tier must be observationally indistinguishable from the slotted
//! interpreter: same output buffers (bit for bit), same cost counters, same execution
//! profiles, and the same error taxonomy — with race detection on or off. This suite
//! checks that equivalence three ways:
//!
//! 1. **Gated workloads.** Every candidate the rewrite exploration derives from the six
//!    tuned workloads scores identically on both engines (verdict counters, winners,
//!    estimated times compared bit for bit).
//! 2. **Random derived kernels.** Randomly composed data-layout pipelines (the
//!    view-composition shapes whose index generation is the subtle part of the compiler)
//!    launch to bitwise-equal buffers and counters on both engines.
//! 3. **Error taxonomy.** A failing launch (out-of-bounds access) produces the same
//!    [`VgpuError`] value from both engines.

use lift::benchmarks::mm;
use lift::codegen::{compile, CompilationOptions};
use lift::ir::prelude::*;
use lift::rewrite::{
    all_rules, beta_normalize, enumerate, get, replace, sites, typecheck, Exploration,
    ExplorationConfig, RuleCx, RuleOptions, Term, TileSize,
};
use lift::tuner::Workload;
use lift::vgpu::{
    DeviceProfile, EngineSelection, ExecutionRequest, LaunchConfig, LaunchResult, VgpuError,
};
use lift_arith::ArithExpr;
use lift_bench::autotune_config;
use proptest::prelude::*;

/// A launch every workload's lowered candidates execute correctly under (the virtual GPU
/// masks surplus work items, so a fixed grid works across problem sizes).
const LAUNCH: LaunchConfig = LaunchConfig {
    global: [64, 1, 1],
    local: [16, 1, 1],
};

fn workload_config(workload: &Workload, device: &DeviceProfile) -> ExplorationConfig {
    ExplorationConfig {
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: workload.tile_sets.first().cloned().unwrap_or_default(),
        },
        launch: LAUNCH,
        ..autotune_config(workload, device).base
    }
}

/// Asserts two scored explorations are observationally identical, including the winners'
/// estimated times bit for bit.
fn assert_scored_identical(name: &str, a: &Exploration, b: &Exploration) {
    assert_eq!(a.explored, b.explored, "{name}: explored");
    assert_eq!(a.lowered, b.lowered, "{name}: lowered");
    assert_eq!(a.rejected_typecheck, b.rejected_typecheck, "{name}");
    assert_eq!(a.rejected_compile, b.rejected_compile, "{name}");
    assert_eq!(a.rejected_incorrect, b.rejected_incorrect, "{name}");
    assert_eq!(a.rejected_unsound, b.rejected_unsound, "{name}");
    assert_eq!(a.rejected_race, b.rejected_race, "{name}");
    assert_eq!(a.rejected_divergence, b.rejected_divergence, "{name}");
    assert_eq!(a.executed_kernels, b.executed_kernels, "{name}");
    assert_eq!(a.soundness, b.soundness, "{name}: soundness report");
    assert_eq!(a.variants.len(), b.variants.len(), "{name}: variant count");
    for (va, vb) in a.variants.iter().zip(&b.variants) {
        assert_eq!(va.kernel_source, vb.kernel_source, "{name}");
        assert_eq!(va.counters, vb.counters, "{name}: counters");
        assert_eq!(va.stage_counters, vb.stage_counters, "{name}");
        assert_eq!(va.stage_names, vb.stage_names, "{name}");
        assert_eq!(
            va.estimated_time.to_bits(),
            vb.estimated_time.to_bits(),
            "{name}: estimated time differs: {} vs {}",
            va.estimated_time,
            vb.estimated_time
        );
        assert_eq!(
            va.profile(&DeviceProfile::nvidia()),
            vb.profile(&DeviceProfile::nvidia()),
            "{name}: execution profile"
        );
    }
}

#[test]
fn gated_workloads_score_identically_on_both_engines() {
    let device = DeviceProfile::nvidia();
    for workload in Workload::all() {
        let config = workload_config(&workload, &device);
        let enumerated = enumerate(&workload.program, &config)
            .unwrap_or_else(|e| panic!("{}: enumeration fails: {e}", workload.name));
        for detect_races in [true, false] {
            let interp = enumerated
                .score(&ExplorationConfig {
                    engine: EngineSelection::Interpreter,
                    detect_races,
                    ..config.clone()
                })
                .unwrap_or_else(|e| panic!("{}: interpreter scoring fails: {e}", workload.name));
            let bytecode = enumerated
                .score(&ExplorationConfig {
                    engine: EngineSelection::Bytecode,
                    detect_races,
                    ..config.clone()
                })
                .unwrap_or_else(|e| panic!("{}: bytecode scoring fails: {e}", workload.name));
            assert!(
                !interp.variants.is_empty(),
                "{}: no variant survived",
                workload.name
            );
            let label = format!("{} (detect_races={detect_races})", workload.name);
            assert_scored_identical(&label, &interp, &bytecode);
        }
    }
}

/// One data-layout step applied before the parallel copy (mirrors the shapes of the
/// `differential_pipelines` suite).
#[derive(Clone, Debug)]
enum LayoutStep {
    Reverse,
    SplitJoin(usize),
    Stride(usize),
}

fn layout_step() -> impl Strategy<Value = LayoutStep> {
    prop_oneof![
        Just(LayoutStep::Reverse),
        prop_oneof![Just(2usize), Just(4), Just(8)].prop_map(LayoutStep::SplitJoin),
        prop_oneof![Just(2usize), Just(4), Just(8)].prop_map(LayoutStep::Stride),
    ]
}

/// Builds the program for a fixed input length of 128 elements and 32-wide work groups.
fn build_program(steps: &[LayoutStep], negate: bool) -> Program {
    const N: usize = 128;
    let mut p = Program::new("pipeline");
    let f = if negate {
        p.user_fun(
            UserFun::new(
                "negate",
                vec![("x", Type::float())],
                Type::float(),
                ScalarExpr::cf(0.0).sub(ScalarExpr::param(0)),
            )
            .expect("well-formed"),
        )
    } else {
        p.user_fun(UserFun::id_float())
    };
    let ml = p.map_lcl(0, f);
    let wg = p.map_wrg(0, ml);
    let split32 = p.split(32usize);
    let join_out = p.join();
    p.with_root(
        vec![("x", Type::array(Type::float(), ArithExpr::cst(N as i64)))],
        |p, params| {
            let mut value = params[0];
            for step in steps {
                value = match step {
                    LayoutStep::Reverse => {
                        let g = p.gather(Reorder::Reverse);
                        p.apply1(g, value)
                    }
                    LayoutStep::SplitJoin(k) => {
                        let s = p.split(*k);
                        let j = p.join();
                        let split = p.apply1(s, value);
                        p.apply1(j, split)
                    }
                    LayoutStep::Stride(s) => {
                        let g = p.gather(Reorder::Stride(ArithExpr::cst(*s as i64)));
                        p.apply1(g, value)
                    }
                };
            }
            let split = p.apply1(split32, value);
            let mapped = p.apply1(wg, split);
            p.apply1(join_out, mapped)
        },
    );
    p
}

fn run_on(
    program: &Program,
    input: &[f32],
    engine: EngineSelection,
    detect_races: bool,
) -> LaunchResult {
    let options = CompilationOptions::all_optimisations().with_launch_1d(input.len(), 32);
    let kernel = compile(program, &options).expect("pipeline compiles");
    let (args, _) = kernel
        .bind_args(&[input.to_vec()], &Default::default())
        .expect("arguments bind");
    ExecutionRequest::new(&kernel.module)
        .engine(engine)
        .race_detection(detect_races)
        .launch(&kernel.kernel_name, LaunchConfig::d1(input.len(), 32), args)
        .expect("pipeline executes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_derived_kernels_run_identically_on_both_engines(
        steps in proptest::collection::vec(layout_step(), 0..4),
        negate in any::<bool>(),
        seed in 0u32..1000,
    ) {
        let input: Vec<f32> =
            (0..128).map(|i| ((i as u32 * 37 + seed) % 101) as f32 - 50.0).collect();
        let program = build_program(&steps, negate);
        for detect_races in [true, false] {
            let interp = run_on(&program, &input, EngineSelection::Interpreter, detect_races);
            let bytecode = run_on(&program, &input, EngineSelection::Bytecode, detect_races);
            prop_assert_eq!(
                interp.buffers.len(), bytecode.buffers.len(),
                "steps {:?}", &steps
            );
            for (a, b) in interp.buffers.iter().zip(&bytecode.buffers) {
                let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&a_bits, &b_bits, "steps {:?} races {}", &steps, detect_races);
            }
            prop_assert_eq!(&interp.report, &bytecode.report, "steps {:?}", &steps);
        }
    }
}

// ------------------------------------------------------------------ 2D launches

/// Derives the 2D-tiled matrix multiply from the high-level program through the rewrite
/// engine (no hand-lowering): `mm-tiled-2d` forms the tiles, then the ordinary
/// `reduce-map-fusion`/`reduce-to-reduceSeq` steps lower the per-element computation —
/// exactly the chain the beam search finds.
fn derive_tiled_mm(m: usize, k: usize, n: usize, tile: TileSize) -> (Program, Type) {
    let program = mm::high_level_program(m, k, n);
    let options = RuleOptions {
        split_sizes: Vec::new(),
        vector_widths: Vec::new(),
        tile_sizes: vec![tile],
    };
    let mut current = Term::from_program(&program).expect("converts");
    let input_type = typecheck(&current).expect("input typechecks");
    for want in ["mm-tiled-2d", "reduce-map-fusion", "reduce-to-reduceSeq"] {
        let rule = all_rules()
            .iter()
            .find(|r| r.name == want)
            .expect("rule registered");
        let mut applied = None;
        for site in sites(&current) {
            let Some(expr) = get(&current.body, &site.location) else {
                continue;
            };
            let mut fresh = current.fresh;
            let replacement = {
                let mut cx = RuleCx {
                    context: site.context,
                    arg_types: &site.arg_types,
                    env: &site.env,
                    options: &options,
                    fresh: &mut fresh,
                };
                rule.applications(expr, &mut cx).into_iter().next()
            };
            if let Some(replacement) = replacement {
                let body = replace(&current.body, &site.location, replacement)
                    .expect("replacement applies");
                applied = Some(Term {
                    name: current.name.clone(),
                    params: current.params.clone(),
                    body: beta_normalize(&body),
                    fresh,
                });
                break;
            }
        }
        current = applied.unwrap_or_else(|| panic!("{want} did not fire (tile {tile:?})"));
    }
    let derived_type =
        typecheck(&current).unwrap_or_else(|e| panic!("tiled term ill-typed (tile {tile:?}): {e}"));
    assert_eq!(input_type, derived_type, "tiling must preserve the type");
    (current.to_program(), derived_type)
}

fn mm_inputs(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
    let a = (0..m * k)
        .map(|i| ((i * 7 + 3) % 11) as f32 - 5.0)
        .collect();
    let b = (0..k * n)
        .map(|i| ((i * 5 + 1) % 13) as f32 - 6.0)
        .collect();
    (a, b)
}

/// The derived tiled MM under genuinely 2D launches — exact-fit, group-strided,
/// local-strided and guarded grids — must produce bit-identical buffers and reports on
/// both engines, with race detection on and off, and match the host reference.
#[test]
fn tiled_mm_2d_launches_run_identically_on_both_engines() {
    const M: usize = 16;
    const K: usize = 16;
    const N: usize = 16;
    let cases: [(TileSize, LaunchConfig); 4] = [
        // Exact fit: one work group per tile, local shape = tile shape.
        (TileSize::d2(8, 8), LaunchConfig::d2((16, 16), (8, 8))),
        // Group-strided: fewer groups than tiles along both axes.
        (TileSize::d2(4, 4), LaunchConfig::d2((8, 8), (4, 4))),
        // Local-strided: local size smaller than the tile along one axis.
        (TileSize::d2(8, 8), LaunchConfig::d2((8, 16), (4, 8))),
        // Guarded: local size larger than the tile along one axis.
        (TileSize::d2(4, 8), LaunchConfig::d2((16, 16), (8, 8))),
    ];
    let (a, b) = mm_inputs(M, K, N);
    let expected = mm::host_reference(&a, &b, M, K, N);
    for (tile, launch) in cases {
        let (program, _) = derive_tiled_mm(M, K, N, tile);
        let options =
            CompilationOptions::all_optimisations().with_launch(launch.global, launch.local);
        let kernel = compile(&program, &options)
            .unwrap_or_else(|e| panic!("tile {tile:?}: compile fails: {e}"));
        let (args, out_idx) = kernel
            .bind_args(&[a.clone(), b.clone()], &Default::default())
            .expect("arguments bind");
        for detect_races in [true, false] {
            let interp = ExecutionRequest::new(&kernel.module)
                .engine(EngineSelection::Interpreter)
                .race_detection(detect_races)
                .launch(&kernel.kernel_name, launch, args.clone())
                .unwrap_or_else(|e| panic!("tile {tile:?}: interpreter fails: {e}"));
            let bytecode = ExecutionRequest::new(&kernel.module)
                .engine(EngineSelection::Bytecode)
                .race_detection(detect_races)
                .launch(&kernel.kernel_name, launch, args.clone())
                .unwrap_or_else(|e| panic!("tile {tile:?}: bytecode fails: {e}"));
            assert_eq!(interp.buffers.len(), bytecode.buffers.len());
            for (x, y) in interp.buffers.iter().zip(&bytecode.buffers) {
                let x_bits: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
                let y_bits: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
                assert_eq!(x_bits, y_bits, "tile {tile:?} races {detect_races}");
            }
            assert_eq!(
                interp.report, bytecode.report,
                "tile {tile:?} races {detect_races}"
            );
            let out = &interp.buffers[out_idx];
            assert_eq!(out.len(), expected.len(), "tile {tile:?}");
            for (got, want) in out.iter().zip(&expected) {
                assert!(
                    (got - want).abs() < 1e-3,
                    "tile {tile:?} launch {launch:?}: {got} != {want}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random `split∘transpose∘split` tile compositions: for every dividing 2D tile the
    /// `mm-tiled-2d` family preserves the program type (checked inside `derive_tiled_mm`)
    /// and its semantics — the derived kernel matches the host reference bit-for-bit
    /// across both engines under a 2D launch.
    #[test]
    fn random_tile_compositions_preserve_type_and_semantics(
        m in prop_oneof![Just(8usize), Just(16)],
        k in prop_oneof![Just(4usize), Just(8), Just(16)],
        n in prop_oneof![Just(8usize), Just(16)],
        tm in prop_oneof![Just(2i64), Just(4), Just(8)],
        tn in prop_oneof![Just(2i64), Just(4), Just(8)],
    ) {
        // Every candidate (m, tm) and (n, tn) pair divides: powers of two ≤ 8 vs 8/16.
        let tile = TileSize::d2(tm, tn);
        let (program, _) = derive_tiled_mm(m, k, n, tile);
        let launch = LaunchConfig::d2((n, m), (tn as usize, tm as usize));
        let options =
            CompilationOptions::all_optimisations().with_launch(launch.global, launch.local);
        let kernel = compile(&program, &options)
            .unwrap_or_else(|e| panic!("tile {tile:?}: compile fails: {e}"));
        let (a, b) = mm_inputs(m, k, n);
        let expected = mm::host_reference(&a, &b, m, k, n);
        let (args, out_idx) = kernel
            .bind_args(&[a, b], &Default::default())
            .expect("arguments bind");
        let mut outputs: Vec<Vec<u32>> = Vec::new();
        for engine in [EngineSelection::Interpreter, EngineSelection::Bytecode] {
            let result = ExecutionRequest::new(&kernel.module)
                .engine(engine)
                .race_detection(true)
                .launch(&kernel.kernel_name, launch, args.clone())
                .unwrap_or_else(|e| panic!("{m}x{k}x{n} tile {tile:?}: {engine:?} fails: {e}"));
            let out = &result.buffers[out_idx];
            for (got, want) in out.iter().zip(&expected) {
                prop_assert!(
                    (got - want).abs() < 1e-3,
                    "{}x{}x{} tile {:?}: {} != {}", m, k, n, tile, got, want
                );
            }
            outputs.push(out.iter().map(|v| v.to_bits()).collect());
        }
        prop_assert_eq!(&outputs[0], &outputs[1], "engines disagree bitwise");
    }
}

/// The race detector distinguishes work-item *dimensions*, not just levels (two items that
/// differ only in `get_local_id(1)` writing different values to one cell is a detected race
/// — pinned by `race_detector_distinguishes_work_item_dimensions` in the vgpu crate). The
/// flip side pinned here: a kernel distributed over dimension 0 only, launched on a 2D
/// grid, has every dimension-1 sibling repeat bitwise-identical writes — the detector
/// treats value-preserving stores as benign, so the launch runs clean on both engines with
/// detection on, and the duplicated work still produces the correct (bit-identical) output.
#[test]
fn duplicated_identical_writes_across_dimension_1_are_benign() {
    let mut p = Program::new("dim1_race");
    let id = p.user_fun(UserFun::id_float());
    let stage = p.map_lcl(0, id);
    let staged = p.to_local(stage);
    let copy_out = p.map_lcl(0, id);
    let per_tile = p.lambda(&["tile"], |p, params| {
        let local = p.apply1(staged, params[0]);
        p.apply1(copy_out, local)
    });
    let wg = p.map_wrg(0, per_tile);
    let split = p.split(8usize);
    let join = p.join();
    p.with_root(
        vec![("x", Type::array(Type::float(), 64usize))],
        |p, params| {
            let tiles = p.apply1(split, params[0]);
            let mapped = p.apply1(wg, tiles);
            p.apply1(join, mapped)
        },
    );
    let options = CompilationOptions::all_optimisations().with_launch([16, 2, 1], [8, 2, 1]);
    let kernel = compile(&p, &options).expect("compiles");
    let input: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let (args, out_idx) = kernel
        .bind_args(std::slice::from_ref(&input), &Default::default())
        .expect("arguments bind");

    // 2D launch: the dimension-1 work items duplicate every write with identical values —
    // benign under the value-preserving-store rule, so detection stays silent and both
    // engines produce the same correct copy.
    let launch_2d = LaunchConfig::d2((16, 2), (8, 2));
    let mut outputs = Vec::new();
    for engine in [EngineSelection::Interpreter, EngineSelection::Bytecode] {
        let result = ExecutionRequest::new(&kernel.module)
            .engine(engine)
            .race_detection(true)
            .launch(&kernel.kernel_name, launch_2d, args.clone())
            .expect("identical duplicated writes are benign");
        assert_eq!(result.buffers[out_idx], input, "{engine:?}");
        assert_eq!(
            result.report.counters.work_items, 32,
            "{engine:?} must actually drive the 2D grid"
        );
        outputs.push(
            result.buffers[out_idx]
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(outputs[0], outputs[1], "engines disagree bitwise");

    // 1D launch of the same module: dimension 1 has a single work item, so the identical
    // loops are race-free and the copy is correct.
    for engine in [EngineSelection::Interpreter, EngineSelection::Bytecode] {
        let result = ExecutionRequest::new(&kernel.module)
            .engine(engine)
            .race_detection(true)
            .launch(&kernel.kernel_name, LaunchConfig::d1(16, 8), args.clone())
            .expect("1D launch is race-free");
        assert_eq!(result.buffers[out_idx], input, "{engine:?}");
    }
}

#[test]
fn failing_launches_report_the_same_error_on_both_engines() {
    // Compiled for 128 elements but handed a 64-element buffer: every work item past the
    // truncated input reads out of bounds, and both engines must fail identically.
    let program = build_program(&[], false);
    let options = CompilationOptions::all_optimisations().with_launch_1d(128, 32);
    let kernel = compile(&program, &options).expect("pipeline compiles");
    let full: Vec<f32> = (0..128).map(|i| i as f32).collect();
    let (args, _) = kernel
        .bind_args(&[full], &Default::default())
        .expect("arguments bind");
    let truncated: Vec<_> = args
        .into_iter()
        .enumerate()
        .map(|(i, arg)| {
            if i == 0 {
                lift::vgpu::KernelArg::Buffer(vec![0.0; 64])
            } else {
                arg
            }
        })
        .collect();
    let mut errors: Vec<VgpuError> = Vec::new();
    for engine in [EngineSelection::Interpreter, EngineSelection::Bytecode] {
        for detect_races in [true, false] {
            let err = ExecutionRequest::new(&kernel.module)
                .engine(engine)
                .race_detection(detect_races)
                .launch(
                    &kernel.kernel_name,
                    LaunchConfig::d1(128, 32),
                    truncated.clone(),
                )
                .expect_err("truncated input must fail the launch");
            assert!(
                matches!(err, VgpuError::OutOfBounds { .. }),
                "expected OutOfBounds, got {err:?}"
            );
            errors.push(err);
        }
    }
    for e in &errors[1..] {
        assert_eq!(e, &errors[0], "engines disagree on the error");
    }
}
