//! # Lift
//!
//! A Rust reproduction of *Lift: A Functional Data-Parallel IR for High-Performance GPU Code
//! Generation* (Steuwer, Remmelg, Dubach — CGO 2017).
//!
//! This facade crate re-exports the individual crates of the workspace under a single name:
//!
//! * [`arith`] — symbolic arithmetic with ranges and the simplification rules of Section 5.3,
//! * [`ir`] — the Lift intermediate representation: types, patterns and the builder DSL,
//! * [`interp`] — the reference interpreter giving the semantics of every pattern,
//! * [`ocl`] — the OpenCL C abstract syntax tree and pretty printer,
//! * [`vgpu`] — a virtual GPU that executes OpenCL ASTs and reports an analytical cost,
//! * [`codegen`] — the Lift compiler of Section 5 (views, memory allocation, barrier
//!   elimination, control-flow simplification, kernel generation),
//! * [`rewrite`] — the rewrite-rule engine deriving low-level OpenCL programs from
//!   high-level `map`/`reduce` expressions, with cost-guided exploration,
//! * [`tuner`] — auto-tuning over split factors, vector widths and launch configurations
//!   per device profile, on top of the rewrite exploration,
//! * [`service`] — the long-lived derivation service: persistent content-addressed caching
//!   of tuned derivations, batched/deduplicated request processing and warm-started
//!   searches,
//! * [`telemetry`] — the structured-event layer (spans, counters, typed events) the
//!   rewrite search, tuner and virtual GPU report through,
//! * [`benchmarks`] — the twelve evaluation programs of Table 1.
//!
//! # Quickstart
//!
//! ```
//! use lift::prelude::*;
//!
//! // Build the dot-product program of Listing 1, compile it and print the OpenCL kernel.
//! let program = lift::benchmarks::dot_product::lift_program(1024);
//! let kernel = lift::codegen::compile(&program, &CompilationOptions::all_optimisations())
//!     .expect("dot product compiles");
//! assert!(kernel.source().contains("kernel void"));
//! ```

pub use lift_arith as arith;
pub use lift_benchmarks as benchmarks;
pub use lift_codegen as codegen;
pub use lift_interp as interp;
pub use lift_ir as ir;
pub use lift_ocl as ocl;
pub use lift_rewrite as rewrite;
pub use lift_service as service;
pub use lift_telemetry as telemetry;
pub use lift_tuner as tuner;
pub use lift_vgpu as vgpu;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use lift_arith::ArithExpr;
    pub use lift_codegen::{compile, CompilationOptions};
    pub use lift_interp::Value;
    pub use lift_ir::prelude::*;
    pub use lift_vgpu::{DeviceProfile, EngineSelection, ExecutionRequest, VirtualGpu};
}
