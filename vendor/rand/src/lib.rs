//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a minimal
//! implementation of the `rand` API surface the repository uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over half-open ranges. The
//! generator is splitmix64 — statistically fine for test workload generation and, like
//! the real `StdRng::seed_from_u64`, fully deterministic.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling support, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), &range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Maps a uniformly random word into the range.
    fn sample(word: u64, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(word: u64, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (word as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f32 {
    fn sample(word: u64, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (word >> 40) as f32 / (1u64 << 24) as f32; // 24 mantissa bits in [0, 1)
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample(word: u64, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (word >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// The standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9e3779b97f4a7c15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f32 = a.gen_range(-1.0f32..1.0);
            let y: f32 = b.gen_range(-1.0f32..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f32> = (0..16).map(|_| a.gen_range(0.0f32..1.0)).collect();
        let ys: Vec<f32> = (0..16).map(|_| c.gen_range(0.0f32..1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn integer_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v: usize = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }
}
