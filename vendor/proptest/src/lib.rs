//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a minimal
//! property-testing harness with the API surface the repository's tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]` header),
//! * [`strategy::Strategy`] with `prop_map` and `prop_recursive`,
//! * range, tuple, [`strategy::Just`] and [`strategy::Union`] (`prop_oneof!`) strategies,
//! * [`collection::vec`] and [`arbitrary::any`],
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike the real proptest there is no shrinking: failures report the generated inputs
//! via the panic message of the underlying assertion (the repository's properties format
//! their context into the assertions already). Generation is fully deterministic per
//! test name, so failures are reproducible.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
}

/// Runs a block of property tests.
///
/// Supported grammar (a subset of the real macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in some_strategy()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

/// Picks one of several strategies (uniformly) for each generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($strategy)),+
        ])
    };
}
