//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn from `len` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "cannot generate from an empty length range"
    );
    VecStrategy { element, len }
}

/// The result of [`fn@vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let n = self.len.start + rng.index(span);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
