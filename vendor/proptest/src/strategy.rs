//! Value-generation strategies.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of a given type.
///
/// The trait is object safe (the combinators require `Self: Sized`), so strategies can be
/// boxed into [`BoxedStrategy`] and mixed in a [`Union`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the previous depth
    /// level and returns the strategy for one more level of structure. `depth` bounds the
    /// recursion; the leaf strategy is mixed in at every level so generated structures have
    /// varied sizes. `desired_size` and `expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = BoxedStrategy::new(self);
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = BoxedStrategy::new(recurse(strat));
            strat = BoxedStrategy::new(Union::new(vec![leaf.clone(), deeper]));
        }
        strat
    }

    /// Boxes this strategy (mirrors `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> BoxedStrategy<T> {
    /// Boxes a concrete strategy.
    pub fn new(s: impl Strategy<Value = T> + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { inner: Rc::new(s) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Picks one of the contained strategies uniformly per generated value (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
