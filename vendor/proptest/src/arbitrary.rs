//! The `any::<T>()` entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for whole primitive types.
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}
