//! Configuration and the deterministic generator backing the harness.

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 generator, seeded from the test name so every property sees an
/// independent but reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a over the name
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng { state: seed }
    }

    /// The next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        (self.next_u64() % n as u64) as usize
    }
}
