//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a minimal
//! timing harness with the API surface the repository's benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size`/`bench_function`/
//! `bench_with_input`/`finish`, [`Bencher::iter`] and the [`criterion_group!`]/
//! [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple — each benchmark runs a warm-up iteration and a
//! small fixed number of timed samples, reporting the median wall-clock time. That is
//! enough for the repository's purpose (comparing optimisation levels against each other
//! on the virtual GPU); it is not a substitute for real Criterion's analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (after one warm-up iteration).
const SAMPLES: usize = 5;

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, |b| f(b));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Accepted for API compatibility; the stub keeps its fixed sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub keeps its fixed sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Runs `f` with a borrowed input as a benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` applied to `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (real Criterion times many; the stub keeps runs
    /// short because the virtual-GPU workloads it measures are already macroscopic).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed = Some(start.elapsed());
        drop(out);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // Warm-up.
    let mut b = Bencher { elapsed: None };
    f(&mut b);
    let mut samples: Vec<Duration> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let mut b = Bencher { elapsed: None };
        f(&mut b);
        samples.push(b.elapsed.unwrap_or_default());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!("{name:<60} median {median:>12.3?} over {SAMPLES} samples");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
