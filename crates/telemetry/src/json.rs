//! A tiny deterministic JSON value type shared by everything in the workspace that
//! persists or parses machine-readable documents: the bench harness reports
//! (`BENCH_*.json`), the derivation-service cache store (`store.jsonl` + `index.json`)
//! and the perf gate's baseline parsing.
//!
//! The writer is deterministic — insertion-ordered object keys and fixed float formatting
//! ([`fmt_f64`]) make output byte-identical for equal inputs, which both the autotune
//! determinism test and the cache store's atomic-rewrite format rely on. No external
//! crates: the build environment is offline.
//!
//! This module lives in `lift-telemetry` (the only zero-dependency crate of the
//! workspace) so that `lift-service` and `lift-bench` can share one implementation
//! without a dependency cycle; `lift_bench::schema` re-exports it for the harness
//! binaries.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered object keys.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (always rendered through [`fmt_f64`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a number value.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Convenience: an optional number (`None` → `null`).
    pub fn opt_num(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::Num)
    }

    /// Convenience: an array of numbers.
    pub fn nums<T: Into<f64> + Copy>(vs: &[T]) -> Json {
        Json::Arr(vs.iter().map(|v| Json::Num((*v).into())).collect())
    }

    /// Looks up `key` in an object (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(vs) => Some(vs),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value on one line with no inter-token whitespace — the JSON-lines form
    /// the derivation-service cache store appends one entry per line of.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_json_escaped(out, s),
            Json::Arr(vs) => {
                if vs.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_json_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_json_escaped(out, s),
            Json::Arr(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Deterministic float formatting: integers without a fraction, everything else with up to
/// three fractional digits (times and throughputs do not need more).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

pub(crate) fn write_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the subset the harness emits: standard numbers, strings with the
/// escapes above, arrays, objects, literals).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut values = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(values));
            }
            loop {
                values.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(values));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Push the full UTF-8 scalar starting here.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_harness_shapes() {
        let doc = Json::obj([
            ("name", Json::str("dot product")),
            ("best", Json::opt_num(Some(23243.125))),
            ("missing", Json::opt_num(None)),
            ("sizes", Json::nums(&[2.0, 4.0, 8.0])),
            (
                "nested",
                Json::obj([("ok", Json::Bool(true)), ("n", Json::num(4096))]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        let parsed = parse(&text).expect("parses");
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("dot product")
        );
        assert_eq!(parsed.get("best").and_then(Json::as_f64), Some(23243.125));
        assert_eq!(parsed.get("missing"), Some(&Json::Null));
        assert_eq!(
            parsed
                .get("nested")
                .and_then(|n| n.get("n"))
                .and_then(Json::as_f64),
            Some(4096.0)
        );
        // Rendering is deterministic.
        assert_eq!(text, parse(&text).unwrap().render());
    }

    #[test]
    fn compact_rendering_is_single_line_and_parses_back() {
        let doc = Json::obj([
            ("key", Json::str("ab\ncd")),
            ("values", Json::nums(&[1.0, 2.5])),
            ("nested", Json::obj([("empty", Json::Arr(vec![]))])),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "compact rendering stays on one line");
        assert_eq!(parse(&line).expect("parses"), doc);
        assert_eq!(
            line,
            r#"{"key":"ab\ncd","values":[1,2.5],"nested":{"empty":[]}}"#
        );
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(fmt_f64(4096.0), "4096");
        assert_eq!(fmt_f64(23243.125), "23243.125");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(1.0 / 3.0), "0.333");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn escapes_are_symmetric() {
        let doc = Json::str("a\"b\\c\nd");
        let parsed = parse(&doc.render()).expect("parses");
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{}{}").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
