//! # Derivation telemetry
//!
//! A lightweight, zero-dependency structured event layer for the Lift pipeline: spans,
//! counters and typed events behind the [`Collector`] trait. Every layer of the engine
//! (rewrite exploration, auto-tuner, virtual GPU, benchmark harness) emits [`Event`]s
//! describing what it is doing *from the inside* — per-round beam statistics, per-rule
//! fire/reject counts with typed rejection reasons, tuning-search trajectories, executed
//! kernel stages — so a search that misses the expected kernel or a tuned point that
//! regresses can be diagnosed from its transcript instead of from a single final number.
//!
//! ## Design constraints
//!
//! Instrumentation lives on the exploration hot path (~30k candidates/sec), so the layer is
//! built around two rules:
//!
//! * **Disabled means free.** The default sink is [`Null`], whose [`Collector::enabled`]
//!   returns `false`. Instrumented code guards every aggregation and every event payload
//!   construction behind one `enabled()` check per phase — the disabled path costs a branch,
//!   never an allocation.
//! * **Events are typed and allocation-light.** Hot-path events ([`Event::BeamRound`],
//!   [`Event::RuleRound`]) carry only integers and `&'static str` names. Events that carry
//!   owned strings ([`Event::Rejection`], [`Event::TunerPoint`], …) are emitted off the hot
//!   path or behind explicit opt-in flags (`trace_rejections`).
//!
//! ## Sinks
//!
//! * [`Null`] — drops everything; the default everywhere.
//! * [`InMemory`] — timestamps and buffers events behind a mutex, for tests and in-process
//!   analysis ([`phase_durations`], [`counts_by_kind`]).
//! * [`JsonLines`] — streams one JSON object per event to any writer (the
//!   `telemetry_stats` harness points it at a `.jsonl` file CI archives).
//! * [`Tee`] — forwards to two sinks (e.g. buffer in memory *and* stream to disk).
//!
//! A recorded trace can be exported as a Chrome `trace_event` document with
//! [`chrome_trace`], inspectable in `about://tracing` or [Perfetto](https://ui.perfetto.dev).

pub mod json;

use std::fmt::Write as _;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// Why a derived candidate was rejected by the exploration driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The rewritten subtree could not be spliced back into the candidate.
    ReplaceFailed,
    /// The derived term exceeded the configured maximum term size.
    Oversize,
    /// The derived term failed the term-level typecheck.
    IllTyped,
    /// The derived term is a structural duplicate of an earlier candidate.
    Duplicate,
    /// The static parallelism-ownership pass found a write aliasing across work items
    /// (a buffer written at a finer parallelism level than the level that owns it).
    OwnershipViolation,
    /// The dynamic shadow-memory detector observed a write-write or unsynchronised
    /// read-write conflict between two work items.
    DataRace,
    /// A barrier was reached by only part of a work group (divergent control flow).
    DivergentBarrier,
}

impl RejectReason {
    /// Stable lower-snake-case label used in serialized events.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::ReplaceFailed => "replace_failed",
            RejectReason::Oversize => "oversize",
            RejectReason::IllTyped => "ill_typed",
            RejectReason::Duplicate => "duplicate",
            RejectReason::OwnershipViolation => "ownership_violation",
            RejectReason::DataRace => "data_race",
            RejectReason::DivergentBarrier => "divergent_barrier",
        }
    }

    /// The soundness-rejection reasons, in report order (the taxonomy the
    /// [`SoundnessReport`] and the bench soundness summary count by).
    pub const SOUNDNESS: [RejectReason; 3] = [
        RejectReason::OwnershipViolation,
        RejectReason::DataRace,
        RejectReason::DivergentBarrier,
    ];

    /// Every rejection reason, in serialization order: the rewrite-level reasons first,
    /// then [`RejectReason::SOUNDNESS`]. Fixed-shape summaries (the bench reports count
    /// rejections per label) iterate this so their keys never depend on which rejections
    /// actually occurred.
    pub const ALL: [RejectReason; 7] = [
        RejectReason::ReplaceFailed,
        RejectReason::Oversize,
        RejectReason::IllTyped,
        RejectReason::Duplicate,
        RejectReason::OwnershipViolation,
        RejectReason::DataRace,
        RejectReason::DivergentBarrier,
    ];
}

/// One structured soundness incident: either a static ownership violation found at
/// compile time or a dynamic conflict observed by the virtual GPU. Fields mirror the
/// typed errors of the layers that detect them (`CodegenError::OwnershipViolation`,
/// `VgpuError::DataRace`, `VgpuError::DivergentBarrier`) so a rejection stays
/// machine-readable end to end instead of collapsing into a rendered string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SoundnessIncident {
    /// A buffer owned by one parallelism level is written from a finer one.
    OwnershipViolation {
        /// The buffer (address space and description) whose ownership was violated.
        buffer: String,
        /// Parallelism level of the offending write.
        writer_level: &'static str,
        /// Parallelism level that owns the buffer.
        owner_level: &'static str,
        /// Rendered location of the write site.
        site: String,
    },
    /// Two work items touched the same cell without a barrier between them.
    DataRace {
        /// Name of the racy buffer.
        buffer: String,
        /// Element index of the conflicting cell.
        index: i64,
        /// The two conflicting work items (flat global ids; earlier access first).
        writers: [usize; 2],
        /// Barrier epoch in which the conflict was observed.
        epoch: u64,
    },
    /// A barrier reached by only part of a work group.
    DivergentBarrier {
        /// The diverging work group.
        group: [usize; 3],
        /// Work items that reached the barrier.
        arrived: usize,
        /// Work items the group contains.
        expected: usize,
    },
}

impl SoundnessIncident {
    /// The rejection reason this incident maps to in [`Event::Rejection`] telemetry.
    pub fn reason(&self) -> RejectReason {
        match self {
            SoundnessIncident::OwnershipViolation { .. } => RejectReason::OwnershipViolation,
            SoundnessIncident::DataRace { .. } => RejectReason::DataRace,
            SoundnessIncident::DivergentBarrier { .. } => RejectReason::DivergentBarrier,
        }
    }

    /// Whether the incident was found statically (at compile time) rather than observed
    /// during execution.
    pub fn is_static(&self) -> bool {
        matches!(self, SoundnessIncident::OwnershipViolation { .. })
    }

    /// One-line human-readable rendering (used as the `site` of the emitted
    /// [`Event::Rejection`]; the structured fields stay available on the report).
    pub fn describe(&self) -> String {
        match self {
            SoundnessIncident::OwnershipViolation {
                buffer,
                writer_level,
                owner_level,
                site,
            } => {
                format!("{buffer} owned by {owner_level} written at {writer_level} level ({site})")
            }
            SoundnessIncident::DataRace {
                buffer,
                index,
                writers,
                epoch,
            } => format!(
                "{buffer}[{index}] touched by work items {} and {} in epoch {epoch}",
                writers[0], writers[1]
            ),
            SoundnessIncident::DivergentBarrier {
                group,
                arrived,
                expected,
            } => format!(
                "barrier in group ({},{},{}) reached by {arrived} of {expected} work items",
                group[0], group[1], group[2]
            ),
        }
    }
}

/// The structured soundness summary of one exploration (or one scored candidate set):
/// every statically rejected candidate's ownership violation and every dynamically
/// observed conflict, kept as typed incidents so the explorer, the bench harness and CI
/// can count and serialize them uniformly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SoundnessReport {
    /// Compile-time rejections (the parallelism-ownership pass).
    pub static_rejections: Vec<SoundnessIncident>,
    /// Execution-time rejections (the shadow-memory detector and barrier divergence).
    pub dynamic_rejections: Vec<SoundnessIncident>,
}

impl SoundnessReport {
    /// Records one incident on the side ([`SoundnessIncident::is_static`]) it belongs to.
    pub fn record(&mut self, incident: SoundnessIncident) {
        if incident.is_static() {
            self.static_rejections.push(incident);
        } else {
            self.dynamic_rejections.push(incident);
        }
    }

    /// Whether no incident of any kind was recorded.
    pub fn is_clean(&self) -> bool {
        self.static_rejections.is_empty() && self.dynamic_rejections.is_empty()
    }

    /// Total incidents recorded.
    pub fn total(&self) -> usize {
        self.static_rejections.len() + self.dynamic_rejections.len()
    }

    /// Incident counts per rejection-reason label, in [`RejectReason::SOUNDNESS`] order
    /// (reasons with zero incidents included, so serialized summaries have a fixed shape).
    pub fn counts(&self) -> Vec<(&'static str, usize)> {
        RejectReason::SOUNDNESS
            .iter()
            .map(|reason| {
                let n = self
                    .static_rejections
                    .iter()
                    .chain(&self.dynamic_rejections)
                    .filter(|i| i.reason() == *reason)
                    .count();
                (reason.label(), n)
            })
            .collect()
    }

    /// Appends every incident of `other`.
    pub fn merge(&mut self, other: SoundnessReport) {
        self.static_rejections.extend(other.static_rejections);
        self.dynamic_rejections.extend(other.dynamic_rejections);
    }
}

/// A typed telemetry event. Variants mirror the pipeline layers that emit them; every
/// variant is self-describing (no out-of-band schema) so sinks can serialize uniformly.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A named phase begins (`enumerate`, `typecheck`, `compile`, `execute`, `score`, …).
    /// Spans nest; match with the [`Event::SpanEnd`] of the same name.
    SpanBegin {
        /// Phase name.
        name: &'static str,
    },
    /// The innermost open span of this name ends.
    SpanEnd {
        /// Phase name.
        name: &'static str,
    },
    /// A named scalar measurement (e.g. `executed_kernels`).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Measured value.
        value: f64,
    },
    /// One depth level of the beam search: how many rewrites were enumerated, what became
    /// of them, and how hard the beam pruned.
    BeamRound {
        /// Depth level (0-based).
        depth: u32,
        /// Candidates in the frontier entering this round.
        frontier: u32,
        /// Outcomes consumed by the merge this round (counts against the budget).
        expanded: u32,
        /// Well-typed, novel candidates that survived into the next frontier.
        derived: u32,
        /// Candidates discarded as structural duplicates.
        dedup_hits: u32,
        /// Candidates rejected (ill-typed, oversize or failed replacements).
        rejected: u32,
        /// Fully lowered candidates collected this round.
        completed: u32,
        /// Candidates kept by beam selection.
        kept: u32,
        /// Candidates pruned by beam selection (`derived - kept`).
        pruned: u32,
    },
    /// Per-rule outcome counts within one beam round (only rules with activity are
    /// reported).
    RuleRound {
        /// Rule name.
        rule: &'static str,
        /// Depth level the counts belong to.
        depth: u32,
        /// Rewrites the rule enumerated at matching sites (including ones later rejected —
        /// the `ill_typed`/`oversize`/`failed`/`duplicates` fields break the total down).
        fired: u32,
        /// Rewrites rejected by the term-level typecheck.
        ill_typed: u32,
        /// Rewrites rejected for exceeding the maximum term size.
        oversize: u32,
        /// Rewrites whose replacement failed to apply.
        failed: u32,
        /// Rewrites discarded as structural duplicates.
        duplicates: u32,
    },
    /// One rejected rewrite with its site (only emitted under `trace_rejections`).
    Rejection {
        /// The rule whose rewrite was rejected.
        rule: &'static str,
        /// Rendered location of the rewrite site.
        site: String,
        /// Why it was rejected.
        reason: RejectReason,
    },
    /// A validated variant in the final ranking.
    Variant {
        /// Rank (0 = best).
        rank: u32,
        /// Estimated execution time under the configured device profile.
        estimated_time: f64,
        /// Kernels the variant compiled to.
        kernels: u32,
        /// Length of its derivation chain.
        steps: u32,
    },
    /// One evaluated point of a tuning search.
    TunerPoint {
        /// Evaluation order (0-based).
        index: u32,
        /// Rendered point (rule options and launch).
        point: String,
        /// Best validated estimated time at the point (`None`: infeasible / no variant).
        best_time: Option<f64>,
        /// Fully lowered candidates at the point.
        lowered: u32,
        /// Validated variants at the point.
        variants: u32,
        /// Whether the point improved on every earlier point (accepted as new best).
        improved: bool,
        /// Whether the point re-used a cached rule search.
        cache_hit: bool,
    },
    /// An accepted hill-climb move of a tuning search.
    TunerMove {
        /// Move number (0-based).
        step: u32,
        /// Rendered point moved to.
        to: String,
        /// Objective after the move.
        best_time: f64,
    },
    /// One executed kernel stage of a virtual-GPU launch.
    ExecStage {
        /// Kernel name.
        kernel: String,
        /// Estimated stage time under the configured device profile.
        estimated_time: f64,
    },
    /// A virtual-GPU execution engine declined a launch and delegated to the interpreter
    /// (e.g. the bytecode tier met a construct it does not compile). The launch still
    /// succeeds with identical results; the event records why the faster tier was skipped.
    EngineFallback {
        /// Kernel name of the affected launch.
        kernel: String,
        /// The construct or condition the engine could not handle.
        reason: String,
    },
    /// A derivation-service cache lookup found a valid entry (the derivation is then
    /// replayed and re-validated rather than re-searched).
    CacheHit {
        /// The content-address id of the looked-up key.
        key: String,
        /// Name of the requested program.
        program: String,
    },
    /// A derivation-service cache lookup found nothing (a cold derivation follows). Batched
    /// duplicate requests coalesce onto one lookup, so counting these events counts actual
    /// derivations.
    CacheMiss {
        /// The content-address id of the looked-up key.
        key: String,
        /// Name of the requested program.
        program: String,
    },
    /// A derivation-service cache entry was removed.
    CacheEvict {
        /// The content-address id of the evicted entry.
        key: String,
        /// Why it was evicted (`lru`, `collision`, `replay_failed`, `stale`).
        reason: &'static str,
    },
    /// A whole generation of derivation-service cache entries was dropped at once
    /// (rule-set or cost-model version change).
    CacheInvalidate {
        /// Number of entries dropped.
        evicted: u32,
        /// What changed (e.g. `rule-set version 2 -> 3`).
        reason: String,
    },
}

impl Event {
    /// Stable lower-snake-case kind label (used as the JSON `kind` field and by
    /// [`counts_by_kind`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::Counter { .. } => "counter",
            Event::BeamRound { .. } => "beam_round",
            Event::RuleRound { .. } => "rule_round",
            Event::Rejection { .. } => "rejection",
            Event::Variant { .. } => "variant",
            Event::TunerPoint { .. } => "tuner_point",
            Event::TunerMove { .. } => "tuner_move",
            Event::ExecStage { .. } => "exec_stage",
            Event::EngineFallback { .. } => "engine_fallback",
            Event::CacheHit { .. } => "cache_hit",
            Event::CacheMiss { .. } => "cache_miss",
            Event::CacheEvict { .. } => "cache_evict",
            Event::CacheInvalidate { .. } => "cache_invalidate",
        }
    }

    /// Writes the variant's fields as JSON object members (without the braces), e.g.
    /// `"name": "enumerate"`. Shared by the JSONL sink and the Chrome-trace `args` objects.
    fn write_fields(&self, out: &mut String) {
        match self {
            Event::SpanBegin { name } | Event::SpanEnd { name } => {
                field_str(out, "name", name);
            }
            Event::Counter { name, value } => {
                field_str(out, "name", name);
                field_num(out, "value", *value);
            }
            Event::BeamRound {
                depth,
                frontier,
                expanded,
                derived,
                dedup_hits,
                rejected,
                completed,
                kept,
                pruned,
            } => {
                field_int(out, "depth", u64::from(*depth));
                field_int(out, "frontier", u64::from(*frontier));
                field_int(out, "expanded", u64::from(*expanded));
                field_int(out, "derived", u64::from(*derived));
                field_int(out, "dedup_hits", u64::from(*dedup_hits));
                field_int(out, "rejected", u64::from(*rejected));
                field_int(out, "completed", u64::from(*completed));
                field_int(out, "kept", u64::from(*kept));
                field_int(out, "pruned", u64::from(*pruned));
            }
            Event::RuleRound {
                rule,
                depth,
                fired,
                ill_typed,
                oversize,
                failed,
                duplicates,
            } => {
                field_str(out, "rule", rule);
                field_int(out, "depth", u64::from(*depth));
                field_int(out, "fired", u64::from(*fired));
                field_int(out, "ill_typed", u64::from(*ill_typed));
                field_int(out, "oversize", u64::from(*oversize));
                field_int(out, "failed", u64::from(*failed));
                field_int(out, "duplicates", u64::from(*duplicates));
            }
            Event::Rejection { rule, site, reason } => {
                field_str(out, "rule", rule);
                field_str(out, "site", site);
                field_str(out, "reason", reason.label());
            }
            Event::Variant {
                rank,
                estimated_time,
                kernels,
                steps,
            } => {
                field_int(out, "rank", u64::from(*rank));
                field_num(out, "estimated_time", *estimated_time);
                field_int(out, "kernels", u64::from(*kernels));
                field_int(out, "steps", u64::from(*steps));
            }
            Event::TunerPoint {
                index,
                point,
                best_time,
                lowered,
                variants,
                improved,
                cache_hit,
            } => {
                field_int(out, "index", u64::from(*index));
                field_str(out, "point", point);
                match best_time {
                    Some(t) => field_num(out, "best_time", *t),
                    None => field_raw(out, "best_time", "null"),
                }
                field_int(out, "lowered", u64::from(*lowered));
                field_int(out, "variants", u64::from(*variants));
                field_raw(out, "improved", if *improved { "true" } else { "false" });
                field_raw(out, "cache_hit", if *cache_hit { "true" } else { "false" });
            }
            Event::TunerMove {
                step,
                to,
                best_time,
            } => {
                field_int(out, "step", u64::from(*step));
                field_str(out, "to", to);
                field_num(out, "best_time", *best_time);
            }
            Event::ExecStage {
                kernel,
                estimated_time,
            } => {
                field_str(out, "kernel", kernel);
                field_num(out, "estimated_time", *estimated_time);
            }
            Event::EngineFallback { kernel, reason } => {
                field_str(out, "kernel", kernel);
                field_str(out, "reason", reason);
            }
            Event::CacheHit { key, program } | Event::CacheMiss { key, program } => {
                field_str(out, "key", key);
                field_str(out, "program", program);
            }
            Event::CacheEvict { key, reason } => {
                field_str(out, "key", key);
                field_str(out, "reason", reason);
            }
            Event::CacheInvalidate { evicted, reason } => {
                field_int(out, "evicted", u64::from(*evicted));
                field_str(out, "reason", reason);
            }
        }
    }
}

fn field_sep(out: &mut String) {
    if !out.is_empty() {
        out.push(',');
    }
}

fn field_raw(out: &mut String, key: &str, raw: &str) {
    field_sep(out);
    let _ = write!(out, "\"{key}\":{raw}");
}

fn field_int(out: &mut String, key: &str, value: u64) {
    field_sep(out);
    let _ = write!(out, "\"{key}\":{value}");
}

fn field_num(out: &mut String, key: &str, value: f64) {
    field_sep(out);
    if value.is_finite() {
        let _ = write!(out, "\"{key}\":{value}");
    } else {
        let _ = write!(out, "\"{key}\":null");
    }
}

fn field_str(out: &mut String, key: &str, value: &str) {
    field_sep(out);
    let _ = write!(out, "\"{key}\":");
    write_escaped(out, value);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An [`Event`] stamped with the microseconds elapsed since its sink was created.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// Microseconds since the sink's epoch.
    pub t_us: u64,
    /// The event.
    pub event: Event,
}

impl TimedEvent {
    /// Renders the event as one JSON object (no trailing newline), e.g.
    /// `{"t_us":1234,"kind":"span_begin","name":"enumerate"}`.
    pub fn to_json_line(&self) -> String {
        let mut fields = String::new();
        self.event.write_fields(&mut fields);
        let mut out = String::with_capacity(fields.len() + 40);
        let _ = write!(out, "{{\"t_us\":{},\"kind\":", self.t_us);
        write_escaped(&mut out, self.event.kind());
        if !fields.is_empty() {
            out.push(',');
            out.push_str(&fields);
        }
        out.push('}');
        out
    }
}

/// A telemetry sink.
///
/// Instrumented code MUST guard any work done purely to *construct* an event payload
/// (aggregation, rendering, allocation) behind [`Collector::enabled`]; [`Collector::record`]
/// may then assume the caller checked. The provided `span_*` helpers perform the check
/// themselves, so phase markers can be dropped into any code path unconditionally.
pub trait Collector: Sync {
    /// Whether this sink wants events at all. `false` (the [`Null`] sink) makes every
    /// instrumentation site a predictable branch.
    fn enabled(&self) -> bool;

    /// Records one event. Called only when [`Collector::enabled`] returned `true`.
    fn record(&self, event: Event);

    /// Records a [`Event::SpanBegin`] if enabled.
    fn span_begin(&self, name: &'static str) {
        if self.enabled() {
            self.record(Event::SpanBegin { name });
        }
    }

    /// Records a [`Event::SpanEnd`] if enabled.
    fn span_end(&self, name: &'static str) {
        if self.enabled() {
            self.record(Event::SpanEnd { name });
        }
    }

    /// Records a [`Event::Counter`] if enabled.
    fn counter(&self, name: &'static str, value: f64) {
        if self.enabled() {
            self.record(Event::Counter { name, value });
        }
    }
}

/// The default sink: drops everything at near-zero cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct Null;

impl Collector for Null {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// Buffers timestamped events in memory (behind a mutex), for tests and in-process
/// analysis.
#[derive(Debug)]
pub struct InMemory {
    epoch: Instant,
    events: Mutex<Vec<TimedEvent>>,
}

impl InMemory {
    /// An empty buffer whose epoch is now.
    pub fn new() -> InMemory {
        InMemory {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A snapshot of the recorded events, in record order.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the buffer lock.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events.lock().expect("telemetry buffer lock").clone()
    }

    /// Consumes the sink and returns the recorded events, in record order.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the buffer lock.
    pub fn into_events(self) -> Vec<TimedEvent> {
        self.events
            .into_inner()
            .expect("telemetry buffer lock poisoned")
    }
}

impl Default for InMemory {
    fn default() -> Self {
        InMemory::new()
    }
}

impl Collector for InMemory {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let t_us = self.epoch.elapsed().as_micros() as u64;
        self.events
            .lock()
            .expect("telemetry buffer lock")
            .push(TimedEvent { t_us, event });
    }
}

/// Streams one JSON object per event to a writer — the format CI archives and the
/// `telemetry_stats` harness parses back.
pub struct JsonLines<W: Write + Send> {
    epoch: Instant,
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLines<W> {
    /// A sink writing to `out`, with its epoch set to now.
    pub fn new(out: W) -> JsonLines<W> {
        JsonLines {
            epoch: Instant::now(),
            out: Mutex::new(out),
        }
    }

    /// Flushes and returns the writer.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the writer lock.
    pub fn into_inner(self) -> W {
        let mut out = self.out.into_inner().expect("telemetry writer lock");
        let _ = out.flush();
        out
    }
}

impl JsonLines<std::io::BufWriter<std::fs::File>> {
    /// A sink writing to the file at `path` (created/truncated), buffered.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(
        path: &std::path::Path,
    ) -> std::io::Result<JsonLines<std::io::BufWriter<std::fs::File>>> {
        Ok(JsonLines::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> Collector for JsonLines<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let t_us = self.epoch.elapsed().as_micros() as u64;
        let line = TimedEvent { t_us, event }.to_json_line();
        let mut out = self.out.lock().expect("telemetry writer lock");
        let _ = writeln!(out, "{line}");
    }
}

/// Forwards every event to two sinks (e.g. buffer in memory *and* stream to disk).
/// Enabled when either side is.
pub struct Tee<'a>(pub &'a dyn Collector, pub &'a dyn Collector);

impl Collector for Tee<'_> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn record(&self, event: Event) {
        if self.0.enabled() {
            self.0.record(event.clone());
        }
        if self.1.enabled() {
            self.1.record(event);
        }
    }
}

/// Total time spent inside each span name, in first-appearance order.
///
/// Spans may nest (time inside a nested span counts toward both); an unmatched
/// [`Event::SpanEnd`] is ignored and an unclosed [`Event::SpanBegin`] contributes nothing.
pub fn phase_durations(events: &[TimedEvent]) -> Vec<(&'static str, u64)> {
    let mut totals: Vec<(&'static str, u64)> = Vec::new();
    let mut open: Vec<(&'static str, u64)> = Vec::new();
    for e in events {
        match e.event {
            Event::SpanBegin { name } => open.push((name, e.t_us)),
            Event::SpanEnd { name } => {
                if let Some(pos) = open.iter().rposition(|(n, _)| *n == name) {
                    let (_, begin) = open.remove(pos);
                    let elapsed = e.t_us.saturating_sub(begin);
                    match totals.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, total)) => *total += elapsed,
                        None => totals.push((name, elapsed)),
                    }
                }
            }
            _ => {}
        }
    }
    totals
}

/// Event counts per [`Event::kind`], in first-appearance order.
pub fn counts_by_kind(events: &[TimedEvent]) -> Vec<(&'static str, usize)> {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for e in events {
        let kind = e.event.kind();
        match counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => counts.push((kind, 1)),
        }
    }
    counts
}

/// Renders one or more event tracks as a Chrome `trace_event` JSON document, loadable in
/// `about://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Each `(name, events)` track becomes one thread of a single `lift` process: span
/// begin/end pairs map to `B`/`E` duration events, everything else to instant events whose
/// fields appear under `args`. Timestamps are the events' own microsecond stamps, so tracks
/// recorded by different sinks each start at their own zero.
pub fn chrome_trace(tracks: &[(&str, &[TimedEvent])]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"lift\"}}"
            .to_string(),
        &mut out,
    );
    for (tid, (track, events)) in tracks.iter().enumerate() {
        let tid = tid + 1;
        let mut name = String::new();
        write_escaped(&mut name, track);
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":{name}}}}}"
            ),
            &mut out,
        );
        for e in *events {
            let line = match &e.event {
                Event::SpanBegin { name } => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{}}}",
                    e.t_us
                ),
                Event::SpanEnd { name } => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{}}}",
                    e.t_us
                ),
                other => {
                    let mut args = String::new();
                    other.write_fields(&mut args);
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                         \"tid\":{tid},\"ts\":{},\"args\":{{{args}}}}}",
                        other.kind(),
                        e.t_us
                    )
                }
            };
            push(line, &mut out);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_disabled_and_silent() {
        let null = Null;
        assert!(!null.enabled());
        null.record(Event::SpanBegin { name: "x" }); // must not panic
        null.span_begin("x");
        null.counter("n", 1.0);
    }

    #[test]
    fn in_memory_buffers_events_in_order_with_monotonic_stamps() {
        let sink = InMemory::new();
        sink.span_begin("enumerate");
        sink.record(Event::Counter {
            name: "executed_kernels",
            value: 4.0,
        });
        sink.span_end("enumerate");
        let events = sink.into_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].event, Event::SpanBegin { name: "enumerate" });
        assert_eq!(events[2].event, Event::SpanEnd { name: "enumerate" });
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn json_lines_are_valid_self_describing_objects() {
        let sink = JsonLines::new(Vec::new());
        sink.record(Event::Rejection {
            rule: "split-join",
            site: "@root.\"quoted\"".to_string(),
            reason: RejectReason::IllTyped,
        });
        sink.record(Event::TunerPoint {
            index: 3,
            point: "splits=[2] launch=64/16".to_string(),
            best_time: None,
            lowered: 0,
            variants: 0,
            improved: false,
            cache_hit: true,
        });
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"rejection\""));
        assert!(lines[0].contains("\"reason\":\"ill_typed\""));
        assert!(lines[0].contains("\\\"quoted\\\""), "{}", lines[0]);
        assert!(lines[1].contains("\"best_time\":null"));
        assert!(lines[1].contains("\"cache_hit\":true"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn tee_forwards_to_both_sinks() {
        let a = InMemory::new();
        let b = InMemory::new();
        let tee = Tee(&a, &b);
        assert!(tee.enabled());
        tee.record(Event::SpanBegin { name: "x" });
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        // A tee over disabled sinks is disabled.
        assert!(!Tee(&Null, &Null).enabled());
    }

    fn at(t_us: u64, event: Event) -> TimedEvent {
        TimedEvent { t_us, event }
    }

    #[test]
    fn phase_durations_handle_nesting_and_repeats() {
        let events = vec![
            at(0, Event::SpanBegin { name: "outer" }),
            at(10, Event::SpanBegin { name: "inner" }),
            at(30, Event::SpanEnd { name: "inner" }),
            at(50, Event::SpanEnd { name: "outer" }),
            at(60, Event::SpanBegin { name: "inner" }),
            at(100, Event::SpanEnd { name: "inner" }),
            // Unmatched end is ignored; unclosed begin contributes nothing.
            at(110, Event::SpanEnd { name: "stray" }),
            at(120, Event::SpanBegin { name: "open" }),
        ];
        let phases = phase_durations(&events);
        assert_eq!(phases, vec![("inner", 60), ("outer", 50)]);
    }

    #[test]
    fn counts_by_kind_preserves_first_appearance_order() {
        let events = vec![
            at(0, Event::SpanBegin { name: "a" }),
            at(
                1,
                Event::Counter {
                    name: "n",
                    value: 1.0,
                },
            ),
            at(2, Event::SpanEnd { name: "a" }),
            at(
                3,
                Event::Counter {
                    name: "m",
                    value: 2.0,
                },
            ),
        ];
        assert_eq!(
            counts_by_kind(&events),
            vec![("span_begin", 1), ("counter", 2), ("span_end", 1)]
        );
    }

    #[test]
    fn chrome_trace_contains_span_pairs_and_instants() {
        let events = vec![
            at(0, Event::SpanBegin { name: "enumerate" }),
            at(
                5,
                Event::BeamRound {
                    depth: 0,
                    frontier: 1,
                    expanded: 10,
                    derived: 8,
                    dedup_hits: 1,
                    rejected: 1,
                    completed: 0,
                    kept: 8,
                    pruned: 0,
                },
            ),
            at(9, Event::SpanEnd { name: "enumerate" }),
        ];
        let doc = chrome_trace(&[("dot_product", &events)]);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\":\"B\""));
        assert!(doc.contains("\"ph\":\"E\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"frontier\":1"));
        // Balanced braces at the top level: the document parses as one object.
        assert_eq!(doc.matches("traceEvents").count(), 1);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let line = TimedEvent {
            t_us: 0,
            event: Event::Counter {
                name: "bad",
                value: f64::NAN,
            },
        }
        .to_json_line();
        assert!(line.contains("\"value\":null"));
    }

    #[test]
    fn f64_serialization_is_json_compatible() {
        let line = TimedEvent {
            t_us: 1,
            event: Event::Variant {
                rank: 0,
                estimated_time: 19060.278,
                kernels: 1,
                steps: 3,
            },
        }
        .to_json_line();
        assert!(line.contains("\"estimated_time\":19060.278"), "{line}");
    }
}
