//! Type inference for the Lift IR (Section 5.1).
//!
//! Types are inferred by traversing the expression graph following the data flow: the types of
//! the root lambda's parameters are given, and every pattern's typing rule determines the type
//! of its result from the types of its arguments. Array lengths are symbolic [`ArithExpr`]s, so
//! for example `split m : [T]_n -> [[T]_m]_{n/m}` introduces the quotient `n/m` which later
//! drives memory allocation and index generation.

use std::fmt;

use lift_arith::ArithExpr;

use crate::node::{ExprId, ExprKind, FunDecl, FunDeclId, Pattern, Program};
use crate::types::Type;

/// Errors reported by type inference.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeError {
    /// A function was applied to the wrong number of arguments.
    WrongArity {
        /// Name of the function or pattern.
        function: String,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments found at the call site.
        found: usize,
    },
    /// An argument had an unexpected type.
    Mismatch {
        /// Description of the context in which the mismatch occurred.
        context: String,
        /// The type that was expected.
        expected: String,
        /// The type that was found.
        found: String,
    },
    /// A pattern that requires an array argument received a non-array value.
    NotAnArray {
        /// Name of the pattern.
        pattern: String,
        /// The offending type.
        found: String,
    },
    /// Zipped arrays have different lengths.
    ZipLengthMismatch {
        /// The first length.
        first: String,
        /// The mismatching length.
        other: String,
    },
    /// A tuple projection used an out-of-range component index.
    TupleIndexOutOfRange {
        /// The requested component.
        index: usize,
        /// The tuple arity.
        arity: usize,
    },
    /// A parameter was used before any call gave it a type.
    UntypedParam {
        /// The parameter name.
        name: String,
    },
    /// A mirror `pad` whose amounts are not provably within one array length. A single
    /// reflection only reaches `n` elements past either end; beyond that the emitted index
    /// formula would leave the buffer, so — like the slide side condition below — the
    /// obligation is discharged at the type level where every layer can rely on it.
    MirrorPadTooWide {
        /// The pad amounts.
        left: String,
        /// The pad amounts.
        right: String,
        /// The array length.
        len: String,
    },
    /// `slide(size, step)` over an array whose length does not satisfy
    /// `(len - size) mod step == 0` provably. The window-count type `(len - size)/step + 1`
    /// and the interpreter's greedy window enumeration only provably agree (and compose with
    /// the divisibility-based simplification rules) when the step divides the slack exactly,
    /// so anything else is rejected up front instead of mis-counting windows downstream.
    SlideIndivisible {
        /// The array length.
        len: String,
        /// The window size.
        size: String,
        /// The window step.
        step: String,
    },
    /// The program has no root lambda.
    MissingRoot,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::WrongArity {
                function,
                expected,
                found,
            } => {
                write!(
                    f,
                    "`{function}` expects {expected} argument(s) but received {found}"
                )
            }
            TypeError::Mismatch {
                context,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            TypeError::NotAnArray { pattern, found } => {
                write!(f, "`{pattern}` requires an array argument, found {found}")
            }
            TypeError::ZipLengthMismatch { first, other } => {
                write!(f, "zip requires equal lengths, found {first} and {other}")
            }
            TypeError::TupleIndexOutOfRange { index, arity } => {
                write!(
                    f,
                    "tuple component {index} requested from a tuple of arity {arity}"
                )
            }
            TypeError::UntypedParam { name } => {
                write!(f, "parameter `{name}` was used before receiving a type")
            }
            TypeError::MirrorPadTooWide { left, right, len } => {
                write!(
                    f,
                    "padMirror({left},{right}) over an array of length {len}: a mirror \
                     reflection only reaches one array length past either end, and the pad \
                     amounts are not provably within it"
                )
            }
            TypeError::SlideIndivisible { len, size, step } => {
                write!(
                    f,
                    "slide({size},{step}) over an array of length {len}: the step must \
                     divide len - size exactly (`({len} - {size}) mod {step}` does not \
                     provably normalise to 0)"
                )
            }
            TypeError::MissingRoot => write!(f, "the program has no root lambda"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Runs type inference over the whole program, annotating every expression with its type.
///
/// # Errors
///
/// Returns a [`TypeError`] describing the first inconsistency found.
pub fn infer_types(program: &mut Program) -> Result<(), TypeError> {
    let root = program.root().ok_or(TypeError::MissingRoot)?;
    let params = program.root_params().to_vec();
    let mut arg_types = Vec::with_capacity(params.len());
    for p in &params {
        match &program.expr(*p).ty {
            Some(t) => arg_types.push(t.clone()),
            None => {
                let name = match &program.expr(*p).kind {
                    ExprKind::Param { name } => name.clone(),
                    _ => "<non-param>".to_string(),
                };
                return Err(TypeError::UntypedParam { name });
            }
        }
    }
    infer_call(program, root, &arg_types)?;
    Ok(())
}

/// Infers the type of the expression `id`, annotating it and all its children.
fn infer_expr(program: &mut Program, id: ExprId) -> Result<Type, TypeError> {
    let kind = program.expr(id).kind.clone();
    let ty = match kind {
        ExprKind::Literal(l) => l.ty(),
        ExprKind::Param { name } => match &program.expr(id).ty {
            Some(t) => t.clone(),
            None => return Err(TypeError::UntypedParam { name }),
        },
        ExprKind::FunCall { f, args } => {
            let mut arg_types = Vec::with_capacity(args.len());
            for a in &args {
                arg_types.push(infer_expr(program, *a)?);
            }
            infer_call(program, f, &arg_types)?
        }
    };
    program.expr_mut(id).ty = Some(ty.clone());
    Ok(ty)
}

/// Re-runs type inference for a call to `f` with arguments of the given types, re-annotating
/// every expression reachable from `f`'s body.
///
/// The code generator uses this when it instantiates a lambda at a different type than the
/// whole-program inference did (most prominently the body of `iterate`, which is generated
/// once for a symbolic length even though inference unrolled it).
///
/// # Errors
///
/// Returns a [`TypeError`] if the call is ill-typed.
pub fn infer_call_types(
    program: &mut Program,
    f: FunDeclId,
    arg_types: &[Type],
) -> Result<Type, TypeError> {
    infer_call(program, f, arg_types)
}

/// Infers the result type of calling `f` with arguments of the given types.
pub(crate) fn infer_call(
    program: &mut Program,
    f: FunDeclId,
    arg_types: &[Type],
) -> Result<Type, TypeError> {
    match program.decl(f).clone() {
        FunDecl::Lambda { params, body } => {
            if params.len() != arg_types.len() {
                return Err(TypeError::WrongArity {
                    function: "lambda".into(),
                    expected: params.len(),
                    found: arg_types.len(),
                });
            }
            for (p, t) in params.iter().zip(arg_types) {
                program.expr_mut(*p).ty = Some(t.clone());
            }
            infer_expr(program, body)
        }
        FunDecl::UserFun(uf) => {
            if uf.arity() != arg_types.len() {
                return Err(TypeError::WrongArity {
                    function: uf.name().to_string(),
                    expected: uf.arity(),
                    found: arg_types.len(),
                });
            }
            for (expected, found) in uf.param_types().iter().zip(arg_types) {
                if expected != found {
                    return Err(TypeError::Mismatch {
                        context: format!("call to user function `{}`", uf.name()),
                        expected: expected.to_string(),
                        found: found.to_string(),
                    });
                }
            }
            Ok(uf.return_type().clone())
        }
        FunDecl::Pattern(p) => infer_pattern(program, &p, arg_types),
    }
}

/// The arith-checked `slide` side condition: `(len - size) mod step` must provably
/// normalise to the constant 0 (a step of 1 always passes because `x mod 1` folds to 0).
/// This is the same kind of proof obligation the split-join rewrite rule discharges for its
/// split factor, stated once at the type level so *both* the type-level window count
/// `(len - size)/step + 1` and the interpreter's greedy window walk describe the same set of
/// windows.
pub fn check_slide_divisibility(
    len: &ArithExpr,
    size: &ArithExpr,
    step: &ArithExpr,
) -> Result<(), TypeError> {
    let slack = len.clone() - size.clone();
    if (slack % step.clone()).is_cst(0) {
        Ok(())
    } else {
        Err(TypeError::SlideIndivisible {
            len: len.to_string(),
            size: size.to_string(),
            step: step.to_string(),
        })
    }
}

/// The mirror-`pad` side condition: a single reflection only reaches `len` elements past
/// either end, so both pad amounts must be provably `<= len` (clamp and wrap handle any
/// amount). Provability uses the `max` smart constructor: `max(amount, len)` collapsing to
/// `len` is exactly the range analysis proving `amount <= len`.
pub fn check_pad_width(
    left: &ArithExpr,
    right: &ArithExpr,
    mode: crate::node::PadMode,
    len: &ArithExpr,
) -> Result<(), TypeError> {
    if mode != crate::node::PadMode::Mirror {
        return Ok(());
    }
    let fits = |amount: &ArithExpr| amount.clone().max_of(len.clone()) == *len;
    if fits(left) && fits(right) {
        Ok(())
    } else {
        Err(TypeError::MirrorPadTooWide {
            left: left.to_string(),
            right: right.to_string(),
            len: len.to_string(),
        })
    }
}

/// The typing rules of the predefined patterns (Section 3.2).
fn infer_pattern(
    program: &mut Program,
    pattern: &Pattern,
    arg_types: &[Type],
) -> Result<Type, TypeError> {
    // The memory-placement wrappers are transparent: they accept whatever their nested
    // function accepts (e.g. `toPrivate(reduceSeq(f))` is called with two arguments), so
    // arity checking is deferred to the nested call.
    let transparent = matches!(
        pattern,
        Pattern::ToGlobal { .. } | Pattern::ToLocal { .. } | Pattern::ToPrivate { .. }
    );
    let expect_arity = pattern.arity();
    if !transparent && arg_types.len() != expect_arity {
        return Err(TypeError::WrongArity {
            function: pattern.name(),
            expected: expect_arity,
            found: arg_types.len(),
        });
    }
    let array_of = |pattern: &Pattern, t: &Type| -> Result<(Type, ArithExpr), TypeError> {
        match t.as_array() {
            Some((elem, len)) => Ok((elem.clone(), len.clone())),
            None => Err(TypeError::NotAnArray {
                pattern: pattern.name(),
                found: t.to_string(),
            }),
        }
    };

    match pattern {
        Pattern::Map { f }
        | Pattern::MapSeq { f }
        | Pattern::MapGlb { f, .. }
        | Pattern::MapWrg { f, .. }
        | Pattern::MapLcl { f, .. } => {
            let (elem, len) = array_of(pattern, &arg_types[0])?;
            let out_elem = infer_call(program, *f, &[elem])?;
            Ok(Type::array(out_elem, len))
        }
        Pattern::MapVec { f } => match &arg_types[0] {
            Type::Vector(kind, width) => {
                let out = infer_call(program, *f, &[Type::Scalar(*kind)])?;
                match out {
                    Type::Scalar(out_kind) => Ok(Type::Vector(out_kind, *width)),
                    other => Err(TypeError::Mismatch {
                        context: "mapVec function result".into(),
                        expected: "a scalar".into(),
                        found: other.to_string(),
                    }),
                }
            }
            other => Err(TypeError::Mismatch {
                context: "mapVec argument".into(),
                expected: "a vector".into(),
                found: other.to_string(),
            }),
        },
        Pattern::Reduce { f } | Pattern::ReduceSeq { f } => {
            let init = arg_types[0].clone();
            let (elem, _len) = array_of(pattern, &arg_types[1])?;
            let acc = infer_call(program, *f, &[init.clone(), elem])?;
            if acc != init {
                return Err(TypeError::Mismatch {
                    context: format!("{} accumulator", pattern.name()),
                    expected: init.to_string(),
                    found: acc.to_string(),
                });
            }
            Ok(Type::array(acc, 1usize))
        }
        Pattern::Id => Ok(arg_types[0].clone()),
        Pattern::Iterate { n, f } => {
            let mut current = arg_types[0].clone();
            for _ in 0..*n {
                current = infer_call(program, *f, &[current])?;
            }
            Ok(current)
        }
        Pattern::Split { chunk } => {
            let (elem, len) = array_of(pattern, &arg_types[0])?;
            let outer = len / chunk.clone();
            Ok(Type::array(Type::array(elem, chunk.clone()), outer))
        }
        Pattern::Join => {
            let (elem, outer) = array_of(pattern, &arg_types[0])?;
            let (inner_elem, inner) = array_of(pattern, &elem)?;
            Ok(Type::array(inner_elem, outer * inner))
        }
        Pattern::Gather { .. } | Pattern::Scatter { .. } => Ok(arg_types[0].clone()),
        Pattern::Transpose => {
            let (row, n) = array_of(pattern, &arg_types[0])?;
            let (elem, m) = array_of(pattern, &row)?;
            Ok(Type::array(Type::array(elem, n), m))
        }
        Pattern::Zip { .. } => {
            let mut elems = Vec::with_capacity(arg_types.len());
            let mut len: Option<ArithExpr> = None;
            for t in arg_types {
                let (elem, l) = array_of(pattern, t)?;
                match &len {
                    None => len = Some(l),
                    Some(first) => {
                        if *first != l {
                            return Err(TypeError::ZipLengthMismatch {
                                first: first.to_string(),
                                other: l.to_string(),
                            });
                        }
                    }
                }
                elems.push(elem);
            }
            Ok(Type::array(
                Type::Tuple(elems),
                len.expect("zip has at least one argument"),
            ))
        }
        Pattern::Get { index } => match &arg_types[0] {
            Type::Tuple(elems) => {
                elems
                    .get(*index)
                    .cloned()
                    .ok_or(TypeError::TupleIndexOutOfRange {
                        index: *index,
                        arity: elems.len(),
                    })
            }
            other => Err(TypeError::Mismatch {
                context: "get".into(),
                expected: "a tuple".into(),
                found: other.to_string(),
            }),
        },
        Pattern::Slide { size, step } => {
            let (elem, len) = array_of(pattern, &arg_types[0])?;
            check_slide_divisibility(&len, size, step)?;
            let windows = (len - size.clone()) / step.clone() + 1;
            Ok(Type::array(Type::array(elem, size.clone()), windows))
        }
        Pattern::Pad { left, right, mode } => {
            let (elem, len) = array_of(pattern, &arg_types[0])?;
            check_pad_width(left, right, *mode, &len)?;
            Ok(Type::array(elem, left.clone() + len + right.clone()))
        }
        Pattern::ToGlobal { f } | Pattern::ToLocal { f } | Pattern::ToPrivate { f } => {
            infer_call(program, *f, arg_types)
        }
        Pattern::AsVector { width } => {
            let (elem, len) = array_of(pattern, &arg_types[0])?;
            match elem {
                Type::Scalar(kind) => Ok(Type::array(
                    Type::Vector(kind, *width),
                    len / ArithExpr::cst(*width as i64),
                )),
                other => Err(TypeError::Mismatch {
                    context: "asVector".into(),
                    expected: "an array of scalars".into(),
                    found: other.to_string(),
                }),
            }
        }
        Pattern::AsScalar => {
            let (elem, len) = array_of(pattern, &arg_types[0])?;
            match elem {
                Type::Vector(kind, width) => Ok(Type::array(
                    Type::Scalar(kind),
                    len * ArithExpr::cst(width as i64),
                )),
                other => Err(TypeError::Mismatch {
                    context: "asScalar".into(),
                    expected: "an array of vectors".into(),
                    found: other.to_string(),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::UserFun;

    fn float_array(len: impl Into<ArithExpr>) -> Type {
        Type::array(Type::float(), len)
    }

    #[test]
    fn high_level_map_and_reduce_type_like_their_lowered_forms() {
        let n = ArithExpr::size_var("N");
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce(add, 0.0);
        let idf = p.user_fun(UserFun::id_float());
        let m = p.map(idf);
        p.with_root(vec![("x", float_array(n.clone()))], |p, params| {
            let mapped = p.apply1(m, params[0]);
            p.apply1(red, mapped)
        });
        infer_types(&mut p).expect("types");
        assert_eq!(*p.type_of(p.root_body()), float_array(1usize));
        assert_eq!(p.first_high_level_pattern(), Some("map".into()));
    }

    #[test]
    fn map_preserves_length() {
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let m = p.map_glb(0, id);
        p.with_root(
            vec![("x", float_array(ArithExpr::size_var("N")))],
            |p, params| p.apply1(m, params[0]),
        );
        infer_types(&mut p).expect("types");
        let out = p.type_of(p.root_body());
        assert_eq!(*out, float_array(ArithExpr::size_var("N")));
    }

    #[test]
    fn split_then_join_restores_the_length() {
        // With a constant length the quotient folds and join restores the original length
        // exactly; with a symbolic length the type keeps the (n/m)*m form because the type
        // system does not assume divisibility.
        let mut p = Program::new("t");
        let s = p.split(32usize);
        let j = p.join();
        p.with_root(vec![("x", float_array(1024usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(j, split)
        });
        infer_types(&mut p).expect("types");
        assert_eq!(*p.type_of(p.root_body()), float_array(1024usize));

        let mut p = Program::new("t2");
        let n = ArithExpr::size_var("N");
        let s = p.split(32usize);
        let j = p.join();
        p.with_root(vec![("x", float_array(n.clone()))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(j, split)
        });
        infer_types(&mut p).expect("types");
        assert_eq!(*p.type_of(p.root_body()), float_array((n / 32) * 32));
    }

    #[test]
    fn split_introduces_the_quotient_length() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        let s = p.split(128usize);
        p.with_root(vec![("x", float_array(n.clone()))], |p, params| {
            p.apply1(s, params[0])
        });
        infer_types(&mut p).expect("types");
        let t = p.type_of(p.root_body()).clone();
        let (inner, outer) = t.as_array().expect("outer array");
        assert_eq!(*outer, n / 128);
        assert_eq!(*inner, float_array(128usize));
    }

    #[test]
    fn zip_requires_equal_lengths() {
        let mut p = Program::new("t");
        let z = p.zip2();
        p.with_root(
            vec![
                ("x", float_array(ArithExpr::size_var("N"))),
                ("y", float_array(ArithExpr::size_var("M"))),
            ],
            |p, params| p.apply(z, [params[0], params[1]]),
        );
        let err = infer_types(&mut p).unwrap_err();
        assert!(matches!(err, TypeError::ZipLengthMismatch { .. }));
    }

    #[test]
    fn zip_produces_an_array_of_pairs() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        let z = p.zip2();
        p.with_root(
            vec![("x", float_array(n.clone())), ("y", float_array(n.clone()))],
            |p, params| p.apply(z, [params[0], params[1]]),
        );
        infer_types(&mut p).expect("types");
        let t = p.type_of(p.root_body()).clone();
        assert_eq!(t, Type::array(Type::pair(Type::float(), Type::float()), n));
    }

    #[test]
    fn reduce_produces_a_singleton_array() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce_seq(add, 0.0);
        p.with_root(vec![("x", float_array(n))], |p, params| {
            p.apply1(red, params[0])
        });
        infer_types(&mut p).expect("types");
        assert_eq!(*p.type_of(p.root_body()), float_array(1usize));
    }

    #[test]
    fn reduce_with_wrong_accumulator_type_fails() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        // `mult_pair` has the wrong shape for a reduction function.
        let bad = p.user_fun(UserFun::mult_pair());
        let pattern = p.reduce_seq_pattern(bad);
        p.with_root(vec![("x", float_array(n))], |p, params| {
            let init = p.literal_f32(0.0);
            p.apply(pattern, [init, params[0]])
        });
        assert!(infer_types(&mut p).is_err());
    }

    #[test]
    fn transpose_swaps_dimensions() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        let m = ArithExpr::size_var("M");
        let t = p.transpose();
        p.with_root(
            vec![(
                "x",
                Type::array(Type::array(Type::float(), m.clone()), n.clone()),
            )],
            |p, params| p.apply1(t, params[0]),
        );
        infer_types(&mut p).expect("types");
        assert_eq!(
            *p.type_of(p.root_body()),
            Type::array(Type::array(Type::float(), n), m)
        );
    }

    #[test]
    fn slide_computes_window_count() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        let s = p.slide(3usize, 1usize);
        p.with_root(vec![("x", float_array(n.clone()))], |p, params| {
            p.apply1(s, params[0])
        });
        infer_types(&mut p).expect("types");
        let t = p.type_of(p.root_body()).clone();
        let (inner, windows) = t.as_array().expect("array");
        assert_eq!(*windows, (n - 3) / 1 + 1);
        assert_eq!(*inner, float_array(3usize));
    }

    #[test]
    fn slide_with_indivisible_step_is_a_typed_error() {
        // slide(3, 2) over [float]_6: (6 - 3) mod 2 = 1, so the type-level window count
        // (floor quotient) and the greedy window walk would describe different coverage of
        // the array; the checker rejects it. (The matching interpreter check is pinned in
        // `lift-interp`.)
        let mut p = Program::new("t");
        let s = p.slide(3usize, 2usize);
        p.with_root(vec![("x", float_array(6usize))], |p, params| {
            p.apply1(s, params[0])
        });
        let err = infer_types(&mut p).unwrap_err();
        assert!(matches!(err, TypeError::SlideIndivisible { .. }), "{err}");
        assert!(err.to_string().contains("mod 2"), "{err}");

        // A divisible step passes: slide(3, 2) over [float]_7 has (7-3) mod 2 = 0.
        let mut p = Program::new("t2");
        let s = p.slide(3usize, 2usize);
        p.with_root(vec![("x", float_array(7usize))], |p, params| {
            p.apply1(s, params[0])
        });
        infer_types(&mut p).expect("divisible slide types");
        let t = p.type_of(p.root_body()).clone();
        let (_, windows) = t.as_array().expect("array");
        assert_eq!(*windows, ArithExpr::cst(3));

        // A symbolic length with step 1 still passes ((N - 3) mod 1 folds to 0).
        let mut p = Program::new("t3");
        let s = p.slide(3usize, 1usize);
        p.with_root(
            vec![("x", float_array(ArithExpr::size_var("N")))],
            |p, params| p.apply1(s, params[0]),
        );
        infer_types(&mut p).expect("unit-step slide types");
    }

    #[test]
    fn pad_extends_the_length() {
        use crate::node::PadMode;
        // Clamp and wrap pad any symbolic length; mirror needs the amounts provably within
        // one array length, so it is checked on a concrete one.
        let n = ArithExpr::size_var("N");
        for mode in [PadMode::Clamp, PadMode::Wrap] {
            let mut p = Program::new("t");
            let pad = p.pad(2usize, 3usize, mode);
            p.with_root(vec![("x", float_array(n.clone()))], |p, params| {
                p.apply1(pad, params[0])
            });
            infer_types(&mut p).expect("pad types");
            assert_eq!(*p.type_of(p.root_body()), float_array(n.clone() + 5));
        }
        let mut p = Program::new("t");
        let pad = p.pad(2usize, 3usize, PadMode::Mirror);
        p.with_root(vec![("x", float_array(8usize))], |p, params| {
            p.apply1(pad, params[0])
        });
        infer_types(&mut p).expect("mirror pad types");
        assert_eq!(*p.type_of(p.root_body()), float_array(13usize));
    }

    #[test]
    fn mirror_pad_wider_than_the_array_is_a_typed_error() {
        use crate::node::PadMode;
        // A single reflection only reaches one array length past either end; the checker
        // rejects pad amounts beyond it (the interpreter enforces the same bound), so the
        // out-of-range mirror index formula can never be emitted.
        let mut p = Program::new("t");
        let pad = p.pad(3usize, 0usize, PadMode::Mirror);
        p.with_root(vec![("x", float_array(2usize))], |p, params| {
            p.apply1(pad, params[0])
        });
        let err = infer_types(&mut p).unwrap_err();
        assert!(matches!(err, TypeError::MirrorPadTooWide { .. }), "{err}");

        // Clamp and wrap handle any amount.
        for mode in [PadMode::Clamp, PadMode::Wrap] {
            let mut p = Program::new("t2");
            let pad = p.pad(3usize, 5usize, mode);
            p.with_root(vec![("x", float_array(2usize))], |p, params| {
                p.apply1(pad, params[0])
            });
            infer_types(&mut p).expect("clamp/wrap pads of any width type");
        }

        // A symbolic length admits a provably-smaller constant amount (1 <= N for a size
        // variable) but rejects what cannot be proven.
        let n = ArithExpr::size_var("N");
        let mut p = Program::new("t3");
        let pad = p.pad(1usize, 1usize, PadMode::Mirror);
        p.with_root(vec![("x", float_array(n.clone()))], |p, params| {
            p.apply1(pad, params[0])
        });
        infer_types(&mut p).expect("mirror pad of 1 over [float]_N types");
        let mut p = Program::new("t4");
        let pad = p.pad(2usize, 0usize, PadMode::Mirror);
        p.with_root(vec![("x", float_array(n))], |p, params| {
            p.apply1(pad, params[0])
        });
        assert!(matches!(
            infer_types(&mut p).unwrap_err(),
            TypeError::MirrorPadTooWide { .. }
        ));
    }

    #[test]
    fn pad_then_slide_covers_every_input_position() {
        // pad(1, 1) then slide(3, 1): [float]_N -> [float]_{N+2} -> N windows of 3 — the
        // canonical boundary-handled stencil shape.
        let n = ArithExpr::size_var("N");
        let mut p = Program::new("t");
        let pad = p.pad(1usize, 1usize, crate::node::PadMode::Clamp);
        let s = p.slide(3usize, 1usize);
        p.with_root(vec![("x", float_array(n.clone()))], |p, params| {
            let padded = p.apply1(pad, params[0]);
            p.apply1(s, padded)
        });
        infer_types(&mut p).expect("types");
        let t = p.type_of(p.root_body()).clone();
        let (inner, windows) = t.as_array().expect("array");
        assert_eq!(*windows, n);
        assert_eq!(*inner, float_array(3usize));
    }

    #[test]
    fn slide2d_produces_square_neighbourhoods() {
        use crate::node::PadMode;
        // pad2d(1,1) then slide2d(3,1) over an 4×6 grid: one 3×3 window per grid point.
        let mut p = Program::new("t");
        let pad = p.pad2d(1usize, 1usize, PadMode::Clamp);
        let s2 = p.slide2d(3usize, 1usize);
        p.with_root(
            vec![("x", Type::array(float_array(6usize), 4usize))],
            |p, params| {
                let padded = p.apply1(pad, params[0]);
                p.apply1(s2, padded)
            },
        );
        infer_types(&mut p).expect("types");
        assert_eq!(
            *p.type_of(p.root_body()),
            Type::array(
                Type::array(Type::array(float_array(3usize), 3usize), 6usize),
                4usize
            )
        );
    }

    #[test]
    fn iterate_applies_the_length_change_repeatedly() {
        let mut p = Program::new("t");
        // iterate 3 (join . map(reduce(add, 0)) . split 2): halves the length each time.
        let add = p.user_fun(UserFun::add());
        let red = p.reduce_seq(add, 0.0);
        let m = p.map_seq(red);
        let s = p.split(2usize);
        let j = p.join();
        let body = p.compose(&[j, m, s]);
        let it = p.iterate(3, body);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            p.apply1(it, params[0])
        });
        infer_types(&mut p).expect("types");
        assert_eq!(*p.type_of(p.root_body()), float_array(8usize));
    }

    #[test]
    fn vectorisation_round_trip() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        let av = p.as_vector(4);
        let asc = p.as_scalar();
        p.with_root(vec![("x", float_array(n.clone()))], |p, params| {
            let v = p.apply1(av, params[0]);
            p.apply1(asc, v)
        });
        infer_types(&mut p).expect("types");
        assert_eq!(*p.type_of(p.root_body()), float_array((n / 4) * 4));
    }

    #[test]
    fn get_projects_tuple_components() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        let z = p.zip2();
        let g0 = p.get(0);
        let lam = p.lambda(&["pair"], |p, params| p.apply1(g0, params[0]));
        let m = p.map_glb(0, lam);
        p.with_root(
            vec![("x", float_array(n.clone())), ("y", float_array(n.clone()))],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                p.apply1(m, zipped)
            },
        );
        infer_types(&mut p).expect("types");
        assert_eq!(*p.type_of(p.root_body()), float_array(n));
    }

    #[test]
    fn get_out_of_range_fails() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        let z = p.zip2();
        let g9 = p.get(9);
        let lam = p.lambda(&["pair"], |p, params| p.apply1(g9, params[0]));
        let m = p.map_glb(0, lam);
        p.with_root(
            vec![("x", float_array(n.clone())), ("y", float_array(n))],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                p.apply1(m, zipped)
            },
        );
        let err = infer_types(&mut p).unwrap_err();
        assert!(matches!(
            err,
            TypeError::TupleIndexOutOfRange { index: 9, arity: 2 }
        ));
    }

    #[test]
    fn user_fun_argument_mismatch_is_reported() {
        let mut p = Program::new("t");
        let n = ArithExpr::size_var("N");
        let add = p.user_fun(UserFun::add());
        let m = p.map_glb(0, add); // add needs 2 args but map provides 1
        p.with_root(vec![("x", float_array(n))], |p, params| {
            p.apply1(m, params[0])
        });
        let err = infer_types(&mut p).unwrap_err();
        assert!(matches!(err, TypeError::WrongArity { .. }), "got {err:?}");
        assert!(err.to_string().contains("add"));
    }

    #[test]
    fn missing_root_is_an_error() {
        let mut p = Program::new("t");
        assert_eq!(infer_types(&mut p).unwrap_err(), TypeError::MissingRoot);
    }

    #[test]
    fn listing1_dot_product_types() {
        // The partial dot product of Listing 1 (work-group size 128, iterate 6).
        let n = ArithExpr::size_var("N");
        let mut p = Program::new("partialDot");
        let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
        let add = p.user_fun(UserFun::add());

        // Step 1 inside the work group: split2 . mapLcl(toLocal(mapSeq(id)) . reduceSeq(...)) . join
        let red1 = p.reduce_seq(mult_add, 0.0);
        let copy_l1 = p.copy_to_local();
        let step1_f = p.compose(&[copy_l1, red1]);
        let step1_map = p.map_lcl(0, step1_f);
        let s2a = p.split(2usize);
        let j1 = p.join();
        let step1 = p.compose(&[j1, step1_map, s2a]);

        // Step 2: iterate6(join . mapLcl(toLocal(mapSeq(id)) . reduceSeq(add, 0)) . split2)
        let red2 = p.reduce_seq(add, 0.0);
        let copy_l2 = p.copy_to_local();
        let step2_f = p.compose(&[copy_l2, red2]);
        let step2_map = p.map_lcl(0, step2_f);
        let s2b = p.split(2usize);
        let j2 = p.join();
        let iter_body = p.compose(&[j2, step2_map, s2b]);
        let step2 = p.iterate(6, iter_body);

        // Step 3: join . toGlobal(mapLcl(mapSeq(id))) . split1
        let idf = p.user_fun(UserFun::id_float());
        let mseq = p.map_seq(idf);
        let mlcl = p.map_lcl(0, mseq);
        let copy_g = p.to_global(mlcl);
        let s1 = p.split(1usize);
        let j3 = p.join();
        let step3 = p.compose(&[j3, copy_g, s1]);

        let wg_body = p.compose(&[step3, step2, step1]);
        let wg = p.map_wrg(0, wg_body);
        let s128 = p.split(128usize);
        let jout = p.join();
        let z = p.zip2();
        p.with_root(
            vec![("x", float_array(n.clone())), ("y", float_array(n.clone()))],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                let split = p.apply1(s128, zipped);
                let mapped = p.apply1(wg, split);
                p.apply1(jout, mapped)
            },
        );
        infer_types(&mut p).expect("dot product types");
        // One partial result per work group.
        assert_eq!(*p.type_of(p.root_body()), float_array(n / 128));
    }
}
