//! # The Lift intermediate representation
//!
//! This crate implements the Lift IL/IR of Sections 3 and 4 of *Lift: A Functional
//! Data-Parallel IR for High-Performance GPU Code Generation* (CGO 2017):
//!
//! * [`types`] — the dependent type system: scalars, vectors, tuples and arrays whose lengths
//!   are symbolic arithmetic expressions,
//! * [`scalar`] — user functions (application-specific scalar computations),
//! * [`node`] — the arena-based expression graph: literals, parameters, function calls,
//!   lambdas and the predefined patterns (`map*`, `reduceSeq`, `split`, `join`, `zip`,
//!   `gather`, `scatter`, `slide`, `toLocal`, `asVector`, …),
//! * [`builder`] — a builder DSL for writing programs in the compositional style of Listing 1,
//! * [`typecheck`] — type inference following the data flow (Section 5.1),
//! * [`pretty`] — pretty printing in the paper's notation.
//!
//! # Example
//!
//! A parallel vector scaling written with the builder DSL:
//!
//! ```
//! use lift_ir::prelude::*;
//! use lift_arith::ArithExpr;
//!
//! let n = ArithExpr::size_var("N");
//! let mut p = Program::new("scale");
//! let mult = p.user_fun(UserFun::mult_pair());
//! let map = p.map_glb(0, mult);
//! let zip = p.zip2();
//! p.with_root(
//!     vec![
//!         ("x", Type::array(Type::float(), n.clone())),
//!         ("y", Type::array(Type::float(), n)),
//!     ],
//!     |p, params| {
//!         let zipped = p.apply(zip, [params[0], params[1]]);
//!         p.apply1(map, zipped)
//!     },
//! );
//! infer_types(&mut p).unwrap();
//! assert!(p.type_of(p.root_body()).is_array());
//! ```

pub mod builder;
pub mod node;
pub mod pretty;
pub mod scalar;
pub mod typecheck;
pub mod types;

pub use node::{
    ExprId, ExprKind, ExprNode, FunDecl, FunDeclId, Literal, PadMode, Pattern, Program, Reorder,
};
pub use scalar::{BinOp, ScalarExpr, UnOp, UserFun, UserFunError};
pub use typecheck::{
    check_pad_width, check_slide_divisibility, infer_call_types, infer_types, TypeError,
};
pub use types::{AddressSpace, ParallelismLevel, ScalarKind, Type};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::node::{
        ExprId, ExprKind, FunDecl, FunDeclId, Literal, PadMode, Pattern, Program, Reorder,
    };
    pub use crate::scalar::{BinOp, ScalarExpr, UnOp, UserFun};
    pub use crate::typecheck::{infer_call_types, infer_types, TypeError};
    pub use crate::types::{AddressSpace, ParallelismLevel, ScalarKind, Type};
}
