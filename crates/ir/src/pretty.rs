//! Pretty printing of Lift IL programs in the notation of the paper.
//!
//! The printer renders programs in the functional composition style of Listing 1. It is used
//! for debugging, for golden tests, and to measure the "low-level Lift IL" code sizes reported
//! in Table 1.

use crate::node::{ExprId, ExprKind, FunDecl, FunDeclId, Program};

/// Renders the whole program, one pattern application per line.
pub fn pretty_program(program: &Program) -> String {
    let Some(root) = program.root() else {
        return format!("{} = <no root>", program.name());
    };
    let (params, body) = match program.decl(root) {
        FunDecl::Lambda { params, body } => (params.clone(), *body),
        _ => unreachable!("the root is always a lambda"),
    };
    let mut out = String::new();
    out.push_str(program.name());
    out.push('(');
    for (i, p) in params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&param_name(program, *p));
        if let Some(t) = &program.expr(*p).ty {
            out.push_str(&format!(": {t}"));
        }
    }
    out.push_str(") =\n");
    out.push_str(&pretty_expr(program, body, 1));
    out.push('\n');
    out
}

/// Renders a single expression with the given indentation depth.
pub fn pretty_expr(program: &Program, id: ExprId, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    match &program.expr(id).kind {
        ExprKind::Literal(l) => format!("{pad}{}", l.c_source()),
        ExprKind::Param { name } => format!("{pad}{name}"),
        ExprKind::FunCall { f, args } => {
            let fname = pretty_fun(program, *f, indent);
            let mut out = format!("{pad}{fname}(");
            if args.len() == 1 && is_leaf(program, args[0]) {
                out.push_str(pretty_expr(program, args[0], 0).trim_start());
                out.push(')');
            } else {
                out.push('\n');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pretty_expr(program, *a, indent + 1));
                }
                out.push_str(&format!("\n{pad})"));
            }
            out
        }
    }
}

/// Renders a function declaration reference in-line.
pub fn pretty_fun(program: &Program, id: FunDeclId, indent: usize) -> String {
    match program.decl(id) {
        FunDecl::Lambda { params, body } => {
            let names: Vec<String> = params.iter().map(|p| param_name(program, *p)).collect();
            format!(
                "λ({}) -> \n{}\n{}",
                names.join(", "),
                pretty_expr(program, *body, indent + 1),
                "  ".repeat(indent)
            )
        }
        FunDecl::UserFun(uf) => uf.name().to_string(),
        FunDecl::Pattern(p) => {
            let name = p.name();
            match p.nested_fun() {
                Some(f) => format!("{name}({})", pretty_fun(program, f, indent)),
                None => name,
            }
        }
    }
}

/// Counts the non-empty lines of the pretty-printed program — the "low-level Lift IL" code
/// size measure of Table 1.
pub fn line_count(program: &Program) -> usize {
    pretty_program(program)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

fn param_name(program: &Program, id: ExprId) -> String {
    match &program.expr(id).kind {
        ExprKind::Param { name } => name.clone(),
        _ => "<expr>".to_string(),
    }
}

fn is_leaf(program: &Program, id: ExprId) -> bool {
    matches!(
        program.expr(id).kind,
        ExprKind::Literal(_) | ExprKind::Param { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::UserFun;
    use crate::types::Type;
    use lift_arith::ArithExpr;

    fn simple_program() -> Program {
        let n = ArithExpr::size_var("N");
        let mut p = Program::new("scale");
        let mult = p.user_fun(UserFun::mult_pair());
        let map = p.map_glb(0, mult);
        let zip = p.zip2();
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), n.clone())),
                ("y", Type::array(Type::float(), n)),
            ],
            |p, params| {
                let zipped = p.apply(zip, [params[0], params[1]]);
                p.apply1(map, zipped)
            },
        );
        p
    }

    #[test]
    fn program_header_lists_parameters_and_types() {
        let p = simple_program();
        let s = pretty_program(&p);
        assert!(
            s.starts_with("scale(x: [float]_{N}, y: [float]_{N}) ="),
            "{s}"
        );
    }

    #[test]
    fn patterns_show_their_nested_functions() {
        let p = simple_program();
        let s = pretty_program(&p);
        assert!(s.contains("mapGlb0(multPair)"), "{s}");
        assert!(s.contains("zip("), "{s}");
    }

    #[test]
    fn line_count_is_positive_and_stable() {
        let p = simple_program();
        let c = line_count(&p);
        assert!(c >= 4, "unexpectedly small program rendering: {c} lines");
        assert_eq!(c, line_count(&p));
    }

    #[test]
    fn display_impl_matches_pretty_program() {
        let p = simple_program();
        assert_eq!(p.to_string(), pretty_program(&p));
    }

    #[test]
    fn program_without_root_renders_placeholder() {
        let p = Program::new("empty");
        assert!(pretty_program(&p).contains("<no root>"));
    }
}
