//! A small builder DSL for writing Lift IL programs in Rust.
//!
//! The paper writes programs as compositions of patterns (Listing 1); the methods in this
//! module let the benchmarks do the same thing while building the arena-based IR directly.
//! All pattern constructors return a [`FunDeclId`] so they can be freely nested and composed
//! with [`Program::compose`], and [`Program::apply`] produces the actual call expressions.

use lift_arith::ArithExpr;

use crate::node::{
    ExprId, ExprKind, FunDecl, FunDeclId, Literal, PadMode, Pattern, Program, Reorder,
};
use crate::scalar::UserFun;
use crate::types::Type;

impl Program {
    // ---------------------------------------------------------------- expressions

    /// Adds a `float` literal expression.
    pub fn literal_f32(&mut self, v: f32) -> ExprId {
        self.add_expr(ExprKind::Literal(Literal::Float(v)))
    }

    /// Adds an `int` literal expression.
    pub fn literal_i64(&mut self, v: i64) -> ExprId {
        self.add_expr(ExprKind::Literal(Literal::Int(v)))
    }

    /// Adds a parameter expression with the given name and type.
    pub fn param(&mut self, name: impl Into<String>, ty: Type) -> ExprId {
        let id = self.add_expr(ExprKind::Param { name: name.into() });
        self.expr_mut(id).ty = Some(ty);
        id
    }

    /// Adds an untyped parameter (its type will be assigned when the enclosing lambda is
    /// called during type inference).
    pub fn untyped_param(&mut self, name: impl Into<String>) -> ExprId {
        self.add_expr(ExprKind::Param { name: name.into() })
    }

    /// Applies a function to arguments, creating a `FunCall` expression.
    pub fn apply(&mut self, f: FunDeclId, args: impl IntoIterator<Item = ExprId>) -> ExprId {
        self.add_expr(ExprKind::FunCall {
            f,
            args: args.into_iter().collect(),
        })
    }

    /// Applies a unary function to a single argument.
    pub fn apply1(&mut self, f: FunDeclId, arg: ExprId) -> ExprId {
        self.apply(f, [arg])
    }

    // ---------------------------------------------------------------- function declarations

    /// Adds a user function declaration.
    pub fn user_fun(&mut self, uf: UserFun) -> FunDeclId {
        self.add_decl(FunDecl::UserFun(uf))
    }

    /// Adds a lambda with `n` untyped parameters whose body is produced by `build`.
    pub fn lambda(
        &mut self,
        param_names: &[&str],
        build: impl FnOnce(&mut Program, &[ExprId]) -> ExprId,
    ) -> FunDeclId {
        let params: Vec<ExprId> = param_names.iter().map(|n| self.untyped_param(*n)).collect();
        let body = build(self, &params);
        self.add_decl(FunDecl::Lambda { params, body })
    }

    /// Composes unary functions right-to-left: `compose([f, g, h])` behaves as `f ∘ g ∘ h`.
    pub fn compose(&mut self, funs: &[FunDeclId]) -> FunDeclId {
        assert!(!funs.is_empty(), "compose needs at least one function");
        if funs.len() == 1 {
            return funs[0];
        }
        let p = self.untyped_param("x");
        let mut value = p;
        for f in funs.iter().rev() {
            value = self.apply1(*f, value);
        }
        self.add_decl(FunDecl::Lambda {
            params: vec![p],
            body: value,
        })
    }

    // ---------------------------------------------------------------- algorithmic patterns

    /// The high-level, backend-agnostic `map(f)` (lowered by `lift-rewrite`).
    pub fn map(&mut self, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Map { f }))
    }

    /// The raw high-level `reduce(f)` pattern; call it with `[init, input]`.
    pub fn reduce_pattern(&mut self, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Reduce { f }))
    }

    /// `reduce(f, init)` packaged as a unary function of the input array, mirroring
    /// [`Program::reduce_seq`] for high-level programs.
    pub fn reduce(&mut self, f: FunDeclId, init: f32) -> FunDeclId {
        let pattern = self.reduce_pattern(f);
        let p = self.untyped_param("xs");
        let init = self.literal_f32(init);
        let body = self.apply(pattern, [init, p]);
        self.add_decl(FunDecl::Lambda {
            params: vec![p],
            body,
        })
    }

    /// `mapSeq(f)`.
    pub fn map_seq(&mut self, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::MapSeq { f }))
    }

    /// `mapGlb^dim(f)`.
    pub fn map_glb(&mut self, dim: u8, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::MapGlb { dim, f }))
    }

    /// `mapWrg^dim(f)`.
    pub fn map_wrg(&mut self, dim: u8, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::MapWrg { dim, f }))
    }

    /// `mapLcl^dim(f)`.
    pub fn map_lcl(&mut self, dim: u8, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::MapLcl { dim, f }))
    }

    /// `mapVec(f)`.
    pub fn map_vec(&mut self, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::MapVec { f }))
    }

    /// The raw `reduceSeq(f)` pattern; call it with `[init, input]`.
    pub fn reduce_seq_pattern(&mut self, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::ReduceSeq { f }))
    }

    /// `reduceSeq(f, init)` packaged as a unary function of the input array, which is how the
    /// paper composes reductions in pipelines (e.g. `reduceSeq(add, 0)` in Listing 1).
    pub fn reduce_seq(&mut self, f: FunDeclId, init: f32) -> FunDeclId {
        let pattern = self.reduce_seq_pattern(f);
        let p = self.untyped_param("xs");
        let init = self.literal_f32(init);
        let body = self.apply(pattern, [init, p]);
        self.add_decl(FunDecl::Lambda {
            params: vec![p],
            body,
        })
    }

    /// The `id` pattern.
    pub fn id_pattern(&mut self) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Id))
    }

    /// `iterate^n(f)`.
    pub fn iterate(&mut self, n: u64, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Iterate { n, f }))
    }

    // ---------------------------------------------------------------- data layout patterns

    /// `split^chunk`.
    pub fn split(&mut self, chunk: impl Into<ArithExpr>) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Split {
            chunk: chunk.into(),
        }))
    }

    /// `join`.
    pub fn join(&mut self) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Join))
    }

    /// `gather(reorder)`.
    pub fn gather(&mut self, reorder: Reorder) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Gather { reorder }))
    }

    /// `scatter(reorder)`.
    pub fn scatter(&mut self, reorder: Reorder) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Scatter { reorder }))
    }

    /// Two-dimensional transposition.
    pub fn transpose(&mut self) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Transpose))
    }

    /// `zip` of two arrays; apply it to two argument expressions.
    pub fn zip2(&mut self) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Zip { arity: 2 }))
    }

    /// `zip` of `arity` arrays.
    pub fn zip(&mut self, arity: usize) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Zip { arity }))
    }

    /// `get_i`, projecting component `index` of a tuple.
    pub fn get(&mut self, index: usize) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Get { index }))
    }

    /// `slide(size, step)`.
    pub fn slide(&mut self, size: impl Into<ArithExpr>, step: impl Into<ArithExpr>) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Slide {
            size: size.into(),
            step: step.into(),
        }))
    }

    /// `pad(left, right, mode)`: extend an array at both ends with boundary elements.
    pub fn pad(
        &mut self,
        left: impl Into<ArithExpr>,
        right: impl Into<ArithExpr>,
        mode: PadMode,
    ) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::Pad {
            left: left.into(),
            right: right.into(),
            mode,
        }))
    }

    /// Two-dimensional sliding window: `slide2d(size, step)` over `[[T]_m]_n` yields one
    /// `size × size` neighbourhood per window position,
    /// `[[ [[T]_size]_size ]_wm]_wn`. It is the composition
    /// `map(transpose) ∘ slide(size, step) ∘ map(slide(size, step))`: the inner `map(slide)`
    /// windows every row, the outer `slide` groups runs of rows, and the `map(transpose)`
    /// re-nests each group so both window dimensions sit innermost.
    pub fn slide2d(&mut self, size: impl Into<ArithExpr>, step: impl Into<ArithExpr>) -> FunDeclId {
        let size = size.into();
        let step = step.into();
        let inner = self.slide(size.clone(), step.clone());
        let rows = self.map(inner);
        let outer = self.slide(size, step);
        let t = self.transpose();
        let mt = self.map(t);
        self.compose(&[mt, outer, rows])
    }

    /// Two-dimensional padding: `pad2d(left, right, mode)` pads the rows (outer dimension)
    /// and every column (inner dimension) with the same amounts,
    /// `map(pad(l, r, mode)) ∘ pad(l, r, mode)`.
    pub fn pad2d(
        &mut self,
        left: impl Into<ArithExpr>,
        right: impl Into<ArithExpr>,
        mode: PadMode,
    ) -> FunDeclId {
        let left = left.into();
        let right = right.into();
        let rows = self.pad(left.clone(), right.clone(), mode);
        let cols = self.pad(left, right, mode);
        let mc = self.map(cols);
        self.compose(&[mc, rows])
    }

    // ---------------------------------------------------------------- address space patterns

    /// `toGlobal(f)`.
    pub fn to_global(&mut self, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::ToGlobal { f }))
    }

    /// `toLocal(f)`.
    pub fn to_local(&mut self, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::ToLocal { f }))
    }

    /// `toPrivate(f)`.
    pub fn to_private(&mut self, f: FunDeclId) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::ToPrivate { f }))
    }

    // ---------------------------------------------------------------- vectorisation patterns

    /// `asVector^width`.
    pub fn as_vector(&mut self, width: usize) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::AsVector { width }))
    }

    /// `asScalar`.
    pub fn as_scalar(&mut self) -> FunDeclId {
        self.add_decl(FunDecl::Pattern(Pattern::AsScalar))
    }

    // ---------------------------------------------------------------- whole programs

    /// Builds the root lambda of the program from typed parameters.
    ///
    /// The closure receives the parameter expression ids in declaration order and returns the
    /// body expression.
    pub fn with_root(
        &mut self,
        params: Vec<(&str, Type)>,
        build: impl FnOnce(&mut Program, &[ExprId]) -> ExprId,
    ) -> FunDeclId {
        let param_ids: Vec<ExprId> = params.into_iter().map(|(n, t)| self.param(n, t)).collect();
        let body = build(self, &param_ids);
        let root = self.add_decl(FunDecl::Lambda {
            params: param_ids,
            body,
        });
        self.set_root(root);
        root
    }

    /// Convenience: a frequently used composition `toLocal(mapSeq(id))` / `toGlobal(mapSeq(id))`
    /// copying data into the given address space (Section 3.2).
    pub fn copy_to_local(&mut self) -> FunDeclId {
        let id = self.user_fun(UserFun::id_float());
        let m = self.map_seq(id);
        self.to_local(m)
    }

    /// Convenience: `toGlobal(mapSeq(id))`.
    pub fn copy_to_global(&mut self) -> FunDeclId {
        let id = self.user_fun(UserFun::id_float());
        let m = self.map_seq(id);
        self.to_global(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_a_simple_pipeline() {
        let n = ArithExpr::size_var("N");
        let mut p = Program::new("scale");
        let mult = p.user_fun(UserFun::mult_pair());
        let map = p.map_glb(0, mult);
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), n.clone())),
                ("y", Type::array(Type::float(), n.clone())),
            ],
            |p, params| {
                let zip = p.zip2();
                let zipped = p.apply(zip, [params[0], params[1]]);
                p.apply1(map, zipped)
            },
        );
        assert!(p.root().is_some());
        assert_eq!(p.root_params().len(), 2);
    }

    #[test]
    fn compose_builds_right_to_left_application() {
        let mut p = Program::new("t");
        let j = p.join();
        let s = p.split(4usize);
        let c = p.compose(&[j, s]);
        // c(x) == join(split4(x))
        match p.decl(c) {
            FunDecl::Lambda { params, body } => {
                let body = p.expr(*body);
                match &body.kind {
                    ExprKind::FunCall { f, args } => {
                        assert_eq!(*f, j);
                        let inner = p.expr(args[0]);
                        match &inner.kind {
                            ExprKind::FunCall { f, args } => {
                                assert_eq!(*f, s);
                                assert_eq!(args[0], params[0]);
                            }
                            other => panic!("expected inner call, got {other:?}"),
                        }
                    }
                    other => panic!("expected call, got {other:?}"),
                }
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn compose_of_single_function_is_identity() {
        let mut p = Program::new("t");
        let j = p.join();
        assert_eq!(p.compose(&[j]), j);
    }

    #[test]
    fn reduce_seq_wraps_init_in_a_lambda() {
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce_seq(add, 0.0);
        match p.decl(red) {
            FunDecl::Lambda { params, body } => {
                assert_eq!(params.len(), 1);
                match &p.expr(*body).kind {
                    ExprKind::FunCall { args, .. } => assert_eq!(args.len(), 2),
                    other => panic!("expected call, got {other:?}"),
                }
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn compose_of_nothing_panics() {
        let mut p = Program::new("t");
        p.compose(&[]);
    }

    #[test]
    fn copy_helpers_produce_address_space_patterns() {
        let mut p = Program::new("t");
        let l = p.copy_to_local();
        let g = p.copy_to_global();
        assert!(matches!(
            p.decl(l),
            FunDecl::Pattern(Pattern::ToLocal { .. })
        ));
        assert!(matches!(
            p.decl(g),
            FunDecl::Pattern(Pattern::ToGlobal { .. })
        ));
    }
}
