//! The Lift type system (Section 5.1).
//!
//! Types are scalars, fixed-width vectors, tuples and arrays. Array types carry their length as
//! a symbolic [`ArithExpr`], which is what makes the type system *dependent*: applying `split m`
//! to an array of type `[float]_n` yields `[[float]_m]_{n/m}`, and the compiler later exploits
//! these symbolic lengths for memory allocation and index simplification.

use std::fmt;

use lift_arith::ArithExpr;

/// The scalar element kinds supported by the Lift IL.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// `bool`
    Bool,
    /// 32-bit signed integer (`int`)
    Int,
    /// 32-bit float (`float`)
    Float,
    /// 64-bit float (`double`)
    Double,
}

impl ScalarKind {
    /// The OpenCL C name of this scalar type.
    pub fn c_name(self) -> &'static str {
        match self {
            ScalarKind::Bool => "bool",
            ScalarKind::Int => "int",
            ScalarKind::Float => "float",
            ScalarKind::Double => "double",
        }
    }

    /// Size of a value of this kind in bytes.
    pub fn size_in_bytes(self) -> i64 {
        match self {
            ScalarKind::Bool => 1,
            ScalarKind::Int | ScalarKind::Float => 4,
            ScalarKind::Double => 8,
        }
    }
}

impl fmt::Display for ScalarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// A Lift type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar value.
    Scalar(ScalarKind),
    /// An OpenCL vector value such as `float4`.
    Vector(ScalarKind, usize),
    /// A tuple, represented as a struct in OpenCL.
    Tuple(Vec<Type>),
    /// An array with a symbolic length.
    Array(Box<Type>, ArithExpr),
}

impl Type {
    /// The `float` scalar type.
    pub fn float() -> Type {
        Type::Scalar(ScalarKind::Float)
    }

    /// The `int` scalar type.
    pub fn int() -> Type {
        Type::Scalar(ScalarKind::Int)
    }

    /// The `bool` scalar type.
    pub fn bool() -> Type {
        Type::Scalar(ScalarKind::Bool)
    }

    /// The `double` scalar type.
    pub fn double() -> Type {
        Type::Scalar(ScalarKind::Double)
    }

    /// An array of `elem` with length `len`.
    pub fn array(elem: Type, len: impl Into<ArithExpr>) -> Type {
        Type::Array(Box::new(elem), len.into())
    }

    /// A vector of `width` elements of scalar kind `kind` (e.g. `float4`).
    pub fn vector(kind: ScalarKind, width: usize) -> Type {
        Type::Vector(kind, width)
    }

    /// A pair type.
    pub fn pair(a: Type, b: Type) -> Type {
        Type::Tuple(vec![a, b])
    }

    /// A tuple type.
    pub fn tuple(elems: Vec<Type>) -> Type {
        Type::Tuple(elems)
    }

    /// Returns `true` if this is a scalar type.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Scalar(_))
    }

    /// Returns `true` if this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array(_, _))
    }

    /// Returns the element type and length if this is an array type.
    pub fn as_array(&self) -> Option<(&Type, &ArithExpr)> {
        match self {
            Type::Array(elem, len) => Some((elem, len)),
            _ => None,
        }
    }

    /// Returns the component types if this is a tuple type.
    pub fn as_tuple(&self) -> Option<&[Type]> {
        match self {
            Type::Tuple(elems) => Some(elems),
            _ => None,
        }
    }

    /// Returns the scalar kind of a scalar or vector type.
    pub fn scalar_kind(&self) -> Option<ScalarKind> {
        match self {
            Type::Scalar(k) | Type::Vector(k, _) => Some(*k),
            _ => None,
        }
    }

    /// The innermost non-array type (the element type of a possibly multi-dimensional array).
    pub fn innermost(&self) -> &Type {
        match self {
            Type::Array(elem, _) => elem.innermost(),
            other => other,
        }
    }

    /// Number of array dimensions (0 for non-arrays).
    pub fn array_depth(&self) -> usize {
        match self {
            Type::Array(elem, _) => 1 + elem.array_depth(),
            _ => 0,
        }
    }

    /// The total number of *scalar* elements in a value of this type, as a symbolic expression.
    ///
    /// This is the quantity the memory allocator multiplies by the scalar size to compute
    /// buffer sizes (Section 5.2).
    pub fn element_count(&self) -> ArithExpr {
        match self {
            Type::Scalar(_) => ArithExpr::cst(1),
            Type::Vector(_, w) => ArithExpr::cst(*w as i64),
            Type::Tuple(elems) => ArithExpr::sum(elems.iter().map(|t| t.element_count())),
            Type::Array(elem, len) => elem.element_count() * len.clone(),
        }
    }

    /// The size of a value of this type in bytes, as a symbolic expression.
    pub fn size_in_bytes(&self) -> ArithExpr {
        match self {
            Type::Scalar(k) => ArithExpr::cst(k.size_in_bytes()),
            Type::Vector(k, w) => ArithExpr::cst(k.size_in_bytes() * *w as i64),
            Type::Tuple(elems) => ArithExpr::sum(elems.iter().map(|t| t.size_in_bytes())),
            Type::Array(elem, len) => elem.size_in_bytes() * len.clone(),
        }
    }

    /// The OpenCL C type used to store one *scalar element* of this type (tuples become
    /// structs, arrays decay to their innermost element).
    pub fn c_element_name(&self) -> String {
        match self.innermost() {
            Type::Scalar(k) => k.c_name().to_string(),
            Type::Vector(k, w) => format!("{}{}", k.c_name(), w),
            Type::Tuple(elems) => {
                let names: Vec<String> = elems.iter().map(|t| t.c_element_name()).collect();
                format!("Tuple_{}", names.join("_"))
            }
            Type::Array(_, _) => unreachable!("innermost is never an array"),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(k) => write!(f, "{k}"),
            Type::Vector(k, w) => write!(f, "{k}{w}"),
            Type::Tuple(elems) => {
                write!(f, "(")?;
                for (i, t) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Type::Array(elem, len) => write!(f, "[{elem}]_{{{len}}}"),
        }
    }
}

/// The OpenCL address spaces of the Lift IL (Section 3.2, "Address Space Patterns").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddressSpace {
    /// `__global` memory, visible to all work items.
    Global,
    /// `__local` memory, shared within a work group.
    Local,
    /// `__private` memory (registers), per work item.
    Private,
}

impl AddressSpace {
    /// The OpenCL qualifier keyword.
    pub fn c_qualifier(self) -> &'static str {
        match self {
            AddressSpace::Global => "global",
            AddressSpace::Local => "local",
            AddressSpace::Private => "private",
        }
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_qualifier())
    }
}

/// The parallelism level at which a piece of code executes (or a buffer is owned).
///
/// The OpenCL execution model gives every buffer a natural owner: `__local` arrays belong
/// to the *work group* and must be written cooperatively (each work item writing its own
/// slice, as `toLocal(mapLcl id)` does), `__private` values belong to the single *work
/// item*, and purely sequential code executes within whatever level encloses it. The
/// codegen ownership pass annotates each expression with the level of its evaluation site
/// and rejects writes that alias across work items — e.g. a `toLocal` staging buffer
/// produced *inside* a `mapLcl` body, where every work item would write the whole
/// group-shared array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ParallelismLevel {
    /// Work-group level: code executed uniformly by a whole work group (kernel top level
    /// or a `mapWrg` body), where cooperative `mapLcl` writes are legal.
    WorkGroup,
    /// Work-item level: code inside a `mapLcl`/`mapGlb` body, executed per work item with
    /// work-item-varying data.
    WorkItem,
    /// A sequential lane: code inside `mapSeq`/`reduceSeq`/`iterate` at work-item level —
    /// still per work item, but with no further parallelism below it.
    Sequential,
}

impl ParallelismLevel {
    /// Stable lower-kebab-case label used in rendered errors and serialized reports.
    pub fn label(self) -> &'static str {
        match self {
            ParallelismLevel::WorkGroup => "work-group",
            ParallelismLevel::WorkItem => "work-item",
            ParallelismLevel::Sequential => "sequential-lane",
        }
    }

    /// The level that owns buffers allocated in `space`: local memory belongs to the work
    /// group, private memory to the work item. Global memory is owned above the work
    /// group (the host partitions it); it reports as work-group-owned here because that is
    /// the coarsest level a kernel can write from.
    pub fn owner_of(space: AddressSpace) -> ParallelismLevel {
        match space {
            AddressSpace::Global | AddressSpace::Local => ParallelismLevel::WorkGroup,
            AddressSpace::Private => ParallelismLevel::WorkItem,
        }
    }

    /// Whether this level is per-work-item (writes from it alias across work items when
    /// the target is shared at a coarser level).
    pub fn is_work_item(self) -> bool {
        matches!(
            self,
            ParallelismLevel::WorkItem | ParallelismLevel::Sequential
        )
    }
}

impl fmt::Display for ParallelismLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_changes_nested_lengths() {
        let n = ArithExpr::size_var("N");
        let t = Type::array(Type::float(), n.clone());
        let (elem, len) = t.as_array().expect("array");
        assert_eq!(*elem, Type::float());
        assert_eq!(*len, n);
    }

    #[test]
    fn element_count_multiplies_dimensions() {
        let n = ArithExpr::size_var("N");
        let m = ArithExpr::size_var("M");
        let t = Type::array(Type::array(Type::float(), m.clone()), n.clone());
        assert_eq!(t.element_count(), n.clone() * m.clone());
        assert_eq!(t.size_in_bytes(), n * m * 4);
    }

    #[test]
    fn tuple_sizes_add() {
        let t = Type::pair(Type::float(), Type::float());
        assert_eq!(t.size_in_bytes(), ArithExpr::cst(8));
        assert_eq!(t.element_count(), ArithExpr::cst(2));
    }

    #[test]
    fn vector_types_display_like_opencl() {
        let t = Type::vector(ScalarKind::Float, 4);
        assert_eq!(t.to_string(), "float4");
        assert_eq!(t.c_element_name(), "float4");
        assert_eq!(t.size_in_bytes(), ArithExpr::cst(16));
    }

    #[test]
    fn innermost_and_depth() {
        let n = ArithExpr::size_var("N");
        let t = Type::array(Type::array(Type::float(), n.clone()), n);
        assert_eq!(t.array_depth(), 2);
        assert_eq!(*t.innermost(), Type::float());
        assert!(t.is_array());
        assert!(!t.is_scalar());
    }

    #[test]
    fn display_of_arrays_and_tuples() {
        let n = ArithExpr::size_var("N");
        let t = Type::array(Type::pair(Type::float(), Type::int()), n);
        let s = t.to_string();
        assert!(s.contains("(float, int)"));
        assert!(s.contains("N"));
    }

    #[test]
    fn address_space_qualifiers() {
        assert_eq!(AddressSpace::Global.c_qualifier(), "global");
        assert_eq!(AddressSpace::Local.c_qualifier(), "local");
        assert_eq!(AddressSpace::Private.c_qualifier(), "private");
    }

    #[test]
    fn scalar_kind_sizes() {
        assert_eq!(ScalarKind::Float.size_in_bytes(), 4);
        assert_eq!(ScalarKind::Double.size_in_bytes(), 8);
        assert_eq!(ScalarKind::Bool.size_in_bytes(), 1);
        assert_eq!(ScalarKind::Int.c_name(), "int");
    }
}
