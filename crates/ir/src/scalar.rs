//! User functions.
//!
//! The Lift IL delegates the application-specific scalar computations to *user functions*
//! (Section 3.2), which the paper represents as strings of C code operating on non-array
//! values. This reproduction represents their bodies as a small expression AST instead, so
//! that the same definition can be type-checked, interpreted by the reference interpreter,
//! translated to OpenCL C by the code generator, and vectorised for `mapVec`.

use std::fmt;

use crate::types::Type;

/// Binary operators available in user-function bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// Less-than comparison (produces 1.0 / 0.0).
    Lt,
    /// Greater-than comparison (produces 1.0 / 0.0).
    Gt,
}

impl BinOp {
    /// The OpenCL C operator or builtin for this operation.
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "fmin",
            BinOp::Max => "fmax",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
        }
    }

    /// Whether the operation is rendered as a function call rather than an infix operator.
    pub fn is_call(self) -> bool {
        matches!(self, BinOp::Min | BinOp::Max)
    }
}

/// Unary operators available in user-function bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsqrt,
    /// Absolute value.
    Fabs,
    /// Exponential.
    Exp,
}

impl UnOp {
    /// The OpenCL C builtin for this operation (negation is handled separately).
    pub fn c_name(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Sqrt => "sqrt",
            UnOp::Rsqrt => "rsqrt",
            UnOp::Fabs => "fabs",
            UnOp::Exp => "exp",
        }
    }
}

/// The body of a user function: an expression over the function's parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// Reference to the `i`-th parameter of the user function.
    Param(usize),
    /// Projection of a tuple component.
    Get(Box<ScalarExpr>, usize),
    /// Construction of a tuple value (used by user functions returning several values).
    Tuple(Vec<ScalarExpr>),
    /// A floating-point literal.
    ConstFloat(f64),
    /// An integer literal.
    ConstInt(i64),
    /// A binary operation.
    Bin(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// A unary operation.
    Un(UnOp, Box<ScalarExpr>),
    /// `cond ? then : otherwise`, where `cond` is interpreted as non-zero = true.
    Select(Box<ScalarExpr>, Box<ScalarExpr>, Box<ScalarExpr>),
}

#[allow(clippy::should_implement_trait)] // builder methods, not operator impls
impl ScalarExpr {
    /// Reference to parameter `i`.
    pub fn param(i: usize) -> ScalarExpr {
        ScalarExpr::Param(i)
    }

    /// Floating-point constant.
    pub fn cf(v: f64) -> ScalarExpr {
        ScalarExpr::ConstFloat(v)
    }

    /// Tuple component access.
    pub fn get(self, i: usize) -> ScalarExpr {
        ScalarExpr::Get(Box::new(self), i)
    }

    /// Addition.
    pub fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// Subtraction.
    pub fn sub(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// Multiplication.
    pub fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// Division.
    pub fn div(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// Minimum.
    pub fn min(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// Maximum.
    pub fn max(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// Square root.
    pub fn sqrt(self) -> ScalarExpr {
        ScalarExpr::Un(UnOp::Sqrt, Box::new(self))
    }

    /// Reciprocal square root.
    pub fn rsqrt(self) -> ScalarExpr {
        ScalarExpr::Un(UnOp::Rsqrt, Box::new(self))
    }

    /// Counts the arithmetic operations in the body (used by the cost model).
    pub fn op_count(&self) -> usize {
        match self {
            ScalarExpr::Param(_) | ScalarExpr::ConstFloat(_) | ScalarExpr::ConstInt(_) => 0,
            ScalarExpr::Get(e, _) => e.op_count(),
            ScalarExpr::Tuple(es) => es.iter().map(|e| e.op_count()).sum(),
            ScalarExpr::Bin(_, a, b) => 1 + a.op_count() + b.op_count(),
            ScalarExpr::Un(_, a) => 1 + a.op_count(),
            ScalarExpr::Select(c, a, b) => 1 + c.op_count() + a.op_count() + b.op_count(),
        }
    }

    /// The largest parameter index referenced by the expression, if any.
    pub fn max_param_index(&self) -> Option<usize> {
        match self {
            ScalarExpr::Param(i) => Some(*i),
            ScalarExpr::ConstFloat(_) | ScalarExpr::ConstInt(_) => None,
            ScalarExpr::Get(e, _) => e.max_param_index(),
            ScalarExpr::Tuple(es) => es.iter().filter_map(|e| e.max_param_index()).max(),
            ScalarExpr::Bin(_, a, b) => a.max_param_index().max(b.max_param_index()),
            ScalarExpr::Un(_, a) => a.max_param_index(),
            ScalarExpr::Select(c, a, b) => c
                .max_param_index()
                .max(a.max_param_index())
                .max(b.max_param_index()),
        }
    }
}

/// A user-defined scalar function (the `UserFun` node of Figure 2).
#[derive(Clone, Debug, PartialEq)]
pub struct UserFun {
    name: String,
    param_names: Vec<String>,
    param_types: Vec<Type>,
    return_type: Type,
    body: ScalarExpr,
    associative_commutative: bool,
}

/// Errors raised when constructing an ill-formed user function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UserFunError {
    /// The body references a parameter index that does not exist.
    ParamOutOfRange { index: usize, arity: usize },
    /// The number of parameter names and parameter types differ.
    MismatchedParamLists { names: usize, types: usize },
    /// A parameter or return type is an array, which user functions may not manipulate.
    ArrayTypedParameter,
}

impl fmt::Display for UserFunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UserFunError::ParamOutOfRange { index, arity } => {
                write!(
                    f,
                    "user function body references parameter {index} but only {arity} exist"
                )
            }
            UserFunError::MismatchedParamLists { names, types } => {
                write!(
                    f,
                    "user function has {names} parameter names but {types} parameter types"
                )
            }
            UserFunError::ArrayTypedParameter => {
                write!(f, "user functions operate on non-array values only")
            }
        }
    }
}

impl std::error::Error for UserFunError {}

impl UserFun {
    /// Creates a user function, validating that the body only references declared parameters
    /// and that no parameter or return type is an array.
    ///
    /// # Errors
    ///
    /// Returns a [`UserFunError`] if the definition is ill-formed.
    pub fn new(
        name: impl Into<String>,
        params: Vec<(&str, Type)>,
        return_type: Type,
        body: ScalarExpr,
    ) -> Result<Self, UserFunError> {
        let (param_names, param_types): (Vec<String>, Vec<Type>) =
            params.into_iter().map(|(n, t)| (n.to_string(), t)).unzip();
        if param_names.len() != param_types.len() {
            return Err(UserFunError::MismatchedParamLists {
                names: param_names.len(),
                types: param_types.len(),
            });
        }
        if param_types.iter().any(Type::is_array) || return_type.is_array() {
            return Err(UserFunError::ArrayTypedParameter);
        }
        if let Some(max) = body.max_param_index() {
            if max >= param_types.len() {
                return Err(UserFunError::ParamOutOfRange {
                    index: max,
                    arity: param_types.len(),
                });
            }
        }
        Ok(UserFun {
            name: name.into(),
            param_names,
            param_types,
            return_type,
            body,
            associative_commutative: false,
        })
    }

    /// Marks this binary function as associative and commutative over its domain.
    ///
    /// Rewrite rules that reorder reductions (e.g. partial reduction) require this marker as
    /// a side condition: the rules of the paper assume reduction operators are associative
    /// and commutative, and applying them to an arbitrary fold function (such as the fused
    /// `λ(acc, x). acc + x*x`) would change the program's result.
    #[must_use]
    pub fn assoc_commutative(mut self) -> Self {
        self.associative_commutative = true;
        self
    }

    /// Whether this function was declared associative and commutative.
    pub fn is_assoc_commutative(&self) -> bool {
        self.associative_commutative && self.arity() == 2
    }

    /// The function's name as it appears in generated OpenCL code.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter names.
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// The parameter types.
    pub fn param_types(&self) -> &[Type] {
        &self.param_types
    }

    /// The return type.
    pub fn return_type(&self) -> &Type {
        &self.return_type
    }

    /// The function body.
    pub fn body(&self) -> &ScalarExpr {
        &self.body
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.param_types.len()
    }

    // ---- The standard user functions used throughout the paper and benchmarks. ----

    /// `id(x) = x` for `float` (the `id` user function of Listing 1).
    pub fn id_float() -> UserFun {
        UserFun::new(
            "id",
            vec![("x", Type::float())],
            Type::float(),
            ScalarExpr::param(0),
        )
        .expect("well-formed")
    }

    /// `add(a, b) = a + b`.
    pub fn add() -> UserFun {
        UserFun::new(
            "add",
            vec![("a", Type::float()), ("b", Type::float())],
            Type::float(),
            ScalarExpr::param(0).add(ScalarExpr::param(1)),
        )
        .expect("well-formed")
        .assoc_commutative()
    }

    /// `mult(a, b) = a * b`.
    pub fn mult() -> UserFun {
        UserFun::new(
            "mult",
            vec![("a", Type::float()), ("b", Type::float())],
            Type::float(),
            ScalarExpr::param(0).mul(ScalarExpr::param(1)),
        )
        .expect("well-formed")
        .assoc_commutative()
    }

    /// `multAndSumUp(acc, x, y) = acc + x * y`, the fused multiply-accumulate of Listing 1.
    pub fn mult_and_sum_up() -> UserFun {
        UserFun::new(
            "multAndSumUp",
            vec![
                ("acc", Type::float()),
                ("x", Type::float()),
                ("y", Type::float()),
            ],
            Type::float(),
            ScalarExpr::param(0).add(ScalarExpr::param(1).mul(ScalarExpr::param(2))),
        )
        .expect("well-formed")
    }

    /// `multAndSumUpPair(acc, xy) = acc + xy._0 * xy._1`, the reduction function applied to a
    /// zipped pair in Listing 1 (line 9).
    pub fn mult_and_sum_up_pair() -> UserFun {
        UserFun::new(
            "multAndSumUp",
            vec![
                ("acc", Type::float()),
                ("xy", Type::pair(Type::float(), Type::float())),
            ],
            Type::float(),
            ScalarExpr::param(0).add(ScalarExpr::param(1).get(0).mul(ScalarExpr::param(1).get(1))),
        )
        .expect("well-formed")
    }

    /// `multPair(p) = p._0 * p._1` operating on a zipped pair, used by dot-product variants.
    pub fn mult_pair() -> UserFun {
        UserFun::new(
            "multPair",
            vec![("xy", Type::pair(Type::float(), Type::float()))],
            Type::float(),
            ScalarExpr::param(0)
                .clone()
                .get(0)
                .mul(ScalarExpr::param(0).get(1)),
        )
        .expect("well-formed")
    }

    /// `max(a, b)`.
    pub fn max_fun() -> UserFun {
        UserFun::new(
            "maxf",
            vec![("a", Type::float()), ("b", Type::float())],
            Type::float(),
            ScalarExpr::param(0).max(ScalarExpr::param(1)),
        )
        .expect("well-formed")
        .assoc_commutative()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_functions_are_well_formed() {
        assert_eq!(UserFun::id_float().arity(), 1);
        assert_eq!(UserFun::add().arity(), 2);
        assert_eq!(UserFun::mult_and_sum_up().arity(), 3);
        assert_eq!(UserFun::mult_pair().arity(), 1);
        assert_eq!(UserFun::max_fun().name(), "maxf");
        assert_eq!(*UserFun::add().return_type(), Type::float());
    }

    #[test]
    fn out_of_range_parameter_is_rejected() {
        let err = UserFun::new(
            "bad",
            vec![("a", Type::float())],
            Type::float(),
            ScalarExpr::param(3),
        )
        .unwrap_err();
        assert_eq!(err, UserFunError::ParamOutOfRange { index: 3, arity: 1 });
        assert!(err.to_string().contains("parameter 3"));
    }

    #[test]
    fn array_parameters_are_rejected() {
        let err = UserFun::new(
            "bad",
            vec![("a", Type::array(Type::float(), 4usize))],
            Type::float(),
            ScalarExpr::param(0),
        )
        .unwrap_err();
        assert_eq!(err, UserFunError::ArrayTypedParameter);
    }

    #[test]
    fn op_count_counts_operations() {
        let body = ScalarExpr::param(0).add(ScalarExpr::param(1).mul(ScalarExpr::param(2)));
        assert_eq!(body.op_count(), 2);
        assert_eq!(ScalarExpr::cf(1.0).op_count(), 0);
        let sel = ScalarExpr::Select(
            Box::new(ScalarExpr::param(0)),
            Box::new(ScalarExpr::cf(1.0)),
            Box::new(ScalarExpr::cf(0.0)),
        );
        assert_eq!(sel.op_count(), 1);
    }

    #[test]
    fn max_param_index_traverses_all_nodes() {
        let body = ScalarExpr::Tuple(vec![ScalarExpr::param(0), ScalarExpr::param(4).sqrt()]);
        assert_eq!(body.max_param_index(), Some(4));
        assert_eq!(ScalarExpr::cf(0.0).max_param_index(), None);
    }

    #[test]
    fn binop_symbols() {
        assert_eq!(BinOp::Add.c_symbol(), "+");
        assert!(BinOp::Min.is_call());
        assert!(!BinOp::Mul.is_call());
        assert_eq!(UnOp::Sqrt.c_name(), "sqrt");
    }
}
