//! The arena-based Lift IR (Section 4).
//!
//! Programs are graphs of [`ExprNode`]s (literals, parameters and function calls) and
//! [`FunDecl`]s (lambdas, predefined patterns and user functions), mirroring the class diagram
//! of Figure 2. Nodes live in two arenas owned by a [`Program`] and are referenced by the
//! copyable ids [`ExprId`] and [`FunDeclId`], which is the idiomatic Rust rendition of the
//! object graph used by the Scala implementation.

use std::fmt;

use lift_arith::ArithExpr;

use crate::scalar::UserFun;
use crate::types::Type;

/// Identifier of an expression node inside a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub(crate) usize);

/// Identifier of a function declaration inside a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunDeclId(pub(crate) usize);

impl ExprId {
    /// The raw index of this id (useful for building side tables in compiler passes).
    pub fn index(self) -> usize {
        self.0
    }
}

impl FunDeclId {
    /// The raw index of this id.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Compile-time known constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Literal {
    /// A `float` constant such as the `0.0f` initialiser of a reduction.
    Float(f32),
    /// An `int` constant.
    Int(i64),
}

impl Literal {
    /// The type of this literal.
    pub fn ty(&self) -> Type {
        match self {
            Literal::Float(_) => Type::float(),
            Literal::Int(_) => Type::int(),
        }
    }

    /// Renders the literal as OpenCL C source.
    pub fn c_source(&self) -> String {
        match self {
            Literal::Float(v) => {
                if v.fract() == 0.0 {
                    format!("{v:.1}f")
                } else {
                    format!("{v}f")
                }
            }
            Literal::Int(v) => v.to_string(),
        }
    }
}

/// The three kinds of expressions of the Lift IR (Figure 2).
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// A compile-time constant.
    Literal(Literal),
    /// A parameter of an enclosing lambda.
    Param {
        /// Name used for debugging and pretty printing.
        name: String,
    },
    /// Application of a function declaration to argument expressions.
    FunCall {
        /// The function being called.
        f: FunDeclId,
        /// The arguments of the call.
        args: Vec<ExprId>,
    },
}

/// An expression node together with the annotations computed by the compiler.
#[derive(Clone, Debug, PartialEq)]
pub struct ExprNode {
    /// What kind of expression this is.
    pub kind: ExprKind,
    /// The type of the expression, filled in by [`crate::typecheck::infer_types`].
    pub ty: Option<Type>,
}

/// The reordering functions accepted by `gather` and `scatter`.
///
/// The paper allows arbitrary index permutations; the reorderings below are the ones used by
/// its examples and evaluation (identity, reversal and the stride permutation that expresses
/// transposition and memory coalescing).
#[derive(Clone, Debug, PartialEq)]
pub enum Reorder {
    /// The identity permutation.
    Identity,
    /// `i -> n - 1 - i`.
    Reverse,
    /// `i -> (i mod s) * (n / s) + i / s`: the transposition-style permutation of Section 3.2,
    /// also used to produce coalesced accesses (Section 7.2).
    Stride(ArithExpr),
}

impl Reorder {
    /// Applies the permutation to index `i` of an array of length `n`.
    pub fn apply(&self, i: &ArithExpr, n: &ArithExpr) -> ArithExpr {
        match self {
            Reorder::Identity => i.clone(),
            Reorder::Reverse => n.clone() - 1 - i.clone(),
            Reorder::Stride(s) => {
                (i.clone() % s.clone()) * (n.clone() / s.clone()) + i.clone() / s.clone()
            }
        }
    }
}

/// How `pad` materialises the elements beyond the ends of its input array.
///
/// All three modes replicate *existing* elements (no new values are invented), which is what
/// makes `pad` commute with `map`: boundary handling for stencils reduces to reading an
/// interior element through a remapped index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PadMode {
    /// Repeat the nearest edge element: `x[-1] = x[0]`, `x[n] = x[n-1]`.
    Clamp,
    /// Reflect across the boundary (edge element included): `x[-1] = x[0]`, `x[-2] = x[1]`,
    /// `x[n] = x[n-1]`.
    Mirror,
    /// Wrap around periodically: `x[-1] = x[n-1]`, `x[n] = x[0]`.
    Wrap,
}

impl PadMode {
    /// A short name used in pretty printing (`padClamp`, …).
    pub fn name(self) -> &'static str {
        match self {
            PadMode::Clamp => "Clamp",
            PadMode::Mirror => "Mirror",
            PadMode::Wrap => "Wrap",
        }
    }

    /// The source index a padded read at `j - left` resolves to, over a host array of
    /// length `n` (the reference semantics shared by the interpreter and the tests).
    pub fn source_index(self, shifted: i64, n: i64) -> i64 {
        match self {
            PadMode::Clamp => shifted.clamp(0, n - 1),
            PadMode::Mirror => {
                let j = if shifted < 0 { -1 - shifted } else { shifted };
                if j >= n {
                    2 * n - 1 - j
                } else {
                    j
                }
            }
            PadMode::Wrap => shifted.rem_euclid(n),
        }
    }
}

/// The predefined patterns of the Lift IL (Section 3.2).
#[derive(Clone, Debug, PartialEq)]
pub enum Pattern {
    /// High-level, backend-agnostic map (Section 3.1). Programs are written with `map` and
    /// lowered to one of the OpenCL-specific map variants by the rewrite rules of
    /// `lift-rewrite`; the code generator only accepts the lowered forms.
    Map {
        /// Function applied to every element.
        f: FunDeclId,
    },
    /// High-level, backend-agnostic reduction; called with two arguments: the initial value
    /// and the input array. Lowered to [`Pattern::ReduceSeq`] (possibly under a memory-space
    /// wrapper) by the rewrite rules.
    Reduce {
        /// Binary reduction function of type `(acc, elem) -> acc`.
        f: FunDeclId,
    },
    /// Sequential map.
    MapSeq {
        /// Function applied to every element.
        f: FunDeclId,
    },
    /// Map over global work items in dimension `dim`.
    MapGlb {
        /// OpenCL dimension (0, 1 or 2).
        dim: u8,
        /// Function applied to every element.
        f: FunDeclId,
    },
    /// Map over work groups in dimension `dim`.
    MapWrg {
        /// OpenCL dimension (0, 1 or 2).
        dim: u8,
        /// Function applied to every element.
        f: FunDeclId,
    },
    /// Map over local work items in dimension `dim`; must be nested inside a [`Pattern::MapWrg`].
    MapLcl {
        /// OpenCL dimension (0, 1 or 2).
        dim: u8,
        /// Function applied to every element.
        f: FunDeclId,
    },
    /// Map a scalar function over the lanes of a vector value.
    MapVec {
        /// Scalar function applied per lane.
        f: FunDeclId,
    },
    /// Sequential reduction; called with two arguments: the initial value and the input array.
    ReduceSeq {
        /// Binary reduction function of type `(acc, elem) -> acc`.
        f: FunDeclId,
    },
    /// The identity function.
    Id,
    /// Apply `f` `n` times, re-injecting the output as the next input.
    Iterate {
        /// Number of iterations (a compile-time constant in all the paper's programs).
        n: u64,
        /// The iterated function.
        f: FunDeclId,
    },
    /// Add a dimension: `[T]_n -> [[T]_chunk]_{n/chunk}`.
    Split {
        /// The chunk size.
        chunk: ArithExpr,
    },
    /// Remove a dimension: `[[T]_m]_n -> [T]_{n*m}`.
    Join,
    /// Permute the read order of an array.
    Gather {
        /// The index permutation.
        reorder: Reorder,
    },
    /// Permute the write order of an array.
    Scatter {
        /// The index permutation.
        reorder: Reorder,
    },
    /// Two-dimensional transposition `[[T]_m]_n -> [[T]_n]_m` (expressible with
    /// `split`/`gather`/`join`, provided directly because every benchmark uses it).
    Transpose,
    /// Combine `arity` arrays element-wise into an array of tuples.
    Zip {
        /// Number of zipped arrays.
        arity: usize,
    },
    /// Project component `index` out of a tuple.
    Get {
        /// The component index.
        index: usize,
    },
    /// Moving window over an array (stencils).
    Slide {
        /// Window size.
        size: ArithExpr,
        /// Window step.
        step: ArithExpr,
    },
    /// Extend an array at both ends with boundary elements: `[T]_n -> [T]_{l+n+r}` (stencil
    /// boundary handling). Like `slide`, it is a read-side pattern: no data is copied, reads
    /// through the pad remap their index into the underlying array.
    Pad {
        /// Number of elements prepended.
        left: ArithExpr,
        /// Number of elements appended.
        right: ArithExpr,
        /// How out-of-range indices map back into the array.
        mode: PadMode,
    },
    /// Write the result of `f` to global memory.
    ToGlobal {
        /// The wrapped function.
        f: FunDeclId,
    },
    /// Write the result of `f` to local memory.
    ToLocal {
        /// The wrapped function.
        f: FunDeclId,
    },
    /// Write the result of `f` to private memory.
    ToPrivate {
        /// The wrapped function.
        f: FunDeclId,
    },
    /// Reinterpret `[scalar]_n` as `[vector_width]_{n/width}`.
    AsVector {
        /// The vector width.
        width: usize,
    },
    /// Reinterpret `[vector_w]_n` as `[scalar]_{n*w}`.
    AsScalar,
}

impl Pattern {
    /// The number of arguments a call to this pattern expects.
    pub fn arity(&self) -> usize {
        match self {
            Pattern::Reduce { .. } | Pattern::ReduceSeq { .. } => 2,
            Pattern::Zip { arity } => *arity,
            _ => 1,
        }
    }

    /// Whether this is a high-level (backend-agnostic) pattern that must be lowered by the
    /// rewrite rules before OpenCL code generation.
    pub fn is_high_level(&self) -> bool {
        matches!(self, Pattern::Map { .. } | Pattern::Reduce { .. })
    }

    /// The nested function of the pattern, if it has one.
    pub fn nested_fun(&self) -> Option<FunDeclId> {
        match self {
            Pattern::Map { f }
            | Pattern::Reduce { f }
            | Pattern::MapSeq { f }
            | Pattern::MapGlb { f, .. }
            | Pattern::MapWrg { f, .. }
            | Pattern::MapLcl { f, .. }
            | Pattern::MapVec { f }
            | Pattern::ReduceSeq { f }
            | Pattern::Iterate { f, .. }
            | Pattern::ToGlobal { f }
            | Pattern::ToLocal { f }
            | Pattern::ToPrivate { f } => Some(*f),
            _ => None,
        }
    }

    /// A short name for pretty printing, matching the paper's notation.
    pub fn name(&self) -> String {
        match self {
            Pattern::Map { .. } => "map".into(),
            Pattern::Reduce { .. } => "reduce".into(),
            Pattern::MapSeq { .. } => "mapSeq".into(),
            Pattern::MapGlb { dim, .. } => format!("mapGlb{dim}"),
            Pattern::MapWrg { dim, .. } => format!("mapWrg{dim}"),
            Pattern::MapLcl { dim, .. } => format!("mapLcl{dim}"),
            Pattern::MapVec { .. } => "mapVec".into(),
            Pattern::ReduceSeq { .. } => "reduceSeq".into(),
            Pattern::Id => "id".into(),
            Pattern::Iterate { n, .. } => format!("iterate{n}"),
            Pattern::Split { chunk } => format!("split{chunk}"),
            Pattern::Join => "join".into(),
            Pattern::Gather { .. } => "gather".into(),
            Pattern::Scatter { .. } => "scatter".into(),
            Pattern::Transpose => "transpose".into(),
            Pattern::Zip { .. } => "zip".into(),
            Pattern::Get { index } => format!("get{index}"),
            Pattern::Slide { size, step } => format!("slide({size},{step})"),
            Pattern::Pad { left, right, mode } => {
                format!("pad{}({left},{right})", mode.name())
            }
            Pattern::ToGlobal { .. } => "toGlobal".into(),
            Pattern::ToLocal { .. } => "toLocal".into(),
            Pattern::ToPrivate { .. } => "toPrivate".into(),
            Pattern::AsVector { width } => format!("asVector{width}"),
            Pattern::AsScalar => "asScalar".into(),
        }
    }
}

/// A function declaration: lambda, pattern or user function (Figure 2).
#[derive(Clone, Debug, PartialEq)]
pub enum FunDecl {
    /// An anonymous function with explicit parameters.
    Lambda {
        /// The parameter expressions (always [`ExprKind::Param`] nodes).
        params: Vec<ExprId>,
        /// The body evaluated when the lambda is called.
        body: ExprId,
    },
    /// A predefined pattern.
    Pattern(Pattern),
    /// A user-defined scalar function.
    UserFun(UserFun),
}

/// A whole Lift IL program: the node arenas plus a distinguished root lambda.
#[derive(Clone, Debug, Default)]
pub struct Program {
    name: String,
    exprs: Vec<ExprNode>,
    decls: Vec<FunDecl>,
    root: Option<FunDeclId>,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            exprs: Vec::new(),
            decls: Vec::new(),
            root: None,
        }
    }

    /// The program name (used for the generated kernel name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an expression node and returns its id.
    pub fn add_expr(&mut self, kind: ExprKind) -> ExprId {
        let id = ExprId(self.exprs.len());
        self.exprs.push(ExprNode { kind, ty: None });
        id
    }

    /// Adds a function declaration and returns its id.
    pub fn add_decl(&mut self, decl: FunDecl) -> FunDeclId {
        let id = FunDeclId(self.decls.len());
        self.decls.push(decl);
        id
    }

    /// Returns the expression node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different program.
    pub fn expr(&self, id: ExprId) -> &ExprNode {
        &self.exprs[id.0]
    }

    /// Returns a mutable reference to the expression node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different program.
    pub fn expr_mut(&mut self, id: ExprId) -> &mut ExprNode {
        &mut self.exprs[id.0]
    }

    /// Returns the function declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different program.
    pub fn decl(&self, id: FunDeclId) -> &FunDecl {
        &self.decls[id.0]
    }

    /// Number of expression nodes in the arena.
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Number of function declarations in the arena.
    pub fn decl_count(&self) -> usize {
        self.decls.len()
    }

    /// Iterates over all expression ids.
    pub fn expr_ids(&self) -> impl Iterator<Item = ExprId> {
        (0..self.exprs.len()).map(ExprId)
    }

    /// Iterates over all function declaration ids.
    pub fn decl_ids(&self) -> impl Iterator<Item = FunDeclId> {
        (0..self.decls.len()).map(FunDeclId)
    }

    /// Sets the root lambda of the program.
    ///
    /// # Panics
    ///
    /// Panics if `root` does not refer to a [`FunDecl::Lambda`].
    pub fn set_root(&mut self, root: FunDeclId) {
        assert!(
            matches!(self.decl(root), FunDecl::Lambda { .. }),
            "the root of a program must be a lambda"
        );
        self.root = Some(root);
    }

    /// The root lambda of the program, if one has been set.
    pub fn root(&self) -> Option<FunDeclId> {
        self.root
    }

    /// The parameters of the root lambda.
    ///
    /// # Panics
    ///
    /// Panics if no root has been set.
    pub fn root_params(&self) -> &[ExprId] {
        match self.decl(self.root.expect("program has a root")) {
            FunDecl::Lambda { params, .. } => params,
            _ => unreachable!("the root is always a lambda"),
        }
    }

    /// The body expression of the root lambda.
    ///
    /// # Panics
    ///
    /// Panics if no root has been set.
    pub fn root_body(&self) -> ExprId {
        match self.decl(self.root.expect("program has a root")) {
            FunDecl::Lambda { body, .. } => *body,
            _ => unreachable!("the root is always a lambda"),
        }
    }

    /// The inferred type of an expression.
    ///
    /// # Panics
    ///
    /// Panics if type inference has not run yet (the type is missing).
    pub fn type_of(&self, id: ExprId) -> &Type {
        self.expr(id)
            .ty
            .as_ref()
            .expect("type inference has assigned a type")
    }

    /// The function declarations reachable from the root lambda (in depth-first discovery
    /// order). Rewriting leaves orphan nodes in the arena, so passes that inspect "the
    /// program" should walk this set rather than all of [`Program::decl_ids`].
    pub fn reachable_decls(&self) -> Vec<FunDeclId> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut seen_decls = vec![false; self.decls.len()];
        let mut seen_exprs = vec![false; self.exprs.len()];
        let mut out = Vec::new();
        let mut decl_stack = vec![root];
        while let Some(d) = decl_stack.pop() {
            if std::mem::replace(&mut seen_decls[d.0], true) {
                continue;
            }
            out.push(d);
            let mut expr_stack = Vec::new();
            match self.decl(d) {
                FunDecl::Lambda { params, body } => {
                    expr_stack.extend(params.iter().copied());
                    expr_stack.push(*body);
                }
                FunDecl::Pattern(p) => {
                    if let Some(f) = p.nested_fun() {
                        decl_stack.push(f);
                    }
                }
                FunDecl::UserFun(_) => {}
            }
            while let Some(e) = expr_stack.pop() {
                if std::mem::replace(&mut seen_exprs[e.0], true) {
                    continue;
                }
                if let ExprKind::FunCall { f, args } = &self.expr(e).kind {
                    decl_stack.push(*f);
                    expr_stack.extend(args.iter().copied());
                }
            }
        }
        out
    }

    /// The name of the first reachable high-level pattern (`map` / `reduce`), if any.
    ///
    /// Code generation requires this to be `None`; the `lift-rewrite` lowering rules
    /// eliminate high-level patterns.
    pub fn first_high_level_pattern(&self) -> Option<String> {
        self.reachable_decls()
            .into_iter()
            .find_map(|d| match self.decl(d) {
                FunDecl::Pattern(p) if p.is_high_level() => Some(p.name()),
                _ => None,
            })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::pretty_program(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_hands_out_sequential_ids() {
        let mut p = Program::new("t");
        let a = p.add_expr(ExprKind::Literal(Literal::Float(1.0)));
        let b = p.add_expr(ExprKind::Literal(Literal::Float(2.0)));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(p.expr_count(), 2);
    }

    #[test]
    fn literals_know_their_type_and_source() {
        assert_eq!(Literal::Float(0.0).ty(), Type::float());
        assert_eq!(Literal::Float(0.0).c_source(), "0.0f");
        assert_eq!(Literal::Float(1.5).c_source(), "1.5f");
        assert_eq!(Literal::Int(3).ty(), Type::int());
        assert_eq!(Literal::Int(3).c_source(), "3");
    }

    #[test]
    fn pattern_arities() {
        let mut p = Program::new("t");
        let add = p.add_decl(FunDecl::UserFun(UserFun::add()));
        assert_eq!(Pattern::ReduceSeq { f: add }.arity(), 2);
        assert_eq!(Pattern::Zip { arity: 3 }.arity(), 3);
        assert_eq!(Pattern::Join.arity(), 1);
        assert_eq!(Pattern::MapSeq { f: add }.nested_fun(), Some(add));
        assert_eq!(Pattern::Join.nested_fun(), None);
    }

    #[test]
    fn high_level_patterns_are_flagged() {
        let mut p = Program::new("t");
        let f = p.add_decl(FunDecl::UserFun(UserFun::id_float()));
        assert!(Pattern::Map { f }.is_high_level());
        assert!(Pattern::Reduce { f }.is_high_level());
        assert!(!Pattern::MapGlb { dim: 0, f }.is_high_level());
        assert_eq!(Pattern::Map { f }.name(), "map");
        assert_eq!(Pattern::Reduce { f }.name(), "reduce");
        assert_eq!(Pattern::Reduce { f }.arity(), 2);
    }

    #[test]
    fn reachable_decls_ignores_orphans() {
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let orphan = p.map(id);
        let m = p.map_seq(id);
        p.with_root(
            vec![("x", Type::array(Type::float(), 4usize))],
            |p, params| p.apply1(m, params[0]),
        );
        let reachable = p.reachable_decls();
        assert!(reachable.contains(&m));
        assert!(reachable.contains(&id));
        assert!(!reachable.contains(&orphan));
        // The orphaned high-level pattern does not block lowering checks.
        assert_eq!(p.first_high_level_pattern(), None);
    }

    #[test]
    fn pattern_names_match_the_paper() {
        let mut p = Program::new("t");
        let f = p.add_decl(FunDecl::UserFun(UserFun::id_float()));
        assert_eq!(Pattern::MapWrg { dim: 0, f }.name(), "mapWrg0");
        assert_eq!(
            Pattern::Split {
                chunk: ArithExpr::cst(128)
            }
            .name(),
            "split128"
        );
        assert_eq!(Pattern::Iterate { n: 6, f }.name(), "iterate6");
        assert_eq!(Pattern::AsVector { width: 4 }.name(), "asVector4");
    }

    #[test]
    #[should_panic(expected = "root of a program must be a lambda")]
    fn non_lambda_root_is_rejected() {
        let mut p = Program::new("t");
        let id = p.add_decl(FunDecl::Pattern(Pattern::Join));
        p.set_root(id);
    }

    #[test]
    fn reorder_identity_and_reverse() {
        let n = ArithExpr::size_var("N");
        let i = ArithExpr::var_in_range("i", 0, n.clone());
        assert_eq!(Reorder::Identity.apply(&i, &n), i);
        assert_eq!(Reorder::Reverse.apply(&i, &n), n.clone() - 1 - i.clone());
        // The stride reorder on a 2D array flattened from [rows][cols] transposes it.
        let rows = ArithExpr::size_var("R");
        let cols = ArithExpr::size_var("C");
        let total = rows.clone() * cols.clone();
        let idx = Reorder::Stride(cols.clone()).apply(&i, &total);
        assert_eq!(idx, (i.clone() % cols.clone()) * rows + i / cols);
    }
}
