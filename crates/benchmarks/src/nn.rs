//! Nearest Neighbour (Table 1: NN, from Rodinia).
//!
//! For every record (latitude, longitude) the kernel computes the Euclidean distance to a
//! fixed query location. This is the simplest benchmark of the suite: a single zipped map
//! with no reuse, entirely memory-bound.

use lift_arith::ArithExpr;
use lift_ir::{Program, ScalarExpr, Type, UserFun};
use lift_ocl::{CExpr, CStmt, Kernel};
use lift_vgpu::{KernelArg, LaunchConfig};

use crate::refs;
use crate::workload::random_floats;
use crate::{BenchmarkCase, BenchmarkInfo, ProblemSize};

/// The fixed query location.
pub const QUERY_LAT: f32 = 0.5;
/// The fixed query location.
pub const QUERY_LNG: f32 = -0.25;

fn records(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Small => 8192,
        ProblemSize::Large => 32768,
    }
}

/// `dist((lat, lng)) = sqrt((lat - qlat)² + (lng - qlng)²)`.
pub fn distance() -> UserFun {
    let lat = || {
        ScalarExpr::param(0)
            .get(0)
            .sub(ScalarExpr::cf(f64::from(QUERY_LAT)))
    };
    let lng = || {
        ScalarExpr::param(0)
            .get(1)
            .sub(ScalarExpr::cf(f64::from(QUERY_LNG)))
    };
    UserFun::new(
        "nnDistance",
        vec![("rec", Type::pair(Type::float(), Type::float()))],
        Type::float(),
        lat().mul(lat()).add(lng().mul(lng())).sqrt(),
    )
    .expect("well-formed")
}

/// Host reference.
pub fn host_reference(lat: &[f32], lng: &[f32]) -> Vec<f32> {
    lat.iter()
        .zip(lng)
        .map(|(a, b)| ((a - QUERY_LAT).powi(2) + (b - QUERY_LNG).powi(2)).sqrt())
        .collect()
}

/// The Lift program: `mapGlb(dist) . zip(lat, lng)`.
pub fn lift_program(n: usize) -> Program {
    let mut p = Program::new("nn");
    let dist = p.user_fun(distance());
    let m = p.map_glb(0, dist);
    let z = p.zip2();
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            ("lat", Type::array(Type::float(), n_expr.clone())),
            ("lng", Type::array(Type::float(), n_expr)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            p.apply1(m, zipped)
        },
    );
    p
}

/// Hand-written reference kernel.
fn reference_kernel() -> Kernel {
    let gid = CExpr::global_id(0);
    let body = vec![
        refs::decl_float(
            "dlat",
            CExpr::var("lat")
                .at(gid.clone())
                .sub(CExpr::float(f64::from(QUERY_LAT))),
        ),
        refs::decl_float(
            "dlng",
            CExpr::var("lng")
                .at(gid.clone())
                .sub(CExpr::float(f64::from(QUERY_LNG))),
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::Call(
                "sqrt".into(),
                vec![CExpr::var("dlat")
                    .mul(CExpr::var("dlat"))
                    .add(CExpr::var("dlng").mul(CExpr::var("dlng")))],
            ),
        },
    ];
    Kernel {
        name: "nn_ref".into(),
        params: vec![refs::input("lat"), refs::input("lng"), refs::output("out")],
        body,
    }
}

/// The NN benchmark case.
pub fn case(size: ProblemSize) -> BenchmarkCase {
    let n = records(size);
    let lat = random_floats(41, n, -1.0, 1.0);
    let lng = random_floats(42, n, -1.0, 1.0);
    let expected = host_reference(&lat, &lng);
    let kernel = reference_kernel();
    let reference_kernel_name = kernel.name.clone();
    BenchmarkCase {
        info: BenchmarkInfo {
            name: "NN",
            source: "Rodinia",
            local_memory: false,
            private_memory: false,
            vectorisation: false,
            coalescing: true,
            iteration_space: "1D",
            opencl_loc_paper: 18,
            high_level_loc_paper: 7,
            low_level_loc_paper: 7,
        },
        size,
        program: lift_program(n),
        inputs: vec![lat.clone(), lng.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d1(n, 128),
        reference_module: refs::module(kernel),
        reference_kernel: reference_kernel_name,
        reference_args: vec![
            KernelArg::Buffer(lat),
            KernelArg::Buffer(lng),
            KernelArg::zeros(n),
        ],
        reference_output_buffer: 2,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_interp::{evaluate, Value};

    #[test]
    fn interpreter_matches_host_reference() {
        let lat = random_floats(1, 64, -1.0, 1.0);
        let lng = random_floats(2, 64, -1.0, 1.0);
        let out = evaluate(
            &lift_program(64),
            &[Value::from_f32_slice(&lat), Value::from_f32_slice(&lng)],
        )
        .unwrap()
        .flatten_f32();
        let expected = host_reference(&lat, &lng);
        for (a, e) in out.iter().zip(&expected) {
            assert!((a - e).abs() < 1e-4);
        }
    }
}
