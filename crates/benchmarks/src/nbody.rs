//! N-Body simulation (Table 1: NVIDIA SDK and AMD SDK variants).
//!
//! Every body feels a softened gravitational pull from every other body. To keep the focus on
//! code generation (rather than the physics), bodies live on a line: the acceleration of body
//! `i` is `Σ_j d * rsqrt((d² + ε)³)` with `d = p_j - p_i`. The two Lift variants mirror the
//! two reference implementations of the paper:
//!
//! * **NVIDIA**: work-group based; the chunk of target bodies handled by a work group is first
//!   staged in local memory (`toLocal`), then each work item reduces over all source bodies.
//! * **AMD**: a flat `mapGlb` over the bodies with no local memory (the original uses
//!   vectorisation instead, which this reproduction notes but does not vectorise).

use lift_arith::ArithExpr;
use lift_ir::{Program, ScalarExpr, Type, UserFun};
use lift_ocl::{CExpr, CStmt, CType, Fence, Kernel};
use lift_vgpu::{KernelArg, LaunchConfig};

use crate::refs;
use crate::workload::random_floats;
use crate::{BenchmarkCase, BenchmarkInfo, ProblemSize};

/// Softening factor of the interaction.
pub const SOFTENING: f32 = 0.01;

fn bodies(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Small => 256,
        ProblemSize::Large => 512,
    }
}

const TILE: usize = 64;

/// The pairwise interaction user function: `acc + d * rsqrt((d² + ε)³)` with `d = p_j - p_i`.
pub fn interaction() -> UserFun {
    let d = || ScalarExpr::param(1).sub(ScalarExpr::param(2));
    let dist2 = || d().mul(d()).add(ScalarExpr::cf(f64::from(SOFTENING)));
    let inv = dist2().mul(dist2()).mul(dist2()).rsqrt();
    UserFun::new(
        "nbodyInteraction",
        vec![
            ("acc", Type::float()),
            ("pj", Type::float()),
            ("pi", Type::float()),
        ],
        Type::float(),
        ScalarExpr::param(0).add(d().mul(inv)),
    )
    .expect("well-formed")
}

/// Host reference.
pub fn host_reference(positions: &[f32]) -> Vec<f32> {
    positions
        .iter()
        .map(|pi| {
            positions
                .iter()
                .map(|pj| {
                    let d = pj - pi;
                    let dist2 = d * d + SOFTENING;
                    d / (dist2 * dist2 * dist2).sqrt()
                })
                .sum()
        })
        .collect()
}

/// The NVIDIA-style Lift program: work groups stage their targets in local memory.
pub fn nvidia_lift_program(n: usize) -> Program {
    let mut p = Program::new("nbody_nvidia");
    let interact = p.user_fun(interaction());
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![("pos", Type::array(Type::float(), n_expr.clone()))],
        |p, params| {
            let positions = params[0];
            // Per target body: reduce the interaction over all source bodies.
            let per_body = p.lambda(&["pi"], |p, body_params| {
                let pi = body_params[0];
                let red_f = p.lambda(&["acc", "pj"], |p, red_params| {
                    p.apply(interact, [red_params[0], red_params[1], pi])
                });
                let reduce = p.reduce_seq_pattern(red_f);
                let init = p.literal_f32(0.0);
                p.apply(reduce, [init, positions])
            });
            // Work group: copy the chunk of targets into local memory, then map over it.
            let copy_chunk = {
                let idf = p.user_fun(UserFun::id_float());
                let ml = p.map_lcl(0, idf);
                p.to_local(ml)
            };
            let map_bodies = p.map_lcl(0, per_body);
            let joins = p.join();
            let wg_body = p.compose(&[joins, map_bodies, copy_chunk]);
            let wg = p.map_wrg(0, wg_body);
            let split = p.split(TILE);
            let join_out = p.join();
            let chunks = p.apply1(split, positions);
            let mapped = p.apply1(wg, chunks);
            p.apply1(join_out, mapped)
        },
    );
    p
}

/// The AMD-style Lift program: a flat global map with no local memory.
pub fn amd_lift_program(n: usize) -> Program {
    let mut p = Program::new("nbody_amd");
    let interact = p.user_fun(interaction());
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![("pos", Type::array(Type::float(), n_expr.clone()))],
        |p, params| {
            let positions = params[0];
            let per_body = p.lambda(&["pi"], |p, body_params| {
                let pi = body_params[0];
                let red_f = p.lambda(&["acc", "pj"], |p, red_params| {
                    p.apply(interact, [red_params[0], red_params[1], pi])
                });
                let reduce = p.reduce_seq_pattern(red_f);
                let init = p.literal_f32(0.0);
                p.apply(reduce, [init, positions])
            });
            let m = p.map_glb(0, per_body);
            let j = p.join();
            let mapped = p.apply1(m, positions);
            p.apply1(j, mapped)
        },
    );
    p
}

/// The *high-level* N-Body program: `pos ↦ join(map(λpi. reduce(λ(acc, pj).
/// interaction(acc, pj, pi), 0)(pos))(pos))` — only backend-agnostic `map`/`reduce`
/// patterns, no work-group structure and no memory placement.
///
/// `lift-rewrite` lowers it to variants like [`amd_lift_program`] (flat `mapGlb`) and
/// `lift-tuner` searches the launch/parameter space per device.
pub fn high_level_program(n: usize) -> Program {
    let mut p = Program::new("nbody");
    let interact = p.user_fun(interaction());
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![("pos", Type::array(Type::float(), n_expr.clone()))],
        |p, params| {
            let positions = params[0];
            let per_body = p.lambda(&["pi"], |p, body_params| {
                let pi = body_params[0];
                let red_f = p.lambda(&["acc", "pj"], |p, red_params| {
                    p.apply(interact, [red_params[0], red_params[1], pi])
                });
                let reduce = p.reduce_pattern(red_f);
                let init = p.literal_f32(0.0);
                p.apply(reduce, [init, positions])
            });
            let m = p.map(per_body);
            let j = p.join();
            let mapped = p.apply1(m, positions);
            p.apply1(j, mapped)
        },
    );
    p
}

/// Hand-written NVIDIA-style reference kernel: local-memory tiling of the source bodies.
fn nvidia_reference_kernel(n: usize) -> Kernel {
    let gid = CExpr::global_id(0);
    let lid = CExpr::local_id(0);
    let body = vec![
        CStmt::Decl {
            ty: CType::Float,
            name: "tile".into(),
            addr: Some(lift_ocl::AddrSpace::Local),
            array_len: Some(ArithExpr::cst(TILE as i64)),
            init: None,
        },
        refs::decl_float("pi", CExpr::var("pos").at(gid.clone())),
        refs::decl_float("acc", CExpr::float(0.0)),
        refs::for_loop(
            "t",
            CExpr::int((n / TILE) as i64),
            vec![
                CStmt::Assign {
                    lhs: CExpr::var("tile").at(lid.clone()),
                    rhs: CExpr::var("pos").at(CExpr::var("t")
                        .mul(CExpr::int(TILE as i64))
                        .add(lid.clone())),
                },
                CStmt::Barrier(Fence::local()),
                refs::for_loop(
                    "j",
                    CExpr::int(TILE as i64),
                    vec![
                        refs::decl_float(
                            "d",
                            CExpr::var("tile").at(CExpr::var("j")).sub(CExpr::var("pi")),
                        ),
                        refs::decl_float(
                            "dist2",
                            CExpr::var("d")
                                .mul(CExpr::var("d"))
                                .add(CExpr::float(f64::from(SOFTENING))),
                        ),
                        CStmt::Assign {
                            lhs: CExpr::var("acc"),
                            rhs: CExpr::var("acc").add(CExpr::var("d").mul(CExpr::Call(
                                "rsqrt".into(),
                                vec![CExpr::var("dist2")
                                    .mul(CExpr::var("dist2"))
                                    .mul(CExpr::var("dist2"))],
                            ))),
                        },
                    ],
                ),
                CStmt::Barrier(Fence::local()),
            ],
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::var("acc"),
        },
    ];
    Kernel {
        name: "nbody_nvidia_ref".into(),
        params: vec![
            refs::input("pos"),
            refs::output("out"),
            refs::int_param("N"),
        ],
        body,
    }
}

/// Hand-written AMD-style reference kernel: a straightforward per-thread loop.
fn amd_reference_kernel() -> Kernel {
    let gid = CExpr::global_id(0);
    let body = vec![
        refs::decl_float("pi", CExpr::var("pos").at(gid.clone())),
        refs::decl_float("acc", CExpr::float(0.0)),
        refs::for_loop(
            "j",
            CExpr::var("N"),
            vec![
                refs::decl_float(
                    "d",
                    CExpr::var("pos").at(CExpr::var("j")).sub(CExpr::var("pi")),
                ),
                refs::decl_float(
                    "dist2",
                    CExpr::var("d")
                        .mul(CExpr::var("d"))
                        .add(CExpr::float(f64::from(SOFTENING))),
                ),
                CStmt::Assign {
                    lhs: CExpr::var("acc"),
                    rhs: CExpr::var("acc").add(CExpr::var("d").mul(CExpr::Call(
                        "rsqrt".into(),
                        vec![CExpr::var("dist2")
                            .mul(CExpr::var("dist2"))
                            .mul(CExpr::var("dist2"))],
                    ))),
                },
            ],
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::var("acc"),
        },
    ];
    Kernel {
        name: "nbody_amd_ref".into(),
        params: vec![
            refs::input("pos"),
            refs::output("out"),
            refs::int_param("N"),
        ],
        body,
    }
}

fn build_case(size: ProblemSize, nvidia: bool) -> BenchmarkCase {
    let n = bodies(size);
    let positions = random_floats(11, n, -1.0, 1.0);
    let expected = host_reference(&positions);
    let (program, kernel, info) = if nvidia {
        (
            nvidia_lift_program(n),
            nvidia_reference_kernel(n),
            BenchmarkInfo {
                name: "N-Body (NVIDIA)",
                source: "NVIDIA SDK",
                local_memory: true,
                private_memory: true,
                vectorisation: false,
                coalescing: true,
                iteration_space: "1D",
                opencl_loc_paper: 139,
                high_level_loc_paper: 34,
                low_level_loc_paper: 49,
            },
        )
    } else {
        (
            amd_lift_program(n),
            amd_reference_kernel(),
            BenchmarkInfo {
                name: "N-Body (AMD)",
                source: "AMD SDK",
                local_memory: false,
                private_memory: true,
                vectorisation: true,
                coalescing: true,
                iteration_space: "1D",
                opencl_loc_paper: 54,
                high_level_loc_paper: 34,
                low_level_loc_paper: 34,
            },
        )
    };
    let reference_kernel = kernel.name.clone();
    BenchmarkCase {
        info,
        size,
        program,
        inputs: vec![positions.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d1(n, TILE),
        reference_module: refs::module(kernel),
        reference_kernel,
        reference_args: vec![
            KernelArg::Buffer(positions),
            KernelArg::zeros(n),
            KernelArg::Int(n as i64),
        ],
        reference_output_buffer: 1,
        expected,
    }
}

/// The NVIDIA-SDK-style benchmark case.
pub fn nvidia_case(size: ProblemSize) -> BenchmarkCase {
    build_case(size, true)
}

/// The AMD-SDK-style benchmark case.
pub fn amd_case(size: ProblemSize) -> BenchmarkCase {
    build_case(size, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_interp::{evaluate, Value};

    #[test]
    fn lift_programs_match_the_host_reference() {
        let n = 128;
        let positions = random_floats(3, n, -1.0, 1.0);
        let expected = host_reference(&positions);
        for program in [
            nvidia_lift_program(n),
            amd_lift_program(n),
            high_level_program(n),
        ] {
            let out = evaluate(&program, &[Value::from_f32_slice(&positions)])
                .expect("interpreter")
                .flatten_f32();
            for (a, e) in out.iter().zip(&expected) {
                assert!((a - e).abs() < 1e-2 * (1.0 + e.abs()), "{a} vs {e}");
            }
        }
    }

    #[test]
    fn cases_are_well_formed() {
        let c = nvidia_case(ProblemSize::Small);
        assert_eq!(c.inputs[0].len(), c.expected.len());
        assert!(c.info.local_memory);
        let c = amd_case(ProblemSize::Small);
        assert!(!c.info.local_memory);
    }
}
