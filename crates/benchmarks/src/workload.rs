//! Deterministic workload generation.
//!
//! All benchmarks draw their inputs from a seeded pseudo-random generator so that runs are
//! reproducible and the generated and reference kernels can be compared element by element.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `len` pseudo-random floats in `[lo, hi)` from a fixed seed.
pub fn random_floats(seed: u64, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Generates a `rows x cols` matrix in row-major order.
pub fn random_matrix(seed: u64, rows: usize, cols: usize, lo: f32, hi: f32) -> Vec<f32> {
    random_floats(seed, rows * cols, lo, hi)
}

/// Rounds `n` up to the next multiple of `m`.
pub fn round_up(n: usize, m: usize) -> usize {
    n.div_ceil(m) * m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            random_floats(7, 16, -1.0, 1.0),
            random_floats(7, 16, -1.0, 1.0)
        );
        assert_ne!(
            random_floats(7, 16, -1.0, 1.0),
            random_floats(8, 16, -1.0, 1.0)
        );
    }

    #[test]
    fn values_stay_in_range() {
        let v = random_floats(3, 100, 0.5, 2.0);
        assert!(v.iter().all(|x| (0.5..2.0).contains(x)));
        assert_eq!(random_matrix(1, 4, 8, 0.0, 1.0).len(), 32);
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(100, 32), 128);
        assert_eq!(round_up(128, 32), 128);
    }
}
