//! Dense linear-algebra kernels (Table 1: ATAX, GEMV, GESUMMV, from CLBlast / PolyBench).
//!
//! * **GEMV** — `y = A·x`: one work item per row, sequential dot product along the row.
//! * **ATAX** — the second half of `Aᵀ(A·x)`: a matrix–vector product with the matrix accessed
//!   through a `transpose` view, which produces the strided (uncoalesced) accesses the paper's
//!   reference implementation avoids by construction.
//! * **GESUMMV** — `y = (A + B)·x`: two matrices are zipped row-wise and reduced together.

use lift_arith::ArithExpr;
use lift_ir::{Program, ScalarExpr, Type, UserFun};
use lift_ocl::{CExpr, CStmt, Kernel};
use lift_vgpu::{KernelArg, LaunchConfig};

use crate::refs;
use crate::workload::{random_floats, random_matrix};
use crate::{BenchmarkCase, BenchmarkInfo, ProblemSize};

fn dim(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Small => 64,
        ProblemSize::Large => 128,
    }
}

/// `gesummvMac(acc, t) = acc + (t.0 + t.1) * t.2` where `t = (a_ij, b_ij, x_j)`.
pub fn gesummv_mac() -> UserFun {
    let t = ScalarExpr::param(1);
    UserFun::new(
        "gesummvMac",
        vec![
            ("acc", Type::float()),
            (
                "t",
                Type::tuple(vec![Type::float(), Type::float(), Type::float()]),
            ),
        ],
        Type::float(),
        ScalarExpr::param(0).add(t.clone().get(0).add(t.clone().get(1)).mul(t.get(2))),
    )
    .expect("well-formed")
}

// ---------------------------------------------------------------------------- host references

/// `y = A·x` on the host.
pub fn gemv_host(a: &[f32], x: &[f32], n: usize, m: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (0..m).map(|j| a[i * m + j] * x[j]).sum())
        .collect()
}

/// `y = Aᵀ·x` on the host.
pub fn atax_host(a: &[f32], x: &[f32], n: usize, m: usize) -> Vec<f32> {
    (0..m)
        .map(|j| (0..n).map(|i| a[i * m + j] * x[i]).sum())
        .collect()
}

/// `y = (A + B)·x` on the host.
pub fn gesummv_host(a: &[f32], b: &[f32], x: &[f32], n: usize, m: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (0..m).map(|j| (a[i * m + j] + b[i * m + j]) * x[j]).sum())
        .collect()
}

// ---------------------------------------------------------------------------- Lift programs

/// GEMV: `join . mapGlb(reduceSeq(multAndSumUp, 0) . zip(x)) . A`.
pub fn gemv_lift_program(n: usize, m: usize) -> Program {
    let mut p = Program::new("gemv");
    let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
    let n_expr = ArithExpr::cst(n as i64);
    let m_expr = ArithExpr::cst(m as i64);
    p.with_root(
        vec![
            (
                "A",
                Type::array(Type::array(Type::float(), m_expr.clone()), n_expr),
            ),
            ("x", Type::array(Type::float(), m_expr)),
        ],
        |p, params| {
            let x = params[1];
            let per_row = p.lambda(&["row"], |p, lp| {
                let z = p.zip2();
                let zipped = p.apply(z, [lp[0], x]);
                let red = p.reduce_seq_pattern(mult_add);
                let init = p.literal_f32(0.0);
                p.apply(red, [init, zipped])
            });
            let m_glb = p.map_glb(0, per_row);
            let j = p.join();
            let mapped = p.apply1(m_glb, params[0]);
            p.apply1(j, mapped)
        },
    );
    p
}

/// ATAX (second pass): `join . mapGlb(reduceSeq(multAndSumUp, 0) . zip(x)) . transpose(A)`.
pub fn atax_lift_program(n: usize, m: usize) -> Program {
    let mut p = Program::new("atax");
    let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
    let n_expr = ArithExpr::cst(n as i64);
    let m_expr = ArithExpr::cst(m as i64);
    p.with_root(
        vec![
            (
                "A",
                Type::array(Type::array(Type::float(), m_expr.clone()), n_expr.clone()),
            ),
            ("x", Type::array(Type::float(), n_expr)),
        ],
        |p, params| {
            let x = params[1];
            let per_col = p.lambda(&["col"], |p, lp| {
                let z = p.zip2();
                let zipped = p.apply(z, [lp[0], x]);
                let red = p.reduce_seq_pattern(mult_add);
                let init = p.literal_f32(0.0);
                p.apply(red, [init, zipped])
            });
            let m_glb = p.map_glb(0, per_col);
            let j = p.join();
            // Transposition expressed as split . gather(stride) . join, as in Section 3.2.
            let jt = p.join();
            let g = p.gather(lift_ir::Reorder::Stride(ArithExpr::cst(n as i64)));
            let st = p.split(n);
            let flat = p.apply1(jt, params[0]);
            let gathered = p.apply1(g, flat);
            let transposed = p.apply1(st, gathered);
            let mapped = p.apply1(m_glb, transposed);
            p.apply1(j, mapped)
        },
    );
    p
}

/// GESUMMV: `join . mapGlb(reduceSeq(gesummvMac, 0) . zip3(arow, brow, x)) . zip(A, B)`.
pub fn gesummv_lift_program(n: usize, m: usize) -> Program {
    let mut p = Program::new("gesummv");
    let mac = p.user_fun(gesummv_mac());
    let n_expr = ArithExpr::cst(n as i64);
    let m_expr = ArithExpr::cst(m as i64);
    p.with_root(
        vec![
            (
                "A",
                Type::array(Type::array(Type::float(), m_expr.clone()), n_expr.clone()),
            ),
            (
                "B",
                Type::array(Type::array(Type::float(), m_expr.clone()), n_expr),
            ),
            ("x", Type::array(Type::float(), m_expr)),
        ],
        |p, params| {
            let x = params[2];
            let per_row = p.lambda(&["rows"], |p, lp| {
                let g0 = p.get(0);
                let g1 = p.get(1);
                let arow = p.apply1(g0, lp[0]);
                let brow = p.apply1(g1, lp[0]);
                let z3 = p.zip(3);
                let zipped = p.apply(z3, [arow, brow, x]);
                let red = p.reduce_seq_pattern(mac);
                let init = p.literal_f32(0.0);
                p.apply(red, [init, zipped])
            });
            let zrows = p.zip2();
            let m_glb = p.map_glb(0, per_row);
            let j = p.join();
            let zipped_rows = p.apply(zrows, [params[0], params[1]]);
            let mapped = p.apply1(m_glb, zipped_rows);
            p.apply1(j, mapped)
        },
    );
    p
}

// ---------------------------------------------------------------------------- reference kernels

/// The CLBlast-style GEMV reference: one row per thread, flat indexing.
fn gemv_reference_kernel() -> Kernel {
    let gid = CExpr::global_id(0);
    let body = vec![
        refs::decl_float("acc", CExpr::float(0.0)),
        refs::for_loop(
            "j",
            CExpr::var("M"),
            vec![CStmt::Assign {
                lhs: CExpr::var("acc"),
                rhs: CExpr::var("acc").add(
                    CExpr::var("A")
                        .at(gid.clone().mul(CExpr::var("M")).add(CExpr::var("j")))
                        .mul(CExpr::var("x").at(CExpr::var("j"))),
                ),
            }],
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::var("acc"),
        },
    ];
    Kernel {
        name: "gemv_ref".into(),
        params: vec![
            refs::input("A"),
            refs::input("x"),
            refs::output("out"),
            refs::int_param("M"),
        ],
        body,
    }
}

/// The ATAX reference: one column per thread (`A` accessed with stride `M`).
fn atax_reference_kernel() -> Kernel {
    let gid = CExpr::global_id(0);
    let body = vec![
        refs::decl_float("acc", CExpr::float(0.0)),
        refs::for_loop(
            "i",
            CExpr::var("N"),
            vec![CStmt::Assign {
                lhs: CExpr::var("acc"),
                rhs: CExpr::var("acc").add(
                    CExpr::var("A")
                        .at(CExpr::var("i").mul(CExpr::var("M")).add(gid.clone()))
                        .mul(CExpr::var("x").at(CExpr::var("i"))),
                ),
            }],
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::var("acc"),
        },
    ];
    Kernel {
        name: "atax_ref".into(),
        params: vec![
            refs::input("A"),
            refs::input("x"),
            refs::output("out"),
            refs::int_param("N"),
            refs::int_param("M"),
        ],
        body,
    }
}

/// The GESUMMV reference: one row per thread over both matrices.
fn gesummv_reference_kernel() -> Kernel {
    let gid = CExpr::global_id(0);
    let idx = gid.clone().mul(CExpr::var("M")).add(CExpr::var("j"));
    let body = vec![
        refs::decl_float("acc", CExpr::float(0.0)),
        refs::for_loop(
            "j",
            CExpr::var("M"),
            vec![CStmt::Assign {
                lhs: CExpr::var("acc"),
                rhs: CExpr::var("acc").add(
                    CExpr::var("A")
                        .at(idx.clone())
                        .add(CExpr::var("B").at(idx))
                        .mul(CExpr::var("x").at(CExpr::var("j"))),
                ),
            }],
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::var("acc"),
        },
    ];
    Kernel {
        name: "gesummv_ref".into(),
        params: vec![
            refs::input("A"),
            refs::input("B"),
            refs::input("x"),
            refs::output("out"),
            refs::int_param("M"),
        ],
        body,
    }
}

// ---------------------------------------------------------------------------- cases

/// The GEMV benchmark case.
pub fn gemv_case(size: ProblemSize) -> BenchmarkCase {
    let n = dim(size);
    let m = dim(size);
    let a = random_matrix(71, n, m, -1.0, 1.0);
    let x = random_floats(72, m, -1.0, 1.0);
    let expected = gemv_host(&a, &x, n, m);
    let kernel = gemv_reference_kernel();
    let name = kernel.name.clone();
    BenchmarkCase {
        info: BenchmarkInfo {
            name: "GEMV",
            source: "CLBlast",
            local_memory: true,
            private_memory: false,
            vectorisation: false,
            coalescing: true,
            iteration_space: "1D",
            opencl_loc_paper: 213,
            high_level_loc_paper: 15,
            low_level_loc_paper: 32,
        },
        size,
        program: gemv_lift_program(n, m),
        inputs: vec![a.clone(), x.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d1(n, 16),
        reference_module: refs::module(kernel),
        reference_kernel: name,
        reference_args: vec![
            KernelArg::Buffer(a),
            KernelArg::Buffer(x),
            KernelArg::zeros(n),
            KernelArg::Int(m as i64),
        ],
        reference_output_buffer: 2,
        expected,
    }
}

/// The ATAX benchmark case.
pub fn atax_case(size: ProblemSize) -> BenchmarkCase {
    let n = dim(size);
    let m = dim(size);
    let a = random_matrix(73, n, m, -1.0, 1.0);
    let x = random_floats(74, n, -1.0, 1.0);
    let expected = atax_host(&a, &x, n, m);
    let kernel = atax_reference_kernel();
    let name = kernel.name.clone();
    BenchmarkCase {
        info: BenchmarkInfo {
            name: "ATAX",
            source: "CLBlast",
            local_memory: true,
            private_memory: false,
            vectorisation: false,
            coalescing: true,
            iteration_space: "1D",
            opencl_loc_paper: 426,
            high_level_loc_paper: 30,
            low_level_loc_paper: 64,
        },
        size,
        program: atax_lift_program(n, m),
        inputs: vec![a.clone(), x.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d1(m, 16),
        reference_module: refs::module(kernel),
        reference_kernel: name,
        reference_args: vec![
            KernelArg::Buffer(a),
            KernelArg::Buffer(x),
            KernelArg::zeros(m),
            KernelArg::Int(n as i64),
            KernelArg::Int(m as i64),
        ],
        reference_output_buffer: 2,
        expected,
    }
}

/// The GESUMMV benchmark case.
pub fn gesummv_case(size: ProblemSize) -> BenchmarkCase {
    let n = dim(size);
    let m = dim(size);
    let a = random_matrix(75, n, m, -1.0, 1.0);
    let b = random_matrix(76, n, m, -1.0, 1.0);
    let x = random_floats(77, m, -1.0, 1.0);
    let expected = gesummv_host(&a, &b, &x, n, m);
    let kernel = gesummv_reference_kernel();
    let name = kernel.name.clone();
    BenchmarkCase {
        info: BenchmarkInfo {
            name: "GESUMMV",
            source: "CLBlast",
            local_memory: true,
            private_memory: false,
            vectorisation: false,
            coalescing: true,
            iteration_space: "1D",
            opencl_loc_paper: 426,
            high_level_loc_paper: 30,
            low_level_loc_paper: 64,
        },
        size,
        program: gesummv_lift_program(n, m),
        inputs: vec![a.clone(), b.clone(), x.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d1(n, 16),
        reference_module: refs::module(kernel),
        reference_kernel: name,
        reference_args: vec![
            KernelArg::Buffer(a),
            KernelArg::Buffer(b),
            KernelArg::Buffer(x),
            KernelArg::zeros(n),
            KernelArg::Int(m as i64),
        ],
        reference_output_buffer: 3,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_interp::{evaluate, Value};

    #[test]
    fn gemv_interpreter_matches_host() {
        let (n, m) = (8, 12);
        let a = random_matrix(1, n, m, -1.0, 1.0);
        let x = random_floats(2, m, -1.0, 1.0);
        let out = evaluate(
            &gemv_lift_program(n, m),
            &[Value::from_f32_matrix(&a, n, m), Value::from_f32_slice(&x)],
        )
        .unwrap()
        .flatten_f32();
        for (o, e) in out.iter().zip(&gemv_host(&a, &x, n, m)) {
            assert!((o - e).abs() < 1e-3 * (1.0 + e.abs()));
        }
    }

    #[test]
    fn atax_interpreter_matches_host() {
        let (n, m) = (8, 12);
        let a = random_matrix(3, n, m, -1.0, 1.0);
        let x = random_floats(4, n, -1.0, 1.0);
        let out = evaluate(
            &atax_lift_program(n, m),
            &[Value::from_f32_matrix(&a, n, m), Value::from_f32_slice(&x)],
        )
        .unwrap()
        .flatten_f32();
        for (o, e) in out.iter().zip(&atax_host(&a, &x, n, m)) {
            assert!((o - e).abs() < 1e-3 * (1.0 + e.abs()));
        }
    }

    #[test]
    fn gesummv_interpreter_matches_host() {
        let (n, m) = (8, 12);
        let a = random_matrix(5, n, m, -1.0, 1.0);
        let b = random_matrix(6, n, m, -1.0, 1.0);
        let x = random_floats(7, m, -1.0, 1.0);
        let out = evaluate(
            &gesummv_lift_program(n, m),
            &[
                Value::from_f32_matrix(&a, n, m),
                Value::from_f32_matrix(&b, n, m),
                Value::from_f32_slice(&x),
            ],
        )
        .unwrap()
        .flatten_f32();
        for (o, e) in out.iter().zip(&gesummv_host(&a, &b, &x, n, m)) {
            assert!((o - e).abs() < 1e-3 * (1.0 + e.abs()));
        }
    }
}
