//! Compiling, executing and measuring benchmarks.
//!
//! This module is the experimental harness of the reproduction: it compiles a benchmark's
//! Lift program at a given optimisation level, runs both the generated kernel and the
//! hand-written reference kernel on the virtual GPU, verifies both against the host-computed
//! expected output and returns the cost-model counters from which Figure 8's relative
//! performance is computed.

use lift_codegen::{compile, CodegenError, CompilationOptions, CompiledKernel};
use lift_vgpu::{CostCounters, DeviceProfile, ExecutionRequest, VgpuError};

use crate::BenchmarkCase;

/// The outcome of executing one kernel (generated or reference) for a benchmark.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The produced output buffer.
    pub output: Vec<f32>,
    /// The dynamic cost counters of the execution.
    pub counters: CostCounters,
    /// Whether the output matched the host reference within tolerance.
    pub correct: bool,
    /// Number of non-empty OpenCL source lines (generated kernels only; 0 for references).
    pub source_lines: usize,
}

impl RunOutcome {
    /// Estimated execution time under the given device profile.
    pub fn estimated_time(&self, device: &DeviceProfile) -> f64 {
        self.counters.estimated_time(device)
    }
}

/// Errors from the benchmark runner.
#[derive(Clone, Debug, PartialEq)]
pub enum RunnerError {
    /// Compiling the Lift program failed.
    Codegen(CodegenError),
    /// Executing a kernel on the virtual GPU failed.
    Execution(VgpuError),
    /// The output length could not be computed.
    OutputLength(String),
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunnerError::Codegen(e) => write!(f, "code generation failed: {e}"),
            RunnerError::Execution(e) => write!(f, "kernel execution failed: {e}"),
            RunnerError::OutputLength(e) => write!(f, "cannot compute output length: {e}"),
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<CodegenError> for RunnerError {
    fn from(e: CodegenError) -> Self {
        RunnerError::Codegen(e)
    }
}

impl From<VgpuError> for RunnerError {
    fn from(e: VgpuError) -> Self {
        RunnerError::Execution(e)
    }
}

/// Relative tolerance used when comparing kernel outputs against the host reference.
pub fn outputs_match(actual: &[f32], expected: &[f32]) -> bool {
    lift_vgpu::outputs_match(actual, expected)
}

/// Compiles the benchmark's Lift program with the given options.
pub fn compile_case(
    case: &BenchmarkCase,
    options: &CompilationOptions,
) -> Result<CompiledKernel, RunnerError> {
    let options = options
        .clone()
        .with_launch(case.launch.global, case.launch.local);
    Ok(compile(&case.program, &options)?)
}

/// Compiles and executes the benchmark's Lift program at the given optimisation level.
pub fn run_lift(
    case: &BenchmarkCase,
    options: &CompilationOptions,
) -> Result<RunOutcome, RunnerError> {
    let kernel = compile_case(case, options)?;
    let (args, output_buffer_index) = kernel
        .bind_args(&case.inputs, &case.sizes)
        .map_err(RunnerError::OutputLength)?;

    let result =
        ExecutionRequest::new(&kernel.module).launch(&kernel.kernel_name, case.launch, args)?;
    let output = result.buffers[output_buffer_index].clone();
    let correct = outputs_match(&output, &case.expected);
    Ok(RunOutcome {
        output,
        counters: result.report.counters,
        correct,
        source_lines: kernel.line_count(),
    })
}

/// Executes the benchmark's hand-written reference kernel.
pub fn run_reference(case: &BenchmarkCase) -> Result<RunOutcome, RunnerError> {
    let result = ExecutionRequest::new(&case.reference_module).launch(
        &case.reference_kernel,
        case.launch,
        case.reference_args.clone(),
    )?;
    let output = result.buffers[case.reference_output_buffer].clone();
    let correct = outputs_match(&output, &case.expected);
    Ok(RunOutcome {
        output,
        counters: result.report.counters,
        correct,
        source_lines: 0,
    })
}

/// Relative performance of the generated code versus the reference (\>1 means the generated
/// kernel is estimated to be faster), as plotted in Figure 8.
pub fn relative_performance(
    generated: &RunOutcome,
    reference: &RunOutcome,
    device: &DeviceProfile,
) -> f64 {
    let g = generated.estimated_time(device);
    let r = reference.estimated_time(device);
    if g <= 0.0 {
        return 1.0;
    }
    r / g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_match_uses_relative_tolerance() {
        assert!(outputs_match(&[1.0, 2.0], &[1.0005, 2.0]));
        assert!(!outputs_match(&[1.0, 2.0], &[1.5, 2.0]));
        assert!(!outputs_match(&[1.0], &[1.0, 2.0]));
    }

    #[test]
    fn relative_performance_compares_estimated_times() {
        let fast = RunOutcome {
            output: vec![],
            counters: CostCounters {
                flops: 100,
                ..Default::default()
            },
            correct: true,
            source_lines: 0,
        };
        let slow = RunOutcome {
            output: vec![],
            counters: CostCounters {
                flops: 1000,
                ..Default::default()
            },
            correct: true,
            source_lines: 0,
        };
        let device = DeviceProfile::nvidia();
        assert!(relative_performance(&fast, &slow, &device) > 1.0);
        assert!(relative_performance(&slow, &fast, &device) < 1.0);
    }
}
