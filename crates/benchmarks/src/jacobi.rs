//! 2D Jacobi relaxation (5-point stencil).
//!
//! The canonical structured-grid PDE smoother: every grid point is replaced by a weighted
//! average of itself and its four direct neighbours, with clamped boundary handling. The
//! Lift formulation is the textbook 2D stencil composition — `pad2d` for the boundary,
//! `slide2d` for the 3×3 neighbourhoods, and a weighted reduction per neighbourhood (the
//! diagonal weights are zero, making it the 5-point cross) — and exists *only* as a
//! high-level program: the OpenCL kernel is derived by the `lift-rewrite` stencil rules,
//! which compile the mapped layout patterns of `slide2d`/`pad2d` into index views.

use lift_arith::ArithExpr;
use lift_ir::{PadMode, Program, Type, UserFun};

/// The 3×3 weight mask of the 5-point Jacobi update, row-major.
pub const WEIGHTS: [f32; 9] = [0.0, 0.2, 0.0, 0.2, 0.2, 0.2, 0.0, 0.2, 0.0];

/// The high-level 2D Jacobi program over a `rows × cols` grid:
/// `map(map(λnbh. reduce(add, 0)(map(mult)(zip(join(nbh), weights))))) ∘ slide2d(3, 1) ∘
/// pad2d(1, 1, clamp)`.
///
/// Inputs: the flattened grid (as `[[float]_cols]_rows`) and the 9 weights. The output has
/// one (singleton-array) element per grid point.
pub fn high_level_program(rows: usize, cols: usize) -> Program {
    let mut p = Program::new("jacobi2d");
    let mult = p.user_fun(UserFun::mult_pair());
    let add = p.user_fun(UserFun::add());
    let grid_ty = Type::array(
        Type::array(Type::float(), ArithExpr::cst(cols as i64)),
        ArithExpr::cst(rows as i64),
    );
    p.with_root(
        vec![
            ("grid", grid_ty),
            ("weights", Type::array(Type::float(), 9usize)),
        ],
        |p, params| {
            let weights = params[1];
            let m_in = p.map(mult);
            let red = p.reduce(add, 0.0);
            let per_point = p.lambda(&["nbh"], |p, lp| {
                let j = p.join();
                let z = p.zip2();
                let flat = p.apply1(j, lp[0]);
                let zipped = p.apply(z, [flat, weights]);
                let mapped = p.apply1(m_in, zipped);
                p.apply1(red, mapped)
            });
            let row_map = p.map(per_point);
            let grid_map = p.map(row_map);
            let pad = p.pad2d(1usize, 1usize, PadMode::Clamp);
            let s2 = p.slide2d(3usize, 1usize);
            let padded = p.apply1(pad, params[0]);
            let neighbourhoods = p.apply1(s2, padded);
            p.apply1(grid_map, neighbourhoods)
        },
    );
    p
}

/// Host reference: one Jacobi update over the flattened row-major grid with clamped
/// boundaries.
pub fn host_reference(grid: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(grid.len(), rows * cols);
    let at = |r: i64, c: i64| {
        let r = r.clamp(0, rows as i64 - 1) as usize;
        let c = c.clamp(0, cols as i64 - 1) as usize;
        grid[r * cols + c]
    };
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows as i64 {
        for c in 0..cols as i64 {
            out.push(0.2 * (at(r, c) + at(r - 1, c) + at(r + 1, c) + at(r, c - 1) + at(r, c + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_floats;
    use lift_interp::{evaluate, Value};

    #[test]
    fn interpreter_matches_the_host_reference() {
        let (rows, cols) = (6, 9);
        let grid = random_floats(11, rows * cols, -1.0, 1.0);
        let p = high_level_program(rows, cols);
        let out = evaluate(
            &p,
            &[
                Value::from_f32_matrix(&grid, rows, cols),
                Value::from_f32_slice(&WEIGHTS),
            ],
        )
        .expect("interpreter runs")
        .flatten_f32();
        let expected = host_reference(&grid, rows, cols);
        assert_eq!(out.len(), expected.len());
        for (i, (a, e)) in out.iter().zip(&expected).enumerate() {
            assert!(
                (a - e).abs() < 1e-4 * (1.0 + e.abs()),
                "point {i}: {a} vs {e}"
            );
        }
    }

    #[test]
    fn program_is_high_level() {
        assert!(high_level_program(4, 4)
            .first_high_level_pattern()
            .is_some());
    }
}
