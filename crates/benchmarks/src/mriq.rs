//! MRI-Q (Table 1: MRI-Q, from Parboil).
//!
//! This reproduces the `ComputePhiMag` kernel of the Parboil MRI-Q benchmark: for every
//! k-space sample the magnitude `phiR² + phiI²` is computed from the real and imaginary
//! parts. Like NN it is a pure streaming kernel, used in the paper to show that trivial
//! programs lose nothing by going through the Lift pipeline.

use lift_arith::ArithExpr;
use lift_ir::{Program, ScalarExpr, Type, UserFun};
use lift_ocl::{CExpr, CStmt, Kernel};
use lift_vgpu::{KernelArg, LaunchConfig};

use crate::refs;
use crate::workload::random_floats;
use crate::{BenchmarkCase, BenchmarkInfo, ProblemSize};

fn samples(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Small => 8192,
        ProblemSize::Large => 32768,
    }
}

/// `phiMag((r, i)) = r*r + i*i`.
pub fn phi_mag() -> UserFun {
    let r = || ScalarExpr::param(0).get(0);
    let i = || ScalarExpr::param(0).get(1);
    UserFun::new(
        "computePhiMag",
        vec![("phi", Type::pair(Type::float(), Type::float()))],
        Type::float(),
        r().mul(r()).add(i().mul(i())),
    )
    .expect("well-formed")
}

/// Host reference.
pub fn host_reference(phi_r: &[f32], phi_i: &[f32]) -> Vec<f32> {
    phi_r
        .iter()
        .zip(phi_i)
        .map(|(r, i)| r * r + i * i)
        .collect()
}

/// The Lift program: `mapGlb(phiMag) . zip(phiR, phiI)`.
pub fn lift_program(n: usize) -> Program {
    let mut p = Program::new("mriq_phimag");
    let f = p.user_fun(phi_mag());
    let m = p.map_glb(0, f);
    let z = p.zip2();
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            ("phiR", Type::array(Type::float(), n_expr.clone())),
            ("phiI", Type::array(Type::float(), n_expr)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            p.apply1(m, zipped)
        },
    );
    p
}

/// Hand-written reference kernel (as in Parboil).
fn reference_kernel() -> Kernel {
    let gid = CExpr::global_id(0);
    let body = vec![
        refs::decl_float("r", CExpr::var("phiR").at(gid.clone())),
        refs::decl_float("i", CExpr::var("phiI").at(gid.clone())),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::var("r")
                .mul(CExpr::var("r"))
                .add(CExpr::var("i").mul(CExpr::var("i"))),
        },
    ];
    Kernel {
        name: "mriq_ref".into(),
        params: vec![
            refs::input("phiR"),
            refs::input("phiI"),
            refs::output("out"),
        ],
        body,
    }
}

/// The MRI-Q benchmark case.
pub fn case(size: ProblemSize) -> BenchmarkCase {
    let n = samples(size);
    let phi_r = random_floats(51, n, -1.0, 1.0);
    let phi_i = random_floats(52, n, -1.0, 1.0);
    let expected = host_reference(&phi_r, &phi_i);
    let kernel = reference_kernel();
    let reference_kernel_name = kernel.name.clone();
    BenchmarkCase {
        info: BenchmarkInfo {
            name: "MRI-Q",
            source: "Parboil",
            local_memory: false,
            private_memory: false,
            vectorisation: false,
            coalescing: true,
            iteration_space: "1D",
            opencl_loc_paper: 41,
            high_level_loc_paper: 43,
            low_level_loc_paper: 43,
        },
        size,
        program: lift_program(n),
        inputs: vec![phi_r.clone(), phi_i.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d1(n, 128),
        reference_module: refs::module(kernel),
        reference_kernel: reference_kernel_name,
        reference_args: vec![
            KernelArg::Buffer(phi_r),
            KernelArg::Buffer(phi_i),
            KernelArg::zeros(n),
        ],
        reference_output_buffer: 2,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_interp::{evaluate, Value};

    #[test]
    fn interpreter_matches_host_reference() {
        let r = random_floats(1, 64, -1.0, 1.0);
        let i = random_floats(2, 64, -1.0, 1.0);
        let out = evaluate(
            &lift_program(64),
            &[Value::from_f32_slice(&r), Value::from_f32_slice(&i)],
        )
        .unwrap()
        .flatten_f32();
        for (a, e) in out.iter().zip(&host_reference(&r, &i)) {
            assert!((a - e).abs() < 1e-4);
        }
    }
}
