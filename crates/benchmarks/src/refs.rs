//! Small helpers for writing the hand-written reference kernels.
//!
//! The reference kernels stand in for the manually optimised OpenCL implementations the paper
//! compares against (NVIDIA SDK, AMD SDK, SHOC, Rodinia, Parboil, CLBlast). They are written
//! directly as `lift-ocl` ASTs in the style a GPU programmer would write them: flat indices
//! without divisions, coalesced accesses, explicit local-memory staging where the original
//! uses it.

use lift_ocl::{AddrSpace, CExpr, CStmt, CType, Kernel, KernelParam, Module};

/// A `const restrict global float *` input parameter.
pub(crate) fn input(name: &str) -> KernelParam {
    KernelParam {
        name: name.into(),
        ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
    }
}

/// A `global float *` output parameter.
pub(crate) fn output(name: &str) -> KernelParam {
    KernelParam {
        name: name.into(),
        ty: CType::pointer(CType::Float, AddrSpace::Global),
    }
}

/// An `int` parameter.
pub(crate) fn int_param(name: &str) -> KernelParam {
    KernelParam {
        name: name.into(),
        ty: CType::Int,
    }
}

/// Declares a private `float` variable with an initial value.
pub(crate) fn decl_float(name: &str, init: CExpr) -> CStmt {
    CStmt::Decl {
        ty: CType::Float,
        name: name.into(),
        addr: None,
        array_len: None,
        init: Some(init),
    }
}

/// A counted `for` loop from 0 to `bound` (exclusive) with step 1.
pub(crate) fn for_loop(var: &str, bound: CExpr, body: Vec<CStmt>) -> CStmt {
    CStmt::For {
        var: var.into(),
        init: CExpr::int(0),
        cond: CExpr::var(var).lt(bound),
        step: CExpr::int(1),
        body,
    }
}

/// Wraps a single kernel into a module.
pub(crate) fn module(kernel: Kernel) -> Module {
    let mut m = Module::new();
    m.kernels.push(kernel);
    m
}
