//! The partial dot product of Listing 1 — the paper's running example.
//!
//! This is not one of the Table 1 benchmarks, but it is the program whose generated kernel the
//! paper shows in Figure 7, so it is used by the `figure7` binary, by the quickstart example
//! and throughout the test-suite.

use lift_arith::ArithExpr;
use lift_ir::{Program, Type, UserFun};

/// Builds the Listing 1 partial dot product for input length `n` (a multiple of 128).
///
/// Each work group reduces a chunk of 128 elements: a first pass multiplies pairs and reduces
/// two elements into local memory, an `iterate 6` tree-reduction finishes the chunk, and the
/// result is copied back to global memory.
pub fn lift_program(n: usize) -> Program {
    assert!(
        n.is_multiple_of(128),
        "the Listing 1 kernel processes chunks of 128 elements"
    );
    let mut p = Program::new("partialDot");
    let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
    let add = p.user_fun(UserFun::add());

    // Step 1: split 2 . mapLcl(toLocal(mapSeq(id)) . reduceSeq(multAndSumUp, 0)) . join
    let red1 = p.reduce_seq(mult_add, 0.0);
    let copy_l1 = p.copy_to_local();
    let step1_f = p.compose(&[copy_l1, red1]);
    let step1_map = p.map_lcl(0, step1_f);
    let s2a = p.split(2usize);
    let j1 = p.join();
    let step1 = p.compose(&[j1, step1_map, s2a]);

    // Step 2: iterate 6 (join . mapLcl(toLocal(mapSeq(id)) . reduceSeq(add, 0)) . split 2)
    let red2 = p.reduce_seq(add, 0.0);
    let copy_l2 = p.copy_to_local();
    let step2_f = p.compose(&[copy_l2, red2]);
    let step2_map = p.map_lcl(0, step2_f);
    let s2b = p.split(2usize);
    let j2 = p.join();
    let iter_body = p.compose(&[j2, step2_map, s2b]);
    let step2 = p.iterate(6, iter_body);

    // Step 3: join . toGlobal(mapLcl(mapSeq(id))) . split 1
    let copy_g = p.copy_to_global();
    let m_copy = p.map_lcl(0, copy_g);
    let s1 = p.split(1usize);
    let j3 = p.join();
    let step3 = p.compose(&[j3, m_copy, s1]);

    let wg_body = p.compose(&[step3, step2, step1]);
    let wg = p.map_wrg(0, wg_body);
    let s128 = p.split(128usize);
    let jout = p.join();
    let z = p.zip2();
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            ("x", Type::array(Type::float(), n_expr.clone())),
            ("y", Type::array(Type::float(), n_expr)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            let split = p.apply1(s128, zipped);
            let mapped = p.apply1(wg, split);
            p.apply1(jout, mapped)
        },
    );
    p
}

/// Builds the *high-level* partial dot product — Listing 1 before any implementation
/// choices are made: `join ∘ map(reduce(add, 0)) ∘ split 128 ∘ map(mult) ∘ zip`.
///
/// This is the input program of the rewrite-based derivation: it contains only the
/// backend-agnostic `map`/`reduce` patterns, and `lift-rewrite` explores the rule space to
/// lower it to OpenCL-specific variants (of which [`lift_program`] is a hand-derived one).
pub fn high_level_program(n: usize) -> Program {
    assert!(
        n.is_multiple_of(128),
        "the Listing 1 kernel processes chunks of 128 elements"
    );
    let mut p = Program::new("partial_dot");
    let mult = p.user_fun(UserFun::mult_pair());
    let add = p.user_fun(UserFun::add());
    let m1 = p.map(mult);
    let red = p.reduce(add, 0.0);
    let m2 = p.map(red);
    let s = p.split(128usize);
    let j = p.join();
    let z = p.zip2();
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            ("x", Type::array(Type::float(), n_expr.clone())),
            ("y", Type::array(Type::float(), n_expr)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            let mapped = p.apply1(m1, zipped);
            let split = p.apply1(s, mapped);
            let outer = p.apply1(m2, split);
            p.apply1(j, outer)
        },
    );
    p
}

/// Host reference: the per-work-group partial sums.
pub fn host_reference(x: &[f32], y: &[f32]) -> Vec<f32> {
    x.chunks(128)
        .zip(y.chunks(128))
        .map(|(xs, ys)| xs.iter().zip(ys).map(|(a, b)| a * b).sum())
        .collect()
}

/// Builds the *high-level full* dot product: the partial sums of
/// [`high_level_program`] reduced once more to a single value —
/// `reduce(add, 0) ∘ join ∘ map(reduce(add, 0)) ∘ split 128 ∘ map(mult) ∘ zip`.
///
/// Unlike the partial dot product, this program cannot execute as one kernel with
/// device-wide parallelism: the final reduction consumes partial sums produced by *all*
/// work items, which needs a device-wide synchronisation point. Lowering it therefore
/// either serialises everything into one sequential kernel or derives the paper's
/// two-stage schedule — `mapGlb` partial sums staged in global memory (`toGlobal`) feeding
/// a second kernel-level reduce — which `lift-codegen` compiles to a *sequence* of kernels.
pub fn high_level_full_program(n: usize) -> Program {
    assert!(
        n.is_multiple_of(128),
        "the Listing 1 kernel processes chunks of 128 elements"
    );
    let mut p = Program::new("full_dot");
    let mult = p.user_fun(UserFun::mult_pair());
    let add = p.user_fun(UserFun::add());
    let m1 = p.map(mult);
    let red = p.reduce(add, 0.0);
    let m2 = p.map(red);
    let red_out = p.reduce(add, 0.0);
    let s = p.split(128usize);
    let j = p.join();
    let z = p.zip2();
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            ("x", Type::array(Type::float(), n_expr.clone())),
            ("y", Type::array(Type::float(), n_expr)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            let mapped = p.apply1(m1, zipped);
            let split = p.apply1(s, mapped);
            let outer = p.apply1(m2, split);
            let joined = p.apply1(j, outer);
            p.apply1(red_out, joined)
        },
    );
    p
}

/// Builds the hand-lowered *two-stage* full dot product: stage 1 computes per-chunk
/// partial sums with `mapGlb(toGlobal(reduceSeq(multAndSumUp, 0)))` — each work item
/// publishes its partial result to global memory — and stage 2 reduces the partial sums
/// with a kernel-level `reduceSeq(add, 0)`.
///
/// `lift-codegen` compiles this to two kernels sharing one global temporary; the kernel
/// boundary is the device-wide synchronisation between the stages. The same schedule is
/// derived automatically from [`high_level_full_program`] by the `lift-rewrite`
/// exploration.
pub fn two_stage_program(n: usize) -> Program {
    assert!(
        n.is_multiple_of(128),
        "the Listing 1 kernel processes chunks of 128 elements"
    );
    let mut p = Program::new("two_stage_dot");
    let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
    let add = p.user_fun(UserFun::add());
    let red1 = p.reduce_seq(mult_add, 0.0);
    let red1_global = p.to_global(red1);
    let glb = p.map_glb(0, red1_global);
    let red2 = p.reduce_seq(add, 0.0);
    let s = p.split(128usize);
    let j = p.join();
    let z = p.zip2();
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            ("x", Type::array(Type::float(), n_expr.clone())),
            ("y", Type::array(Type::float(), n_expr)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            let split = p.apply1(s, zipped);
            let partials = p.apply1(glb, split);
            let joined = p.apply1(j, partials);
            p.apply1(red2, joined)
        },
    );
    p
}

/// Host reference for the full dot product: a single scalar (as a 1-element vector, the
/// shape of a Lift `reduce` result).
pub fn host_full_reference(x: &[f32], y: &[f32]) -> Vec<f32> {
    vec![host_reference(x, y).iter().sum()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_floats;
    use lift_interp::{evaluate, Value};

    #[test]
    fn interpreter_matches_the_host_reference() {
        let n = 256;
        let x = random_floats(1, n, -1.0, 1.0);
        let y = random_floats(2, n, -1.0, 1.0);
        let p = lift_program(n);
        let out = evaluate(&p, &[Value::from_f32_slice(&x), Value::from_f32_slice(&y)])
            .expect("interpreter runs")
            .flatten_f32();
        let expected = host_reference(&x, &y);
        assert_eq!(out.len(), expected.len());
        for (a, e) in out.iter().zip(&expected) {
            assert!((a - e).abs() < 1e-3, "{a} vs {e}");
        }
    }

    #[test]
    #[should_panic(expected = "chunks of 128")]
    fn length_must_be_a_multiple_of_128() {
        lift_program(100);
    }

    #[test]
    fn full_dot_interpreter_matches_the_host_reference() {
        let n = 256;
        let x = random_floats(3, n, -1.0, 1.0);
        let y = random_floats(4, n, -1.0, 1.0);
        let expected = host_full_reference(&x, &y);
        for p in [high_level_full_program(n), two_stage_program(n)] {
            let out = evaluate(&p, &[Value::from_f32_slice(&x), Value::from_f32_slice(&y)])
                .expect("interpreter runs")
                .flatten_f32();
            assert_eq!(out.len(), 1);
            assert!(
                (out[0] - expected[0]).abs() < 1e-2,
                "{} vs {}",
                out[0],
                expected[0]
            );
        }
    }
}
