//! K-Means distance computation (Table 1: K-Means, from Rodinia).
//!
//! For every point the kernel computes the squared distance to the closest of `C` cluster
//! centroids (the membership step of K-Means). The output is the minimal distance per point;
//! the original Rodinia kernel additionally records the index, which does not change the
//! memory or compute behaviour being measured.

use lift_arith::ArithExpr;
use lift_ir::{Program, ScalarExpr, Type, UserFun};
use lift_ocl::{CExpr, CStmt, Kernel};
use lift_vgpu::{KernelArg, LaunchConfig};

use crate::refs;
use crate::workload::random_floats;
use crate::{BenchmarkCase, BenchmarkInfo, ProblemSize};

/// Number of cluster centroids.
pub const CLUSTERS: usize = 8;

fn points(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Small => 4096,
        ProblemSize::Large => 16384,
    }
}

/// `minDist(acc, c, p) = min(acc, (c - p)²)`.
pub fn min_dist() -> UserFun {
    let d = || ScalarExpr::param(1).sub(ScalarExpr::param(2));
    UserFun::new(
        "minDist",
        vec![
            ("acc", Type::float()),
            ("c", Type::float()),
            ("p", Type::float()),
        ],
        Type::float(),
        ScalarExpr::param(0).min(d().mul(d())),
    )
    .expect("well-formed")
}

/// Host reference.
pub fn host_reference(points: &[f32], centroids: &[f32]) -> Vec<f32> {
    points
        .iter()
        .map(|p| {
            centroids
                .iter()
                .map(|c| (c - p) * (c - p))
                .fold(f32::INFINITY, f32::min)
        })
        .collect()
}

/// The Lift program: one global work item per point, sequential reduction over the centroids.
pub fn lift_program(n: usize, clusters: usize) -> Program {
    let mut p = Program::new("kmeans");
    let mind = p.user_fun(min_dist());
    let n_expr = ArithExpr::cst(n as i64);
    let c_expr = ArithExpr::cst(clusters as i64);
    p.with_root(
        vec![
            ("points", Type::array(Type::float(), n_expr)),
            ("centroids", Type::array(Type::float(), c_expr)),
        ],
        |p, params| {
            let centroids = params[1];
            let per_point = p.lambda(&["pt"], |p, lp| {
                let pt = lp[0];
                let red_f = p.lambda(&["acc", "c"], |p, rp| p.apply(mind, [rp[0], rp[1], pt]));
                let reduce = p.reduce_seq_pattern(red_f);
                let init = p.literal_f32(3.0e38);
                p.apply(reduce, [init, centroids])
            });
            let m = p.map_glb(0, per_point);
            let j = p.join();
            let mapped = p.apply1(m, params[0]);
            p.apply1(j, mapped)
        },
    );
    p
}

/// Hand-written reference kernel (per-thread loop over the centroids, as in Rodinia).
fn reference_kernel() -> Kernel {
    let gid = CExpr::global_id(0);
    let body = vec![
        refs::decl_float("p", CExpr::var("points").at(gid.clone())),
        refs::decl_float("best", CExpr::float(3.0e38)),
        refs::for_loop(
            "c",
            CExpr::int(CLUSTERS as i64),
            vec![
                refs::decl_float(
                    "d",
                    CExpr::var("centroids")
                        .at(CExpr::var("c"))
                        .sub(CExpr::var("p")),
                ),
                CStmt::Assign {
                    lhs: CExpr::var("best"),
                    rhs: CExpr::Call(
                        "fmin".into(),
                        vec![CExpr::var("best"), CExpr::var("d").mul(CExpr::var("d"))],
                    ),
                },
            ],
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::var("best"),
        },
    ];
    Kernel {
        name: "kmeans_ref".into(),
        params: vec![
            refs::input("points"),
            refs::input("centroids"),
            refs::output("out"),
        ],
        body,
    }
}

/// The K-Means benchmark case.
pub fn case(size: ProblemSize) -> BenchmarkCase {
    let n = points(size);
    let pts = random_floats(31, n, -4.0, 4.0);
    let centroids = random_floats(32, CLUSTERS, -4.0, 4.0);
    let expected = host_reference(&pts, &centroids);
    let kernel = reference_kernel();
    let reference_kernel_name = kernel.name.clone();
    BenchmarkCase {
        info: BenchmarkInfo {
            name: "K-Means",
            source: "Rodinia",
            local_memory: false,
            private_memory: false,
            vectorisation: false,
            coalescing: false,
            iteration_space: "1D",
            opencl_loc_paper: 32,
            high_level_loc_paper: 25,
            low_level_loc_paper: 25,
        },
        size,
        program: lift_program(n, CLUSTERS),
        inputs: vec![pts.clone(), centroids.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d1(n, 128),
        reference_module: refs::module(kernel),
        reference_kernel: reference_kernel_name,
        reference_args: vec![
            KernelArg::Buffer(pts),
            KernelArg::Buffer(centroids),
            KernelArg::zeros(n),
        ],
        reference_output_buffer: 2,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_interp::{evaluate, Value};

    #[test]
    fn interpreter_matches_host_reference() {
        let pts = random_floats(1, 64, -4.0, 4.0);
        let cs = random_floats(2, CLUSTERS, -4.0, 4.0);
        let out = evaluate(
            &lift_program(64, CLUSTERS),
            &[Value::from_f32_slice(&pts), Value::from_f32_slice(&cs)],
        )
        .unwrap()
        .flatten_f32();
        let expected = host_reference(&pts, &cs);
        for (a, e) in out.iter().zip(&expected) {
            assert!((a - e).abs() < 1e-3 * (1.0 + e.abs()));
        }
    }
}
