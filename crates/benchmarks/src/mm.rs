//! Matrix multiplication (Table 1: MM, CLBlast-style AMD and NVIDIA mappings).
//!
//! Both variants compute `C = A·B` with a two-dimensional iteration space:
//!
//! * **AMD** — every global work item computes one element of `C`, reading its row of `A`
//!   straight from global memory (the original CLBlast AMD configuration does not tile in
//!   local memory).
//! * **NVIDIA** — the row of `A` is first staged in *private* memory (`toPrivate`) before the
//!   inner loop over the columns of `B`, mirroring the register blocking of the CLBlast
//!   NVIDIA configuration. (The original additionally tiles in local memory and vectorises;
//!   this reproduction keeps the register-blocking dimension and documents the rest.)

use lift_arith::ArithExpr;
use lift_ir::{Program, Type, UserFun};
use lift_ocl::{CExpr, CStmt, Kernel};
use lift_vgpu::{KernelArg, LaunchConfig};

use crate::refs;
use crate::workload::random_matrix;
use crate::{BenchmarkCase, BenchmarkInfo, ProblemSize};

fn dim(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Small => 32,
        ProblemSize::Large => 48,
    }
}

/// Transposes a `rows x cols` matrix the way the paper expresses it (Section 3.2):
/// `split rows . gather(stride rows) . join`, rather than with a built-in transpose. The
/// gather introduces the division/modulo-laden indices that only the array-access
/// simplification of Section 5.3 can clean up.
fn gather_transpose(p: &mut Program, matrix: lift_ir::ExprId, rows: usize) -> lift_ir::ExprId {
    let j = p.join();
    let g = p.gather(lift_ir::Reorder::Stride(ArithExpr::cst(rows as i64)));
    let s = p.split(rows);
    let joined = p.apply1(j, matrix);
    let gathered = p.apply1(g, joined);
    p.apply1(s, gathered)
}

/// Host reference: `C = A·B` with `A` of shape `m×k` and `B` of shape `k×n`.
pub fn host_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// The AMD-style Lift program: 2D `mapGlb` with the dot product over `zip(arow, bcol)`.
pub fn amd_lift_program(m: usize, k: usize, n: usize) -> Program {
    let mut p = Program::new("mm_amd");
    let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
    let m_expr = ArithExpr::cst(m as i64);
    let k_expr = ArithExpr::cst(k as i64);
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            (
                "A",
                Type::array(Type::array(Type::float(), k_expr.clone()), m_expr),
            ),
            ("B", Type::array(Type::array(Type::float(), n_expr), k_expr)),
        ],
        |p, params| {
            let b = params[1];
            let per_row = p.lambda(&["arow"], |p, row_params| {
                let arow = row_params[0];
                let per_col = p.lambda(&["bcol"], |p, col_params| {
                    let z = p.zip2();
                    let zipped = p.apply(z, [arow, col_params[0]]);
                    let red = p.reduce_seq_pattern(mult_add);
                    let init = p.literal_f32(0.0);
                    p.apply(red, [init, zipped])
                });
                let inner = p.map_glb(1, per_col);
                let j = p.join();
                let bt = gather_transpose(p, b, k);
                let mapped = p.apply1(inner, bt);
                p.apply1(j, mapped)
            });
            let outer = p.map_glb(0, per_row);
            p.apply1(outer, params[0])
        },
    );
    p
}

/// The NVIDIA-style Lift program: like the AMD mapping but the row of `A` is copied into
/// private memory (register blocking) before the inner loop.
pub fn nvidia_lift_program(m: usize, k: usize, n: usize) -> Program {
    let mut p = Program::new("mm_nvidia");
    let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
    let m_expr = ArithExpr::cst(m as i64);
    let k_expr = ArithExpr::cst(k as i64);
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            (
                "A",
                Type::array(Type::array(Type::float(), k_expr.clone()), m_expr),
            ),
            ("B", Type::array(Type::array(Type::float(), n_expr), k_expr)),
        ],
        |p, params| {
            let b = params[1];
            let per_row = p.lambda(&["arow"], |p, row_params| {
                // Register-block the row of A: copy it to private memory first.
                let idf = p.user_fun(UserFun::id_float());
                let copy_seq = p.map_seq(idf);
                let to_priv = p.to_private(copy_seq);
                let arow_priv = p.apply1(to_priv, row_params[0]);
                let with_private_row = p.lambda(&["arowp"], |p, priv_params| {
                    let arowp = priv_params[0];
                    let per_col = p.lambda(&["bcol"], |p, col_params| {
                        let z = p.zip2();
                        let zipped = p.apply(z, [arowp, col_params[0]]);
                        let red = p.reduce_seq_pattern(mult_add);
                        let init = p.literal_f32(0.0);
                        p.apply(red, [init, zipped])
                    });
                    let inner = p.map_glb(1, per_col);
                    let j = p.join();
                    let bt = gather_transpose(p, b, k);
                    let mapped = p.apply1(inner, bt);
                    p.apply1(j, mapped)
                });
                p.apply1(with_private_row, arow_priv)
            });
            let outer = p.map_glb(0, per_row);
            p.apply1(outer, params[0])
        },
    );
    p
}

/// The *high-level* matrix multiplication — the paper's Section 3 expression before any
/// implementation choices: `A ↦ map(λarow. join(map(λbcol. reduce(add, 0) ∘ map(×) ∘
/// zip(arow, bcol))(transpose B)))(A)`.
///
/// It contains only backend-agnostic `map`/`reduce` patterns; `lift-rewrite` lowers it (and
/// `lift-tuner` searches the parameter space) to OpenCL variants such as
/// [`amd_lift_program`]/[`nvidia_lift_program`].
pub fn high_level_program(m: usize, k: usize, n: usize) -> Program {
    let mut p = Program::new("mm");
    let mult = p.user_fun(UserFun::mult_pair());
    let add = p.user_fun(UserFun::add());
    let m_expr = ArithExpr::cst(m as i64);
    let k_expr = ArithExpr::cst(k as i64);
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            (
                "A",
                Type::array(Type::array(Type::float(), k_expr.clone()), m_expr),
            ),
            ("B", Type::array(Type::array(Type::float(), n_expr), k_expr)),
        ],
        |p, params| {
            let b = params[1];
            let per_row = p.lambda(&["arow"], |p, row_params| {
                let arow = row_params[0];
                let per_col = p.lambda(&["bcol"], |p, col_params| {
                    let z = p.zip2();
                    let zipped = p.apply(z, [arow, col_params[0]]);
                    let products = p.map(mult);
                    let mapped = p.apply1(products, zipped);
                    let red = p.reduce(add, 0.0);
                    p.apply1(red, mapped)
                });
                let inner = p.map(per_col);
                let t = p.transpose();
                let j = p.join();
                let bt = p.apply1(t, b);
                let cols = p.apply1(inner, bt);
                p.apply1(j, cols)
            });
            let outer = p.map(per_row);
            p.apply1(outer, params[0])
        },
    );
    p
}

/// Hand-written reference kernel: one output element per (2D) work item, flat indexing.
fn reference_kernel(name: &str) -> Kernel {
    let row = CExpr::global_id(0);
    let col = CExpr::global_id(1);
    let body = vec![
        refs::decl_float("acc", CExpr::float(0.0)),
        refs::for_loop(
            "kk",
            CExpr::var("K"),
            vec![CStmt::Assign {
                lhs: CExpr::var("acc"),
                rhs: CExpr::var("acc").add(
                    CExpr::var("A")
                        .at(row.clone().mul(CExpr::var("K")).add(CExpr::var("kk")))
                        .mul(
                            CExpr::var("B")
                                .at(CExpr::var("kk").mul(CExpr::var("N")).add(col.clone())),
                        ),
                ),
            }],
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(row.mul(CExpr::var("N")).add(col)),
            rhs: CExpr::var("acc"),
        },
    ];
    Kernel {
        name: name.into(),
        params: vec![
            refs::input("A"),
            refs::input("B"),
            refs::output("out"),
            refs::int_param("K"),
            refs::int_param("N"),
        ],
        body,
    }
}

fn build_case(size: ProblemSize, nvidia: bool) -> BenchmarkCase {
    let d = dim(size);
    let (m, k, n) = (d, d, d);
    let a = random_matrix(81, m, k, -1.0, 1.0);
    let b = random_matrix(82, k, n, -1.0, 1.0);
    let expected = host_reference(&a, &b, m, k, n);
    let (program, info, kernel_name) = if nvidia {
        (
            nvidia_lift_program(m, k, n),
            BenchmarkInfo {
                name: "MM (NVIDIA)",
                source: "CLBlast",
                local_memory: true,
                private_memory: true,
                vectorisation: true,
                coalescing: true,
                iteration_space: "2D",
                opencl_loc_paper: 768,
                high_level_loc_paper: 17,
                low_level_loc_paper: 65,
            },
            "mm_nvidia_ref",
        )
    } else {
        (
            amd_lift_program(m, k, n),
            BenchmarkInfo {
                name: "MM (AMD)",
                source: "CLBlast",
                local_memory: false,
                private_memory: true,
                vectorisation: true,
                coalescing: true,
                iteration_space: "2D",
                opencl_loc_paper: 768,
                high_level_loc_paper: 17,
                low_level_loc_paper: 38,
            },
            "mm_amd_ref",
        )
    };
    let kernel = reference_kernel(kernel_name);
    let reference_kernel = kernel.name.clone();
    BenchmarkCase {
        info,
        size,
        program,
        inputs: vec![a.clone(), b.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d2((m, n), (8, 8)),
        reference_module: refs::module(kernel),
        reference_kernel,
        reference_args: vec![
            KernelArg::Buffer(a),
            KernelArg::Buffer(b),
            KernelArg::zeros(m * n),
            KernelArg::Int(k as i64),
            KernelArg::Int(n as i64),
        ],
        reference_output_buffer: 2,
        expected,
    }
}

/// The CLBlast-AMD-style benchmark case.
pub fn amd_case(size: ProblemSize) -> BenchmarkCase {
    build_case(size, false)
}

/// The CLBlast-NVIDIA-style benchmark case.
pub fn nvidia_case(size: ProblemSize) -> BenchmarkCase {
    build_case(size, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_interp::{evaluate, Value};

    #[test]
    fn lift_programs_match_the_host_reference() {
        let (m, k, n) = (6, 8, 10);
        let a = random_matrix(1, m, k, -1.0, 1.0);
        let b = random_matrix(2, k, n, -1.0, 1.0);
        let expected = host_reference(&a, &b, m, k, n);
        for program in [
            amd_lift_program(m, k, n),
            nvidia_lift_program(m, k, n),
            high_level_program(m, k, n),
        ] {
            let out = evaluate(
                &program,
                &[
                    Value::from_f32_matrix(&a, m, k),
                    Value::from_f32_matrix(&b, k, n),
                ],
            )
            .unwrap()
            .flatten_f32();
            for (o, e) in out.iter().zip(&expected) {
                assert!((o - e).abs() < 1e-3 * (1.0 + e.abs()), "{o} vs {e}");
            }
        }
    }
}
