//! Molecular dynamics (Table 1: MD, from the SHOC suite).
//!
//! Each particle accumulates a Lennard-Jones-style force contribution from every other
//! particle that lies within a cutoff radius. As for N-Body, particles live on a line; the
//! cutoff test exercises the `Select` (conditional) form of user functions, which the original
//! SHOC kernel also relies on (it skips non-neighbours).

use lift_arith::ArithExpr;
use lift_ir::{Program, ScalarExpr, Type, UserFun};
use lift_ocl::{CExpr, CStmt, Kernel};
use lift_vgpu::{KernelArg, LaunchConfig};

use crate::refs;
use crate::workload::random_floats;
use crate::{BenchmarkCase, BenchmarkInfo, ProblemSize};

/// Cutoff distance (squared) of the interaction.
pub const CUTOFF_SQ: f32 = 0.25;

fn particles(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Small => 256,
        ProblemSize::Large => 512,
    }
}

/// The Lennard-Jones-style user function with a cutoff:
/// `acc + (r² < cutoff ? (1/r⁶ - 1/r¹²) * d : 0)` with `d = p_j - p_i`, `r² = d² + ε`.
pub fn lj_interaction() -> UserFun {
    let d = || ScalarExpr::param(1).sub(ScalarExpr::param(2));
    let r2 = || d().mul(d()).add(ScalarExpr::cf(0.01));
    let r6 = || r2().mul(r2()).mul(r2());
    let force = ScalarExpr::cf(1.0)
        .div(r6())
        .sub(ScalarExpr::cf(1.0).div(r6().mul(r6())))
        .mul(d());
    let within = ScalarExpr::Bin(
        lift_ir::BinOp::Lt,
        Box::new(r2()),
        Box::new(ScalarExpr::cf(f64::from(CUTOFF_SQ))),
    );
    UserFun::new(
        "ljInteraction",
        vec![
            ("acc", Type::float()),
            ("pj", Type::float()),
            ("pi", Type::float()),
        ],
        Type::float(),
        ScalarExpr::param(0).add(ScalarExpr::Select(
            Box::new(within),
            Box::new(force),
            Box::new(ScalarExpr::cf(0.0)),
        )),
    )
    .expect("well-formed")
}

fn lj_host(pi: f32, pj: f32) -> f32 {
    let d = pj - pi;
    let r2 = d * d + 0.01;
    if r2 < CUTOFF_SQ {
        let r6 = r2 * r2 * r2;
        (1.0 / r6 - 1.0 / (r6 * r6)) * d
    } else {
        0.0
    }
}

/// Host reference.
pub fn host_reference(positions: &[f32]) -> Vec<f32> {
    positions
        .iter()
        .map(|pi| positions.iter().map(|pj| lj_host(*pi, *pj)).sum())
        .collect()
}

/// The Lift program: a flat global map with a sequential reduction per particle.
pub fn lift_program(n: usize) -> Program {
    let mut p = Program::new("md");
    let interact = p.user_fun(lj_interaction());
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![("pos", Type::array(Type::float(), n_expr))],
        |p, params| {
            let positions = params[0];
            let per_particle = p.lambda(&["pi"], |p, lp| {
                let pi = lp[0];
                let red_f = p.lambda(&["acc", "pj"], |p, rp| {
                    p.apply(interact, [rp[0], rp[1], pi])
                });
                let reduce = p.reduce_seq_pattern(red_f);
                let init = p.literal_f32(0.0);
                p.apply(reduce, [init, positions])
            });
            let m = p.map_glb(0, per_particle);
            let j = p.join();
            let mapped = p.apply1(m, positions);
            p.apply1(j, mapped)
        },
    );
    p
}

/// Hand-written reference kernel (per-thread loop, as in SHOC).
fn reference_kernel() -> Kernel {
    let gid = CExpr::global_id(0);
    let r2 = CExpr::var("d").mul(CExpr::var("d")).add(CExpr::float(0.01));
    let body = vec![
        refs::decl_float("pi", CExpr::var("pos").at(gid.clone())),
        refs::decl_float("acc", CExpr::float(0.0)),
        refs::for_loop(
            "j",
            CExpr::var("N"),
            vec![
                refs::decl_float(
                    "d",
                    CExpr::var("pos").at(CExpr::var("j")).sub(CExpr::var("pi")),
                ),
                refs::decl_float("r2", r2),
                refs::decl_float(
                    "r6",
                    CExpr::var("r2").mul(CExpr::var("r2")).mul(CExpr::var("r2")),
                ),
                CStmt::If {
                    cond: CExpr::var("r2").lt(CExpr::float(f64::from(CUTOFF_SQ))),
                    then: vec![CStmt::Assign {
                        lhs: CExpr::var("acc"),
                        rhs: CExpr::var("acc").add(
                            CExpr::float(1.0)
                                .div(CExpr::var("r6"))
                                .sub(CExpr::float(1.0).div(CExpr::var("r6").mul(CExpr::var("r6"))))
                                .mul(CExpr::var("d")),
                        ),
                    }],
                    otherwise: None,
                },
            ],
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::var("acc"),
        },
    ];
    Kernel {
        name: "md_ref".into(),
        params: vec![
            refs::input("pos"),
            refs::output("out"),
            refs::int_param("N"),
        ],
        body,
    }
}

/// The MD benchmark case.
pub fn case(size: ProblemSize) -> BenchmarkCase {
    let n = particles(size);
    let positions = random_floats(23, n, -2.0, 2.0);
    let expected = host_reference(&positions);
    let kernel = reference_kernel();
    let reference_kernel_name = kernel.name.clone();
    BenchmarkCase {
        info: BenchmarkInfo {
            name: "MD",
            source: "SHOC",
            local_memory: false,
            private_memory: true,
            vectorisation: false,
            coalescing: true,
            iteration_space: "1D",
            opencl_loc_paper: 50,
            high_level_loc_paper: 34,
            low_level_loc_paper: 34,
        },
        size,
        program: lift_program(n),
        inputs: vec![positions.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d1(n, 64),
        reference_module: refs::module(kernel),
        reference_kernel: reference_kernel_name,
        reference_args: vec![
            KernelArg::Buffer(positions),
            KernelArg::zeros(n),
            KernelArg::Int(n as i64),
        ],
        reference_output_buffer: 1,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_interp::{evaluate, Value};

    #[test]
    fn interpreter_matches_host_reference() {
        let n = 128;
        let pos = random_floats(5, n, -2.0, 2.0);
        let out = evaluate(&lift_program(n), &[Value::from_f32_slice(&pos)])
            .unwrap()
            .flatten_f32();
        let expected = host_reference(&pos);
        for (a, e) in out.iter().zip(&expected) {
            assert!((a - e).abs() < 1e-2 * (1.0 + e.abs()), "{a} vs {e}");
        }
    }
}
