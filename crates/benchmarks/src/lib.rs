//! # The evaluation benchmarks of the Lift paper (Table 1)
//!
//! This crate contains the twelve benchmark programs used in Section 7 of the paper, each
//! expressed three ways:
//!
//! 1. as a **low-level Lift IL program** (built with the `lift-ir` builder DSL) encoding the
//!    mapping and optimisation decisions the paper describes,
//! 2. as a **host reference** computation in plain Rust (the ground truth),
//! 3. as a **hand-written OpenCL reference kernel** built directly as a `lift-ocl` AST,
//!    standing in for the manually optimised kernels from the NVIDIA/AMD SDKs, SHOC, Rodinia,
//!    Parboil and CLBlast that the paper compares against.
//!
//! The [`runner`] module compiles the Lift programs with `lift-codegen`, executes both the
//! generated and the reference kernels on the virtual GPU (`lift-vgpu`), checks the results
//! against the host reference and reports the cost-model counters used to regenerate the
//! paper's Figure 8.
//!
//! ## Fidelity notes
//!
//! The benchmark *structures* (parallelisation strategy, memory spaces, data-layout patterns)
//! follow Table 1; the arithmetic inside some user functions is simplified (e.g. the N-Body
//! interaction uses one spatial dimension) because the point of the evaluation is code
//! generation quality, not physics. Problem sizes are scaled down from the paper so the
//! virtual GPU (a functional simulator) runs them in seconds; the relative comparisons of
//! Figure 8 are unaffected. Both simplifications are documented per benchmark.

pub mod blas;
pub mod convolution;
pub mod dot_product;
pub mod jacobi;
pub mod kmeans;
pub mod md;
pub mod mm;
pub mod mriq;
pub mod nbody;
pub mod nn;
pub(crate) mod refs;
pub mod runner;
pub mod workload;

use lift_arith::Environment;
use lift_ir::Program;
use lift_ocl::Module;
use lift_vgpu::{KernelArg, LaunchConfig};

/// The two input sizes evaluated in the paper (scaled down for the virtual GPU).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProblemSize {
    /// The "small" input of Table 1.
    Small,
    /// The "large" input of Table 1.
    Large,
}

impl ProblemSize {
    /// All problem sizes.
    pub fn all() -> [ProblemSize; 2] {
        [ProblemSize::Small, ProblemSize::Large]
    }

    /// A human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ProblemSize::Small => "small",
            ProblemSize::Large => "large",
        }
    }
}

/// Static description of a benchmark, mirroring the columns of Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Benchmark name as used in the paper.
    pub name: &'static str,
    /// The origin of the reference implementation (NVIDIA SDK, Rodinia, CLBlast, …).
    pub source: &'static str,
    /// Whether the reference implementation uses local memory.
    pub local_memory: bool,
    /// Whether the reference implementation uses private memory for reused data.
    pub private_memory: bool,
    /// Whether the reference implementation vectorises memory or compute operations.
    pub vectorisation: bool,
    /// Whether the reference implementation coalesces global memory accesses.
    pub coalescing: bool,
    /// Dimensionality of the iteration space.
    pub iteration_space: &'static str,
    /// Lines of OpenCL code of the original hand-written implementation, as reported in
    /// Table 1 of the paper.
    pub opencl_loc_paper: usize,
    /// Lines of the high-level (portable) Lift IL program, as reported in Table 1.
    pub high_level_loc_paper: usize,
    /// Lines of the low-level Lift IL program, as reported in Table 1.
    pub low_level_loc_paper: usize,
}

/// A fully instantiated benchmark: program, inputs, launch configuration, reference kernel and
/// expected output.
#[derive(Clone, Debug)]
pub struct BenchmarkCase {
    /// Static description (Table 1 row).
    pub info: BenchmarkInfo,
    /// The problem size this case was instantiated for.
    pub size: ProblemSize,
    /// The low-level Lift IL program.
    pub program: Program,
    /// Concrete input arrays, in root-parameter order.
    pub inputs: Vec<Vec<f32>>,
    /// Bindings for the symbolic size variables of the program.
    pub sizes: Environment,
    /// The launch configuration used for both the generated and the reference kernel.
    pub launch: LaunchConfig,
    /// The hand-written reference module.
    pub reference_module: Module,
    /// Name of the reference kernel inside the module.
    pub reference_kernel: String,
    /// Arguments for the reference kernel (including an output buffer).
    pub reference_args: Vec<KernelArg>,
    /// Index of the output buffer among the *buffer* arguments of the reference kernel.
    pub reference_output_buffer: usize,
    /// The expected output, computed on the host.
    pub expected: Vec<f32>,
}

/// Instantiates every benchmark of Table 1 for the given problem size.
pub fn all_benchmarks(size: ProblemSize) -> Vec<BenchmarkCase> {
    vec![
        nbody::nvidia_case(size),
        nbody::amd_case(size),
        md::case(size),
        kmeans::case(size),
        nn::case(size),
        mriq::case(size),
        convolution::case(size),
        blas::atax_case(size),
        blas::gemv_case(size),
        blas::gesummv_case(size),
        mm::amd_case(size),
        mm::nvidia_case(size),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks_are_registered() {
        let cases = all_benchmarks(ProblemSize::Small);
        assert_eq!(cases.len(), 12);
        let names: Vec<&str> = cases.iter().map(|c| c.info.name).collect();
        assert!(names.contains(&"N-Body (NVIDIA)"));
        assert!(names.contains(&"MM (NVIDIA)"));
    }

    #[test]
    fn problem_sizes_have_labels() {
        assert_eq!(ProblemSize::Small.label(), "small");
        assert_eq!(ProblemSize::Large.label(), "large");
        assert_eq!(ProblemSize::all().len(), 2);
    }
}
