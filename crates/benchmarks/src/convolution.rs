//! Convolution (Table 1: Convolution, from the NVIDIA SDK).
//!
//! A 17-point convolution expressed with the `slide` pattern (Section 3.2). The paper reports
//! this benchmark as the one that suffers most (up to ~20×) when array-access simplification
//! is disabled, because the sliding-window views produce long index expressions; the same
//! effect is visible on the virtual GPU. The original is a 2-D separable convolution with
//! tiling; this reproduction keeps one dimension, which preserves the sliding-window access
//! pattern that drives the result.

use lift_arith::ArithExpr;
use lift_ir::{Program, Type, UserFun};
use lift_ocl::{CExpr, CStmt, Kernel};
use lift_vgpu::{KernelArg, LaunchConfig};

use crate::refs;
use crate::workload::random_floats;
use crate::{BenchmarkCase, BenchmarkInfo, ProblemSize};

/// Filter width.
pub const FILTER: usize = 17;

fn outputs(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Small => 2048,
        ProblemSize::Large => 8192,
    }
}

/// Host reference.
pub fn host_reference(input: &[f32], weights: &[f32]) -> Vec<f32> {
    let n = input.len() - weights.len() + 1;
    (0..n)
        .map(|i| {
            weights
                .iter()
                .enumerate()
                .map(|(k, w)| input[i + k] * w)
                .sum()
        })
        .collect()
}

/// The *high-level* convolution — the program before any implementation choices:
/// `join ∘ map(λw. reduce(add, 0)(map(mult)(zip(w, weights)))) ∘ slide filter 1`.
///
/// This is the input of the rewrite-based derivation: `lift-rewrite` lowers the maps and
/// the reduction, and its stencil rule family (overlapped tiling with `toLocal` staging)
/// re-derives the paper's Section 3.2 work-group kernel — the same shape as the
/// hand-lowered [`lift_program`] — with the tile size exposed as a tuning knob.
pub fn high_level_program(n_out: usize, filter: usize) -> Program {
    let mut p = Program::new("convolution");
    let mult = p.user_fun(UserFun::mult_pair());
    let add = p.user_fun(UserFun::add());
    let in_len = ArithExpr::cst((n_out + filter - 1) as i64);
    let w_len = ArithExpr::cst(filter as i64);
    p.with_root(
        vec![
            ("input", Type::array(Type::float(), in_len)),
            ("weights", Type::array(Type::float(), w_len)),
        ],
        |p, params| {
            let weights = params[1];
            let m_in = p.map(mult);
            let red = p.reduce(add, 0.0);
            let per_window = p.lambda(&["window"], |p, lp| {
                let z = p.zip2();
                let zipped = p.apply(z, [lp[0], weights]);
                let mapped = p.apply1(m_in, zipped);
                p.apply1(red, mapped)
            });
            let mw = p.map(per_window);
            let slide = p.slide(filter, 1usize);
            let j = p.join();
            let windows = p.apply1(slide, params[0]);
            let mapped = p.apply1(mw, windows);
            p.apply1(j, mapped)
        },
    );
    p
}

/// The Lift program:
/// `join . mapWrg(join . mapLcl(reduceSeq(multAndSumUp, 0) . zip(weights)) ) . split L . slide 17 1`.
pub fn lift_program(n_out: usize, filter: usize, wg: usize) -> Program {
    let mut p = Program::new("convolution");
    let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
    let in_len = ArithExpr::cst((n_out + filter - 1) as i64);
    let w_len = ArithExpr::cst(filter as i64);
    p.with_root(
        vec![
            ("input", Type::array(Type::float(), in_len)),
            ("weights", Type::array(Type::float(), w_len)),
        ],
        |p, params| {
            let weights = params[1];
            let per_window = p.lambda(&["window"], |p, lp| {
                let z = p.zip2();
                let zipped = p.apply(z, [lp[0], weights]);
                let red = p.reduce_seq_pattern(mult_add);
                let init = p.literal_f32(0.0);
                p.apply(red, [init, zipped])
            });
            let ml = p.map_lcl(0, per_window);
            let j_inner = p.join();
            let wg_body = p.compose(&[j_inner, ml]);
            let mw = p.map_wrg(0, wg_body);
            let split = p.split(wg);
            let slide = p.slide(filter, 1usize);
            let j_out = p.join();
            let windows = p.apply1(slide, params[0]);
            let grouped = p.apply1(split, windows);
            let mapped = p.apply1(mw, grouped);
            p.apply1(j_out, mapped)
        },
    );
    p
}

/// Hand-written reference kernel: each thread convolves one output element with direct,
/// division-free indexing (as the hand-tuned NVIDIA SDK kernel does).
fn reference_kernel() -> Kernel {
    let gid = CExpr::global_id(0);
    let body = vec![
        refs::decl_float("acc", CExpr::float(0.0)),
        refs::for_loop(
            "k",
            CExpr::int(FILTER as i64),
            vec![CStmt::Assign {
                lhs: CExpr::var("acc"),
                rhs: CExpr::var("acc").add(
                    CExpr::var("input")
                        .at(gid.clone().add(CExpr::var("k")))
                        .mul(CExpr::var("weights").at(CExpr::var("k"))),
                ),
            }],
        ),
        CStmt::Assign {
            lhs: CExpr::var("out").at(gid),
            rhs: CExpr::var("acc"),
        },
    ];
    Kernel {
        name: "convolution_ref".into(),
        params: vec![
            refs::input("input"),
            refs::input("weights"),
            refs::output("out"),
        ],
        body,
    }
}

/// The convolution benchmark case.
pub fn case(size: ProblemSize) -> BenchmarkCase {
    let n_out = outputs(size);
    let input = random_floats(61, n_out + FILTER - 1, -1.0, 1.0);
    let weights = random_floats(62, FILTER, -0.5, 0.5);
    let expected = host_reference(&input, &weights);
    let kernel = reference_kernel();
    let reference_kernel_name = kernel.name.clone();
    BenchmarkCase {
        info: BenchmarkInfo {
            name: "Convolution",
            source: "NVIDIA SDK",
            local_memory: true,
            private_memory: false,
            vectorisation: false,
            coalescing: true,
            iteration_space: "2D",
            opencl_loc_paper: 92,
            high_level_loc_paper: 48,
            low_level_loc_paper: 48,
        },
        size,
        program: lift_program(n_out, FILTER, 64),
        inputs: vec![input.clone(), weights.clone()],
        sizes: lift_arith::Environment::new(),
        launch: LaunchConfig::d1(n_out, 64),
        reference_module: refs::module(kernel),
        reference_kernel: reference_kernel_name,
        reference_args: vec![
            KernelArg::Buffer(input),
            KernelArg::Buffer(weights),
            KernelArg::zeros(n_out),
        ],
        reference_output_buffer: 2,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_interp::{evaluate, Value};

    #[test]
    fn high_level_program_matches_host_reference_and_hand_lowered_kernel() {
        let n_out = 48;
        let input = random_floats(7, n_out + FILTER - 1, -1.0, 1.0);
        let weights = random_floats(8, FILTER, -0.5, 0.5);
        let args = [
            Value::from_f32_slice(&input),
            Value::from_f32_slice(&weights),
        ];
        let high = evaluate(&high_level_program(n_out, FILTER), &args)
            .expect("high-level program runs")
            .flatten_f32();
        let hand = evaluate(&lift_program(n_out, FILTER, 16), &args)
            .expect("hand-lowered program runs")
            .flatten_f32();
        let expected = host_reference(&input, &weights);
        assert_eq!(high.len(), expected.len());
        for ((a, b), e) in high.iter().zip(&hand).zip(&expected) {
            assert!((a - e).abs() < 1e-3 * (1.0 + e.abs()), "{a} vs host {e}");
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs hand {b}");
        }
        // The high-level program still contains undecided maps/reduces for the rule
        // engine to lower.
        assert!(high_level_program(n_out, FILTER)
            .first_high_level_pattern()
            .is_some());
    }

    #[test]
    fn interpreter_matches_host_reference() {
        let n_out = 64;
        let input = random_floats(1, n_out + FILTER - 1, -1.0, 1.0);
        let weights = random_floats(2, FILTER, -0.5, 0.5);
        let out = evaluate(
            &lift_program(n_out, FILTER, 16),
            &[
                Value::from_f32_slice(&input),
                Value::from_f32_slice(&weights),
            ],
        )
        .unwrap()
        .flatten_f32();
        let expected = host_reference(&input, &weights);
        assert_eq!(out.len(), expected.len());
        for (a, e) in out.iter().zip(&expected) {
            assert!((a - e).abs() < 1e-3 * (1.0 + e.abs()));
        }
    }
}
