//! # Reference interpreter for the Lift IR
//!
//! The interpreter gives every pattern of the Lift IL its straightforward denotational
//! semantics over host values (Section 3.2 of the paper). It is deliberately simple and slow;
//! its job is to be obviously correct so that the OpenCL code generator and the virtual GPU
//! can be tested against it.
//!
//! ```
//! use lift_interp::{evaluate, Value};
//! use lift_ir::prelude::*;
//!
//! let mut p = Program::new("sum");
//! let add = p.user_fun(UserFun::add());
//! let reduce = p.reduce_seq(add, 0.0);
//! p.with_root(vec![("x", Type::array(Type::float(), 4usize))], |p, params| {
//!     p.apply1(reduce, params[0])
//! });
//! let out = evaluate(&p, &[Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0])]).unwrap();
//! assert_eq!(out.flatten_f32(), vec![10.0]);
//! ```

mod eval;
mod value;

pub use eval::{eval_scalar, evaluate, evaluate_with_sizes, InterpError};
pub use value::Value;
