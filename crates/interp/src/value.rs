//! Runtime values manipulated by the reference interpreter.

use std::fmt;

/// A value of the Lift IL: scalars, vectors, tuples and (nested) arrays.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A `float` value.
    Float(f32),
    /// An `int` value.
    Int(i64),
    /// A `bool` value.
    Bool(bool),
    /// An OpenCL-style short vector of scalar lanes.
    Vector(Vec<Value>),
    /// A tuple value (produced by `zip`, consumed by `get`).
    Tuple(Vec<Value>),
    /// An array value; arrays nest to form multi-dimensional data.
    Array(Vec<Value>),
}

impl Value {
    /// Builds a one-dimensional `float` array from a slice.
    pub fn from_f32_slice(data: &[f32]) -> Value {
        Value::Array(data.iter().map(|v| Value::Float(*v)).collect())
    }

    /// Builds a two-dimensional `float` array (row major) from a flat slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not `rows * cols`.
    pub fn from_f32_matrix(data: &[f32], rows: usize, cols: usize) -> Value {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data must have rows*cols elements"
        );
        Value::Array(data.chunks_exact(cols).map(Value::from_f32_slice).collect())
    }

    /// Flattens an arbitrarily nested value into its scalar `f32` contents, in order.
    ///
    /// # Panics
    ///
    /// Panics if the value contains non-`float` scalars.
    pub fn flatten_f32(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.flatten_f32_into(&mut out);
        out
    }

    fn flatten_f32_into(&self, out: &mut Vec<f32>) {
        match self {
            Value::Float(v) => out.push(*v),
            Value::Int(v) => out.push(*v as f32),
            Value::Bool(b) => out.push(if *b { 1.0 } else { 0.0 }),
            Value::Vector(vs) | Value::Tuple(vs) | Value::Array(vs) => {
                for v in vs {
                    v.flatten_f32_into(out);
                }
            }
        }
    }

    /// Returns the scalar `f32` if this is a `float` value.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(vs) => Some(vs),
            _ => None,
        }
    }

    /// Returns the components if this is a tuple.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(vs) => Some(vs),
            _ => None,
        }
    }

    /// The length of the outermost array dimension, if this is an array.
    pub fn len(&self) -> Option<usize> {
        self.as_array().map(<[Value]>::len)
    }

    /// Returns `true` if this is an empty array.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Vector(vs) => {
                write!(f, "<")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Array(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_matrix_constructors() {
        let v = Value::from_f32_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.len(), Some(3));
        let m = Value::from_f32_matrix(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(m.len(), Some(2));
        assert_eq!(
            m.as_array().unwrap()[1].as_array().unwrap()[0],
            Value::Float(3.0)
        );
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn matrix_constructor_validates_size() {
        Value::from_f32_matrix(&[1.0, 2.0, 3.0], 2, 2);
    }

    #[test]
    fn flatten_traverses_nested_structure() {
        let v = Value::Array(vec![
            Value::Tuple(vec![Value::Float(1.0), Value::Float(2.0)]),
            Value::Tuple(vec![Value::Float(3.0), Value::Float(4.0)]),
        ]);
        assert_eq!(v.flatten_f32(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Float(2.5).as_f32(), Some(2.5));
        assert_eq!(Value::Int(2).as_f32(), None);
        let t = Value::Tuple(vec![Value::Float(1.0)]);
        assert_eq!(t.as_tuple().unwrap().len(), 1);
        assert!(!Value::Array(vec![Value::Float(0.0)]).is_empty());
        assert!(Value::Array(vec![]).is_empty());
    }

    #[test]
    fn display_formats() {
        let v = Value::Array(vec![
            Value::Vector(vec![Value::Float(1.0), Value::Float(2.0)]),
            Value::Tuple(vec![Value::Int(3), Value::Bool(true)]),
        ]);
        assert_eq!(v.to_string(), "[<1, 2>, (3, true)]");
    }
}
