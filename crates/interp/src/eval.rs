//! The reference interpreter.
//!
//! Every pattern of the Lift IL has a simple denotational semantics over host values (the
//! diagrams of Section 3.2). The interpreter implements exactly that semantics and serves as
//! the ground truth the generated OpenCL kernels are tested against: for every benchmark the
//! virtual-GPU execution of the compiled kernel must agree with the interpreter.

use std::collections::HashMap;
use std::fmt;

use lift_arith::{ArithExpr, Environment};
use lift_ir::{
    BinOp, ExprId, ExprKind, FunDecl, FunDeclId, Literal, Pattern, Program, Reorder, ScalarExpr,
    UnOp,
};

use crate::value::Value;

/// Errors raised during interpretation.
#[derive(Clone, Debug, PartialEq)]
pub enum InterpError {
    /// The program has no root lambda.
    MissingRoot,
    /// The number of provided inputs does not match the root lambda.
    WrongArgumentCount {
        /// Parameters expected by the root lambda.
        expected: usize,
        /// Inputs provided.
        found: usize,
    },
    /// A value had the wrong shape for the pattern consuming it.
    ShapeMismatch {
        /// Description of the context.
        context: String,
    },
    /// A symbolic size could not be evaluated to a concrete number.
    SymbolicSize(String),
    /// Division of an array into chunks that do not divide its length.
    NotDivisible {
        /// The array length.
        len: usize,
        /// The chunk size.
        chunk: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::MissingRoot => write!(f, "the program has no root lambda"),
            InterpError::WrongArgumentCount { expected, found } => {
                write!(f, "expected {expected} inputs, found {found}")
            }
            InterpError::ShapeMismatch { context } => write!(f, "shape mismatch in {context}"),
            InterpError::SymbolicSize(e) => {
                write!(f, "could not evaluate symbolic size `{e}` to a constant")
            }
            InterpError::NotDivisible { len, chunk } => {
                write!(
                    f,
                    "cannot split an array of length {len} into chunks of {chunk}"
                )
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Evaluates a program whose sizes are all compile-time constants.
///
/// # Errors
///
/// See [`evaluate_with_sizes`].
pub fn evaluate(program: &Program, args: &[Value]) -> Result<Value, InterpError> {
    evaluate_with_sizes(program, args, &Environment::new())
}

/// Evaluates a program, resolving symbolic sizes (`N`, `M`, …) with the given environment.
///
/// # Errors
///
/// Returns an [`InterpError`] if the inputs do not match the program or a pattern receives a
/// value of the wrong shape.
pub fn evaluate_with_sizes(
    program: &Program,
    args: &[Value],
    sizes: &Environment,
) -> Result<Value, InterpError> {
    let root = program.root().ok_or(InterpError::MissingRoot)?;
    let params = program.root_params();
    if params.len() != args.len() {
        return Err(InterpError::WrongArgumentCount {
            expected: params.len(),
            found: args.len(),
        });
    }
    let mut interp = Interpreter {
        program,
        sizes,
        env: HashMap::new(),
    };
    interp.apply_fun(root, args.to_vec())
}

struct Interpreter<'a> {
    program: &'a Program,
    sizes: &'a Environment,
    env: HashMap<ExprId, Value>,
}

impl<'a> Interpreter<'a> {
    fn eval_size(&self, e: &ArithExpr) -> Result<usize, InterpError> {
        e.evaluate(self.sizes)
            .map_err(|_| InterpError::SymbolicSize(e.to_string()))
            .and_then(|v| usize::try_from(v).map_err(|_| InterpError::SymbolicSize(e.to_string())))
    }

    fn eval_expr(&mut self, id: ExprId) -> Result<Value, InterpError> {
        match &self.program.expr(id).kind {
            ExprKind::Literal(Literal::Float(v)) => Ok(Value::Float(*v)),
            ExprKind::Literal(Literal::Int(v)) => Ok(Value::Int(*v)),
            ExprKind::Param { name } => {
                self.env
                    .get(&id)
                    .cloned()
                    .ok_or_else(|| InterpError::ShapeMismatch {
                        context: format!("unbound parameter `{name}`"),
                    })
            }
            ExprKind::FunCall { f, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_expr(*a)?);
                }
                self.apply_fun(*f, vals)
            }
        }
    }

    fn apply_fun(&mut self, f: FunDeclId, args: Vec<Value>) -> Result<Value, InterpError> {
        match self.program.decl(f) {
            FunDecl::Lambda { params, body } => {
                if params.len() != args.len() {
                    return Err(InterpError::WrongArgumentCount {
                        expected: params.len(),
                        found: args.len(),
                    });
                }
                // Save and restore previous bindings so that recursive uses of the same lambda
                // (e.g. under `iterate`) do not clobber each other.
                let saved: Vec<Option<Value>> =
                    params.iter().map(|p| self.env.get(p).cloned()).collect();
                for (p, v) in params.iter().zip(args) {
                    self.env.insert(*p, v);
                }
                let result = self.eval_expr(*body);
                for (p, old) in params.iter().zip(saved) {
                    match old {
                        Some(v) => {
                            self.env.insert(*p, v);
                        }
                        None => {
                            self.env.remove(p);
                        }
                    }
                }
                result
            }
            FunDecl::UserFun(uf) => Ok(eval_scalar(uf.body(), &args)),
            FunDecl::Pattern(p) => self.apply_pattern(&p.clone(), args),
        }
    }

    fn expect_array(&self, v: Value, context: &str) -> Result<Vec<Value>, InterpError> {
        match v {
            Value::Array(vs) => Ok(vs),
            _ => Err(InterpError::ShapeMismatch {
                context: context.to_string(),
            }),
        }
    }

    fn apply_pattern(
        &mut self,
        pattern: &Pattern,
        mut args: Vec<Value>,
    ) -> Result<Value, InterpError> {
        match pattern {
            Pattern::Map { f }
            | Pattern::MapSeq { f }
            | Pattern::MapGlb { f, .. }
            | Pattern::MapWrg { f, .. }
            | Pattern::MapLcl { f, .. } => {
                let xs = self.expect_array(args.remove(0), "map input")?;
                let mut out = Vec::with_capacity(xs.len());
                for x in xs {
                    out.push(self.apply_fun(*f, vec![x])?);
                }
                Ok(Value::Array(out))
            }
            Pattern::MapVec { f } => match args.remove(0) {
                Value::Vector(lanes) => {
                    let mut out = Vec::with_capacity(lanes.len());
                    for lane in lanes {
                        out.push(self.apply_fun(*f, vec![lane])?);
                    }
                    Ok(Value::Vector(out))
                }
                _ => Err(InterpError::ShapeMismatch {
                    context: "mapVec input".into(),
                }),
            },
            Pattern::Reduce { f } | Pattern::ReduceSeq { f } => {
                let input = args.pop().expect("reduce has two arguments");
                let mut acc = args.pop().expect("reduce has two arguments");
                let xs = self.expect_array(input, "reduce input")?;
                for x in xs {
                    acc = self.apply_fun(*f, vec![acc, x])?;
                }
                Ok(Value::Array(vec![acc]))
            }
            Pattern::Id => Ok(args.remove(0)),
            Pattern::Iterate { n, f } => {
                let mut v = args.remove(0);
                for _ in 0..*n {
                    v = self.apply_fun(*f, vec![v])?;
                }
                Ok(v)
            }
            Pattern::Split { chunk } => {
                let xs = self.expect_array(args.remove(0), "split input")?;
                let chunk = self.eval_size(chunk)?;
                if chunk == 0 || !xs.len().is_multiple_of(chunk) {
                    return Err(InterpError::NotDivisible {
                        len: xs.len(),
                        chunk,
                    });
                }
                Ok(Value::Array(
                    xs.chunks_exact(chunk)
                        .map(|c| Value::Array(c.to_vec()))
                        .collect(),
                ))
            }
            Pattern::Join => {
                let xs = self.expect_array(args.remove(0), "join input")?;
                let mut out = Vec::new();
                for x in xs {
                    out.extend(self.expect_array(x, "join inner input")?);
                }
                Ok(Value::Array(out))
            }
            Pattern::Gather { reorder } => {
                let xs = self.expect_array(args.remove(0), "gather input")?;
                let n = xs.len();
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(xs[self.reorder_index(reorder, i, n)?].clone());
                }
                Ok(Value::Array(out))
            }
            Pattern::Scatter { reorder } => {
                let xs = self.expect_array(args.remove(0), "scatter input")?;
                let n = xs.len();
                let mut out = vec![Value::Float(0.0); n];
                for (i, x) in xs.into_iter().enumerate() {
                    let j = self.reorder_index(reorder, i, n)?;
                    out[j] = x;
                }
                Ok(Value::Array(out))
            }
            Pattern::Transpose => {
                let rows = self.expect_array(args.remove(0), "transpose input")?;
                let row_vals: Vec<Vec<Value>> = rows
                    .into_iter()
                    .map(|r| self.expect_array(r, "transpose row"))
                    .collect::<Result<_, _>>()?;
                let n = row_vals.len();
                let m = row_vals.first().map_or(0, Vec::len);
                let mut out = vec![Vec::with_capacity(n); m];
                for row in &row_vals {
                    if row.len() != m {
                        return Err(InterpError::ShapeMismatch {
                            context: "ragged matrix in transpose".into(),
                        });
                    }
                    for (j, v) in row.iter().enumerate() {
                        out[j].push(v.clone());
                    }
                }
                Ok(Value::Array(out.into_iter().map(Value::Array).collect()))
            }
            Pattern::Zip { arity } => {
                let arrays: Vec<Vec<Value>> = args
                    .into_iter()
                    .map(|a| self.expect_array(a, "zip input"))
                    .collect::<Result<_, _>>()?;
                if arrays.len() != *arity {
                    return Err(InterpError::ShapeMismatch {
                        context: "zip arity".into(),
                    });
                }
                let len = arrays.first().map_or(0, Vec::len);
                if arrays.iter().any(|a| a.len() != len) {
                    return Err(InterpError::ShapeMismatch {
                        context: "zip lengths".into(),
                    });
                }
                let mut out = Vec::with_capacity(len);
                for i in 0..len {
                    out.push(Value::Tuple(arrays.iter().map(|a| a[i].clone()).collect()));
                }
                Ok(Value::Array(out))
            }
            Pattern::Get { index } => match args.remove(0) {
                Value::Tuple(vs) => vs.get(*index).cloned().ok_or(InterpError::ShapeMismatch {
                    context: format!("tuple projection {index}"),
                }),
                _ => Err(InterpError::ShapeMismatch {
                    context: "get input".into(),
                }),
            },
            Pattern::Slide { size, step } => {
                let xs = self.expect_array(args.remove(0), "slide input")?;
                let size = self.eval_size(size)?;
                let step = self.eval_size(step)?;
                if step == 0 || size == 0 || size > xs.len() {
                    return Err(InterpError::ShapeMismatch {
                        context: "slide window".into(),
                    });
                }
                // The same side condition the type checker enforces: the step must divide
                // the slack exactly, so the greedy window walk below and the type-level
                // window count `(len - size)/step + 1` agree. A regression test pins the
                // two layers against each other.
                if !(xs.len() - size).is_multiple_of(step) {
                    return Err(InterpError::NotDivisible {
                        len: xs.len() - size,
                        chunk: step,
                    });
                }
                let mut out = Vec::new();
                let mut start = 0;
                while start + size <= xs.len() {
                    out.push(Value::Array(xs[start..start + size].to_vec()));
                    start += step;
                }
                Ok(Value::Array(out))
            }
            Pattern::Pad { left, right, mode } => {
                let xs = self.expect_array(args.remove(0), "pad input")?;
                let left = self.eval_size(left)?;
                let right = self.eval_size(right)?;
                let n = xs.len() as i64;
                if n == 0 {
                    return Err(InterpError::ShapeMismatch {
                        context: "pad of an empty array".into(),
                    });
                }
                // Clamp and wrap handle any amount; a mirror reflection only reaches one
                // array length past either end.
                if *mode == lift_ir::PadMode::Mirror && (left as i64 > n || right as i64 > n) {
                    return Err(InterpError::ShapeMismatch {
                        context: "mirror pad wider than the array".into(),
                    });
                }
                let mut out = Vec::with_capacity(left + xs.len() + right);
                for j in 0..(left + xs.len() + right) as i64 {
                    let src = mode.source_index(j - left as i64, n);
                    out.push(xs[src as usize].clone());
                }
                Ok(Value::Array(out))
            }
            Pattern::ToGlobal { f } | Pattern::ToLocal { f } | Pattern::ToPrivate { f } => {
                self.apply_fun(*f, args)
            }
            Pattern::AsVector { width } => {
                let xs = self.expect_array(args.remove(0), "asVector input")?;
                if *width == 0 || !xs.len().is_multiple_of(*width) {
                    return Err(InterpError::NotDivisible {
                        len: xs.len(),
                        chunk: *width,
                    });
                }
                Ok(Value::Array(
                    xs.chunks_exact(*width)
                        .map(|c| Value::Vector(c.to_vec()))
                        .collect(),
                ))
            }
            Pattern::AsScalar => {
                let xs = self.expect_array(args.remove(0), "asScalar input")?;
                let mut out = Vec::new();
                for x in xs {
                    match x {
                        Value::Vector(lanes) => out.extend(lanes),
                        other => out.push(other),
                    }
                }
                Ok(Value::Array(out))
            }
        }
    }

    fn reorder_index(&self, reorder: &Reorder, i: usize, n: usize) -> Result<usize, InterpError> {
        Ok(match reorder {
            Reorder::Identity => i,
            Reorder::Reverse => n - 1 - i,
            Reorder::Stride(s) => {
                let s = self.eval_size(s)?;
                if s == 0 || !n.is_multiple_of(s) {
                    return Err(InterpError::NotDivisible { len: n, chunk: s });
                }
                (i % s) * (n / s) + i / s
            }
        })
    }
}

/// Evaluates a user-function body over already evaluated argument values.
pub fn eval_scalar(body: &ScalarExpr, args: &[Value]) -> Value {
    match body {
        ScalarExpr::Param(i) => args[*i].clone(),
        ScalarExpr::ConstFloat(v) => Value::Float(*v as f32),
        ScalarExpr::ConstInt(v) => Value::Int(*v),
        ScalarExpr::Get(e, i) => match eval_scalar(e, args) {
            Value::Tuple(vs) | Value::Vector(vs) => vs[*i].clone(),
            other => other,
        },
        ScalarExpr::Tuple(es) => Value::Tuple(es.iter().map(|e| eval_scalar(e, args)).collect()),
        ScalarExpr::Bin(op, a, b) => {
            let a = scalar_f32(&eval_scalar(a, args));
            let b = scalar_f32(&eval_scalar(b, args));
            Value::Float(apply_bin(*op, a, b))
        }
        ScalarExpr::Un(op, a) => {
            let a = scalar_f32(&eval_scalar(a, args));
            Value::Float(apply_un(*op, a))
        }
        ScalarExpr::Select(c, t, e) => {
            if scalar_f32(&eval_scalar(c, args)) != 0.0 {
                eval_scalar(t, args)
            } else {
                eval_scalar(e, args)
            }
        }
    }
}

fn scalar_f32(v: &Value) -> f32 {
    match v {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f32,
        Value::Bool(b) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        _ => f32::NAN,
    }
}

fn apply_bin(op: BinOp, a: f32, b: f32) -> f32 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::Lt => {
            if a < b {
                1.0
            } else {
                0.0
            }
        }
        BinOp::Gt => {
            if a > b {
                1.0
            } else {
                0.0
            }
        }
    }
}

fn apply_un(op: UnOp, a: f32) -> f32 {
    match op {
        UnOp::Neg => -a,
        UnOp::Sqrt => a.sqrt(),
        UnOp::Rsqrt => 1.0 / a.sqrt(),
        UnOp::Fabs => a.abs(),
        UnOp::Exp => a.exp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_ir::{Type, UserFun};

    fn float_array(n: impl Into<ArithExpr>) -> Type {
        Type::array(Type::float(), n)
    }

    #[test]
    fn map_applies_the_user_function() {
        let mut p = Program::new("t");
        let mult = p.user_fun(UserFun::mult_pair());
        let m = p.map_glb(0, mult);
        let z = p.zip2();
        p.with_root(
            vec![("x", float_array(4usize)), ("y", float_array(4usize))],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                p.apply1(m, zipped)
            },
        );
        let x = Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0]);
        let y = Value::from_f32_slice(&[10.0, 20.0, 30.0, 40.0]);
        let out = evaluate(&p, &[x, y]).expect("runs");
        assert_eq!(out.flatten_f32(), vec![10.0, 40.0, 90.0, 160.0]);
    }

    #[test]
    fn reduce_folds_sequentially() {
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let r = p.reduce_seq(add, 0.0);
        p.with_root(vec![("x", float_array(5usize))], |p, params| {
            p.apply1(r, params[0])
        });
        let out = evaluate(&p, &[Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0, 5.0])]).unwrap();
        assert_eq!(out.flatten_f32(), vec![15.0]);
    }

    #[test]
    fn split_join_round_trip() {
        let mut p = Program::new("t");
        let s = p.split(2usize);
        let j = p.join();
        p.with_root(vec![("x", float_array(6usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(j, split)
        });
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let out = evaluate(&p, &[Value::from_f32_slice(&data)]).unwrap();
        assert_eq!(out.flatten_f32(), data.to_vec());
    }

    #[test]
    fn split_of_non_divisible_length_fails() {
        let mut p = Program::new("t");
        let s = p.split(4usize);
        p.with_root(vec![("x", float_array(6usize))], |p, params| {
            p.apply1(s, params[0])
        });
        let err = evaluate(&p, &[Value::from_f32_slice(&[0.0; 6])]).unwrap_err();
        assert_eq!(err, InterpError::NotDivisible { len: 6, chunk: 4 });
    }

    #[test]
    fn gather_reverse_reverses() {
        let mut p = Program::new("t");
        let g = p.gather(Reorder::Reverse);
        p.with_root(vec![("x", float_array(4usize))], |p, params| {
            p.apply1(g, params[0])
        });
        let out = evaluate(&p, &[Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0])]).unwrap();
        assert_eq!(out.flatten_f32(), vec![4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn scatter_is_the_inverse_of_gather_for_permutations() {
        let mut p = Program::new("t");
        let g = p.scatter(Reorder::Reverse);
        p.with_root(vec![("x", float_array(4usize))], |p, params| {
            p.apply1(g, params[0])
        });
        let out = evaluate(&p, &[Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0])]).unwrap();
        assert_eq!(out.flatten_f32(), vec![4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn stride_gather_transposes_a_flattened_matrix() {
        // Reading a flattened 2x3 row-major matrix through gather(stride 2) yields its
        // column-major (transposed) order: the stride parameter is the number of rows.
        let mut p = Program::new("t");
        let g = p.gather(Reorder::Stride(ArithExpr::cst(2)));
        p.with_root(vec![("x", float_array(6usize))], |p, params| {
            p.apply1(g, params[0])
        });
        let out = evaluate(
            &p,
            &[Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])],
        )
        .unwrap();
        assert_eq!(out.flatten_f32(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_swaps_rows_and_columns() {
        let mut p = Program::new("t");
        let t = p.transpose();
        p.with_root(
            vec![("x", Type::array(float_array(3usize), 2usize))],
            |p, params| p.apply1(t, params[0]),
        );
        let m = Value::from_f32_matrix(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let out = evaluate(&p, &[m]).unwrap();
        assert_eq!(out.flatten_f32(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn slide_produces_overlapping_windows() {
        let mut p = Program::new("t");
        let s = p.slide(3usize, 1usize);
        p.with_root(vec![("x", float_array(5usize))], |p, params| {
            p.apply1(s, params[0])
        });
        let out = evaluate(&p, &[Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0, 5.0])]).unwrap();
        let windows = out.as_array().unwrap();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].flatten_f32(), vec![1.0, 2.0, 3.0]);
        assert_eq!(windows[2].flatten_f32(), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn slide_with_indivisible_step_fails_in_both_layers() {
        // Regression for the latent slide window-count disagreement: the type checker
        // computes `(n - size)/step + 1` windows while the interpreter slides greedily.
        // Both layers now reject a step that does not divide the slack, with the same
        // boundary: (6-3) % 2 != 0 fails, (7-3) % 2 == 0 passes.
        let mut p = Program::new("t");
        let s = p.slide(3usize, 2usize);
        p.with_root(vec![("x", float_array(6usize))], |p, params| {
            p.apply1(s, params[0])
        });
        let type_err = lift_ir::infer_types(&mut p.clone()).unwrap_err();
        assert!(
            matches!(type_err, lift_ir::TypeError::SlideIndivisible { .. }),
            "{type_err}"
        );
        let interp_err = evaluate(&p, &[Value::from_f32_slice(&[0.0; 6])]).unwrap_err();
        assert_eq!(interp_err, InterpError::NotDivisible { len: 3, chunk: 2 });

        let mut p = Program::new("t2");
        let s = p.slide(3usize, 2usize);
        p.with_root(vec![("x", float_array(7usize))], |p, params| {
            p.apply1(s, params[0])
        });
        lift_ir::infer_types(&mut p.clone()).expect("divisible slide types");
        let out = evaluate(
            &p,
            &[Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])],
        )
        .unwrap();
        let windows = out.as_array().unwrap();
        assert_eq!(windows.len(), 3); // matches the type-level (7-3)/2 + 1
        assert_eq!(windows[2].flatten_f32(), vec![5.0, 6.0, 7.0]);
    }

    #[test]
    fn pad_modes_replicate_boundary_elements() {
        use lift_ir::PadMode;
        let data = [1.0, 2.0, 3.0, 4.0];
        let run = |mode: PadMode, left: usize, right: usize| {
            let mut p = Program::new("t");
            let pad = p.pad(left, right, mode);
            p.with_root(vec![("x", float_array(data.len()))], |p, params| {
                p.apply1(pad, params[0])
            });
            evaluate(&p, &[Value::from_f32_slice(&data)])
                .unwrap()
                .flatten_f32()
        };
        assert_eq!(
            run(PadMode::Clamp, 2, 2),
            vec![1.0, 1.0, 1.0, 2.0, 3.0, 4.0, 4.0, 4.0]
        );
        assert_eq!(
            run(PadMode::Mirror, 2, 2),
            vec![2.0, 1.0, 1.0, 2.0, 3.0, 4.0, 4.0, 3.0]
        );
        assert_eq!(
            run(PadMode::Wrap, 2, 2),
            vec![3.0, 4.0, 1.0, 2.0, 3.0, 4.0, 1.0, 2.0]
        );
        // Asymmetric amounts pad each side independently.
        assert_eq!(run(PadMode::Clamp, 1, 0), vec![1.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pad_then_slide_is_a_boundary_handled_stencil() {
        use lift_ir::PadMode;
        // pad(1,1,clamp) then slide(3,1) over [1,2,3]: windows centred on every element.
        let mut p = Program::new("t");
        let pad = p.pad(1usize, 1usize, PadMode::Clamp);
        let s = p.slide(3usize, 1usize);
        p.with_root(vec![("x", float_array(3usize))], |p, params| {
            let padded = p.apply1(pad, params[0]);
            p.apply1(s, padded)
        });
        let out = evaluate(&p, &[Value::from_f32_slice(&[1.0, 2.0, 3.0])]).unwrap();
        let windows = out.as_array().unwrap();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].flatten_f32(), vec![1.0, 1.0, 2.0]);
        assert_eq!(windows[1].flatten_f32(), vec![1.0, 2.0, 3.0]);
        assert_eq!(windows[2].flatten_f32(), vec![2.0, 3.0, 3.0]);
    }

    #[test]
    fn mirror_pad_wider_than_the_array_is_rejected() {
        use lift_ir::PadMode;
        let mut p = Program::new("t");
        let pad = p.pad(3usize, 0usize, PadMode::Mirror);
        p.with_root(vec![("x", float_array(2usize))], |p, params| {
            p.apply1(pad, params[0])
        });
        let err = evaluate(&p, &[Value::from_f32_slice(&[1.0, 2.0])]).unwrap_err();
        assert!(matches!(err, InterpError::ShapeMismatch { .. }));
    }

    #[test]
    fn iterate_reapplies_its_function() {
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce_seq(add, 0.0);
        let m = p.map_seq(red);
        let s = p.split(2usize);
        let j = p.join();
        let body = p.compose(&[j, m, s]);
        let it = p.iterate(3, body);
        p.with_root(vec![("x", float_array(8usize))], |p, params| {
            p.apply1(it, params[0])
        });
        let out = evaluate(&p, &[Value::from_f32_slice(&[1.0; 8])]).unwrap();
        assert_eq!(out.flatten_f32(), vec![8.0]);
    }

    #[test]
    fn vectorisation_round_trips() {
        let mut p = Program::new("t");
        let av = p.as_vector(4);
        let asc = p.as_scalar();
        p.with_root(vec![("x", float_array(8usize))], |p, params| {
            let v = p.apply1(av, params[0]);
            p.apply1(asc, v)
        });
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let out = evaluate(&p, &[Value::from_f32_slice(&data)]).unwrap();
        assert_eq!(out.flatten_f32(), data.to_vec());
    }

    #[test]
    fn map_vec_applies_per_lane() {
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let mv = p.map_vec(id);
        let m = p.map_seq(mv);
        let av = p.as_vector(2);
        p.with_root(vec![("x", float_array(4usize))], |p, params| {
            let v = p.apply1(av, params[0]);
            p.apply1(m, v)
        });
        let out = evaluate(&p, &[Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0])]).unwrap();
        assert_eq!(out.flatten_f32(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn symbolic_sizes_are_resolved_from_the_environment() {
        let n = ArithExpr::size_var("N");
        let mut p = Program::new("t");
        let s = p.split(n.clone() / 2);
        p.with_root(vec![("x", float_array(n))], |p, params| {
            p.apply1(s, params[0])
        });
        let sizes = Environment::new().bind("N", 8);
        let out = evaluate_with_sizes(&p, &[Value::from_f32_slice(&[0.0; 8])], &sizes).unwrap();
        assert_eq!(out.len(), Some(2));
        // Without the environment the size stays symbolic and evaluation fails.
        let err = evaluate(&p, &[Value::from_f32_slice(&[0.0; 8])]).unwrap_err();
        assert!(matches!(err, InterpError::SymbolicSize(_)));
    }

    #[test]
    fn wrong_argument_count_is_reported() {
        let mut p = Program::new("t");
        let id = p.id_pattern();
        p.with_root(vec![("x", float_array(2usize))], |p, params| {
            p.apply1(id, params[0])
        });
        let err = evaluate(&p, &[]).unwrap_err();
        assert_eq!(
            err,
            InterpError::WrongArgumentCount {
                expected: 1,
                found: 0
            }
        );
        assert!(err.to_string().contains("expected 1"));
    }

    #[test]
    fn listing1_dot_product_matches_a_direct_computation() {
        // Build the Listing 1 partial dot product for N = 256 (2 work groups) and check the
        // per-work-group partial sums against a straightforward host computation.
        let n: usize = 256;
        let mut p = Program::new("partialDot");
        let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
        let add = p.user_fun(UserFun::add());

        let red1 = p.reduce_seq(mult_add, 0.0);
        let copy_l1 = p.copy_to_local();
        let step1_f = p.compose(&[copy_l1, red1]);
        let step1_map = p.map_lcl(0, step1_f);
        let s2a = p.split(2usize);
        let j1 = p.join();
        let step1 = p.compose(&[j1, step1_map, s2a]);

        let red2 = p.reduce_seq(add, 0.0);
        let copy_l2 = p.copy_to_local();
        let step2_f = p.compose(&[copy_l2, red2]);
        let step2_map = p.map_lcl(0, step2_f);
        let s2b = p.split(2usize);
        let j2 = p.join();
        let iter_body = p.compose(&[j2, step2_map, s2b]);
        let step2 = p.iterate(6, iter_body);

        let copy_g = p.copy_to_global();
        let m_copy = p.map_lcl(0, copy_g);
        let s1 = p.split(1usize);
        let j3 = p.join();
        let step3 = p.compose(&[j3, m_copy, s1]);

        let wg_body = p.compose(&[step3, step2, step1]);
        let wg = p.map_wrg(0, wg_body);
        let s128 = p.split(128usize);
        let jout = p.join();
        let z = p.zip2();
        p.with_root(
            vec![("x", float_array(n)), ("y", float_array(n))],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                let split = p.apply1(s128, zipped);
                let mapped = p.apply1(wg, split);
                p.apply1(jout, mapped)
            },
        );

        let x: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let y: Vec<f32> = (0..n).map(|i| (i % 5) as f32 * 0.5).collect();
        let out = evaluate(&p, &[Value::from_f32_slice(&x), Value::from_f32_slice(&y)]).unwrap();
        let partials = out.flatten_f32();
        assert_eq!(partials.len(), 2);
        for (wg_idx, partial) in partials.iter().enumerate() {
            let expected: f32 = (0..128)
                .map(|i| x[wg_idx * 128 + i] * y[wg_idx * 128 + i])
                .sum();
            assert!((partial - expected).abs() < 1e-3, "work group {wg_idx}");
        }
    }
}
