//! Property-based tests for the data-layout patterns: the algebraic identities the paper
//! relies on (Section 3.2) must hold in the reference interpreter for arbitrary data.

use lift_arith::ArithExpr;
use lift_interp::{evaluate, Value};
use lift_ir::prelude::*;
use proptest::prelude::*;

fn float_array(n: usize) -> Type {
    Type::array(Type::float(), ArithExpr::cst(n as i64))
}

/// `join . split k` is the identity on arrays whose length `k` divides.
fn split_join_program(n: usize, k: usize) -> Program {
    let mut p = Program::new("split_join");
    let s = p.split(k);
    let j = p.join();
    p.with_root(vec![("x", float_array(n))], |p, params| {
        let split = p.apply1(s, params[0]);
        p.apply1(j, split)
    });
    p
}

/// `scatter(f) . gather(f)` is the identity for any permutation `f`.
fn gather_scatter_program(n: usize, reorder: Reorder) -> Program {
    let mut p = Program::new("gather_scatter");
    let g = p.gather(reorder.clone());
    let s = p.scatter(reorder);
    p.with_root(vec![("x", float_array(n))], |p, params| {
        let gathered = p.apply1(g, params[0]);
        p.apply1(s, gathered)
    });
    p
}

/// `transpose . transpose` is the identity on matrices.
fn double_transpose_program(rows: usize, cols: usize) -> Program {
    let mut p = Program::new("double_transpose");
    let t1 = p.transpose();
    let t2 = p.transpose();
    p.with_root(
        vec![(
            "x",
            Type::array(float_array(cols), ArithExpr::cst(rows as i64)),
        )],
        |p, params| {
            let once = p.apply1(t1, params[0]);
            p.apply1(t2, once)
        },
    );
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_then_join_is_identity(
        chunk in prop_oneof![Just(2usize), Just(4), Just(8), Just(16)],
        chunks in 1usize..8,
        seed in 0u32..100,
    ) {
        let n = chunk * chunks;
        let data: Vec<f32> = (0..n).map(|i| ((i as u32 * 31 + seed) % 97) as f32).collect();
        let out = evaluate(&split_join_program(n, chunk), &[Value::from_f32_slice(&data)])
            .expect("runs")
            .flatten_f32();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn scatter_undoes_gather(
        stride in prop_oneof![Just(2usize), Just(4), Just(8)],
        multiple in 1usize..6,
        reverse in any::<bool>(),
        seed in 0u32..100,
    ) {
        let n = stride * multiple * stride; // divisible by the stride
        let reorder = if reverse {
            Reorder::Reverse
        } else {
            Reorder::Stride(ArithExpr::cst(stride as i64))
        };
        let data: Vec<f32> = (0..n).map(|i| ((i as u32 * 13 + seed) % 89) as f32).collect();
        let out = evaluate(&gather_scatter_program(n, reorder), &[Value::from_f32_slice(&data)])
            .expect("runs")
            .flatten_f32();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn transposing_twice_is_identity(
        rows in 1usize..10,
        cols in 1usize..10,
        seed in 0u32..100,
    ) {
        let data: Vec<f32> =
            (0..rows * cols).map(|i| ((i as u32 * 7 + seed) % 83) as f32).collect();
        let out = evaluate(
            &double_transpose_program(rows, cols),
            &[Value::from_f32_matrix(&data, rows, cols)],
        )
        .expect("runs")
        .flatten_f32();
        prop_assert_eq!(out, data);
    }
}
