//! Derivation provenance: replaying and explaining recorded rule chains.
//!
//! Every [`DerivationStep`] the exploration driver records carries full provenance — the
//! rule name, the structured [`Location`](crate::traversal::Location) of the rewrite site,
//! and the index of the chosen rewrite among everything the rule offered there. That makes a
//! derivation chain a *program*, not just a log:
//!
//! * [`replay`] runs a recorded chain back through the rewrite engine and reproduces the
//!   exact derived term (structurally hash-equal to the original — the regression suite
//!   pins this for every derived workload), and
//! * [`explain`] does the same walk while rendering the program after every step, producing
//!   a human-readable rule-by-rule transcript (see `examples/explain_dot_product.rs`).
//!
//! Both take the [`RuleOptions`] the original search used: parameterised rules (split
//! factors, vector widths, tile sizes) enumerate one rewrite per option, and the recorded
//! `alternative` index is only meaningful against the same option set.

use lift_ir::{infer_types, Program, TypeError};

use crate::explore::DerivationStep;
use crate::rules::{all_rules, Rule, RuleCx, RuleOptions};
use crate::term::{beta_normalize, Term, TermError};
use crate::traversal::{format_location, get, replace, sites};

/// Why a recorded derivation chain could not be replayed.
#[derive(Clone, Debug)]
pub enum ReplayError {
    /// Converting the input program to tree form failed.
    Term(TermError),
    /// The input program does not typecheck.
    Type(TypeError),
    /// A step names a rule the engine does not have.
    UnknownRule {
        /// 0-based step index.
        step: usize,
        /// The unknown rule name.
        rule: String,
    },
    /// A step's site does not exist in the term the preceding steps produced.
    NoSuchSite {
        /// 0-based step index.
        step: usize,
        /// The rendered missing location.
        location: String,
    },
    /// The rule offered fewer rewrites at the site than the recorded alternative index —
    /// typically a [`RuleOptions`] mismatch with the recording search.
    NoSuchAlternative {
        /// 0-based step index.
        step: usize,
        /// The rule name.
        rule: &'static str,
        /// The recorded alternative index.
        alternative: usize,
        /// How many rewrites the rule offered.
        available: usize,
    },
    /// The chosen rewrite could not be spliced back into the term.
    ReplaceFailed {
        /// 0-based step index.
        step: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Term(e) => write!(f, "cannot build rewrite term: {e}"),
            ReplayError::Type(e) => write!(f, "input program does not typecheck: {e}"),
            ReplayError::UnknownRule { step, rule } => {
                write!(f, "step {step}: unknown rule {rule:?}")
            }
            ReplayError::NoSuchSite { step, location } => {
                write!(f, "step {step}: no rewrite site at {location}")
            }
            ReplayError::NoSuchAlternative {
                step,
                rule,
                alternative,
                available,
            } => write!(
                f,
                "step {step}: rule {rule} offered {available} rewrite(s) at the site, but \
                 alternative {alternative} was recorded (RuleOptions mismatch?)"
            ),
            ReplayError::ReplaceFailed { step } => {
                write!(
                    f,
                    "step {step}: the chosen rewrite could not be spliced back"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TermError> for ReplayError {
    fn from(e: TermError) -> Self {
        ReplayError::Term(e)
    }
}

impl From<TypeError> for ReplayError {
    fn from(e: TypeError) -> Self {
        ReplayError::Type(e)
    }
}

/// The starting term of a replay: typed conversion of the input program, exactly as
/// [`crate::enumerate`] builds its search root.
fn root_term(program: &Program) -> Result<Term, ReplayError> {
    let mut typed = program.clone();
    infer_types(&mut typed)?;
    Ok(Term::from_program(&typed)?)
}

fn rule_by_name(step: usize, name: &str) -> Result<&'static Rule, ReplayError> {
    all_rules()
        .iter()
        .find(|r| r.name == name)
        .ok_or_else(|| ReplayError::UnknownRule {
            step,
            rule: name.to_string(),
        })
}

/// Applies one recorded step, mirroring the exploration driver's `expand` exactly: same
/// site enumeration, same fresh-name reset per rule invocation, same `replace` +
/// `beta_normalize` — so the produced term is bit-for-bit the one the search derived.
fn apply_step(
    term: &Term,
    step_index: usize,
    step: &DerivationStep,
    options: &RuleOptions,
) -> Result<Term, ReplayError> {
    let rule = rule_by_name(step_index, step.rule)?;
    let no_such_site = || ReplayError::NoSuchSite {
        step: step_index,
        location: format_location(&step.path),
    };
    let site = sites(term)
        .into_iter()
        .find(|s| s.location == step.path)
        .ok_or_else(no_such_site)?;
    let site_expr = get(&term.body, &site.location).ok_or_else(no_such_site)?;
    let mut fresh = term.fresh;
    let rewrites = {
        let mut cx = RuleCx {
            context: site.context,
            arg_types: &site.arg_types,
            env: &site.env,
            options,
            fresh: &mut fresh,
        };
        rule.applications(site_expr, &mut cx)
    };
    let available = rewrites.len();
    let replacement = rewrites.into_iter().nth(step.alternative).ok_or({
        ReplayError::NoSuchAlternative {
            step: step_index,
            rule: rule.name,
            alternative: step.alternative,
            available,
        }
    })?;
    let body = replace(&term.body, &site.location, replacement)
        .ok_or(ReplayError::ReplaceFailed { step: step_index })?;
    Ok(Term {
        name: term.name.clone(),
        params: term.params.clone(),
        body: beta_normalize(&body),
        fresh,
    })
}

/// Replays a recorded derivation chain against `program` and returns the derived term.
///
/// `options` must be the [`RuleOptions`] of the recording search: the recorded
/// `alternative` indices select among the rewrites those options generate.
///
/// # Errors
///
/// Returns a [`ReplayError`] if the input program is invalid or any step does not apply the
/// way it was recorded (unknown rule, missing site, out-of-range alternative).
pub fn replay(
    program: &Program,
    steps: &[DerivationStep],
    options: &RuleOptions,
) -> Result<Term, ReplayError> {
    let mut term = root_term(program)?;
    for (i, step) in steps.iter().enumerate() {
        term = apply_step(&term, i, step, options)?;
    }
    Ok(term)
}

/// One rendered step of an [`Explanation`].
#[derive(Clone, Debug)]
pub struct ExplainedStep {
    /// The applied rule's name.
    pub rule: &'static str,
    /// The applied rule's family.
    pub kind: crate::rules::RuleKind,
    /// The rendered rewrite site.
    pub location: String,
    /// The chosen alternative index at the site.
    pub alternative: usize,
    /// The whole program after this step, pretty-printed.
    pub after: String,
}

/// A rendered rule-by-rule derivation transcript (see [`explain`]). Its [`std::fmt::Display`]
/// implementation prints the full walkthrough: the initial program, then every applied rule
/// with its site and the program it produced.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The program name.
    pub name: String,
    /// The initial (high-level) program, pretty-printed.
    pub initial: String,
    /// The applied steps, in order.
    pub steps: Vec<ExplainedStep>,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "derivation of `{}` in {} steps",
            self.name,
            self.steps.len()
        )?;
        writeln!(f, "\ninitial program:")?;
        for line in self.initial.lines() {
            writeln!(f, "    {line}")?;
        }
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "\nstep {}: apply {} [{:?}] at {} (alternative {})",
                i + 1,
                step.rule,
                step.kind,
                step.location,
                step.alternative
            )?;
            for line in step.after.lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// Replays a recorded derivation chain while rendering the program after every step,
/// producing a human-readable transcript of how the final variant was derived.
///
/// # Errors
///
/// See [`replay`].
pub fn explain(
    program: &Program,
    steps: &[DerivationStep],
    options: &RuleOptions,
) -> Result<Explanation, ReplayError> {
    let mut term = root_term(program)?;
    let initial = term.pretty();
    let mut explained = Vec::with_capacity(steps.len());
    for (i, step) in steps.iter().enumerate() {
        term = apply_step(&term, i, step, options)?;
        explained.push(ExplainedStep {
            rule: step.rule,
            kind: step.kind,
            location: step.location.clone(),
            alternative: step.alternative,
            after: term.pretty(),
        });
    }
    Ok(Explanation {
        name: term.name.clone(),
        initial,
        steps: explained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{enumerate, ExplorationConfig};
    use lift_ir::{Type, UserFun};
    use lift_vgpu::LaunchConfig;

    fn dot(n: usize) -> Program {
        let mut p = Program::new("dot");
        let mult = p.user_fun(UserFun::mult_pair());
        let add = p.user_fun(UserFun::add());
        let m1 = p.map(mult);
        let red = p.reduce(add, 0.0);
        let m2 = p.map(red);
        let s = p.split(32usize);
        let j = p.join();
        let z = p.zip2();
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), n)),
                ("y", Type::array(Type::float(), n)),
            ],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                let mapped = p.apply1(m1, zipped);
                let split = p.apply1(s, mapped);
                let outer = p.apply1(m2, split);
                p.apply1(j, outer)
            },
        );
        p
    }

    fn search_config() -> ExplorationConfig {
        ExplorationConfig {
            max_depth: 4,
            beam_width: 24,
            max_candidates: 800,
            launch: LaunchConfig::d1(16, 4),
            ..ExplorationConfig::default()
        }
    }

    #[test]
    fn replay_reproduces_every_lowered_candidate() {
        let program = dot(128);
        let config = search_config();
        let enumerated = enumerate(&program, &config).expect("enumeration runs");
        let mut checked = 0;
        for (term, steps) in enumerated.lowered_candidates() {
            let replayed = replay(&program, steps, &config.rule_options).expect("chain replays");
            assert_eq!(
                replayed.dedup_key(),
                term.dedup_key(),
                "replayed term differs for chain {:?}",
                steps.iter().map(|s| s.rule).collect::<Vec<_>>()
            );
            assert_eq!(replayed.body, term.body);
            checked += 1;
        }
        assert!(checked > 0, "the search lowered no candidates to replay");
    }

    #[test]
    fn explain_renders_one_section_per_step() {
        let program = dot(128);
        let config = search_config();
        let enumerated = enumerate(&program, &config).expect("enumeration runs");
        let (_, steps) = enumerated
            .lowered_candidates()
            .next()
            .expect("a lowered candidate");
        let explanation = explain(&program, steps, &config.rule_options).expect("chain explains");
        assert_eq!(explanation.steps.len(), steps.len());
        let rendered = explanation.to_string();
        assert!(rendered.contains("initial program:"));
        for (i, step) in steps.iter().enumerate() {
            assert!(rendered.contains(&format!("step {}: apply {}", i + 1, step.rule)));
        }
    }

    #[test]
    fn replay_rejects_mismatched_options() {
        let program = dot(128);
        let config = search_config();
        let enumerated = enumerate(&program, &config).expect("enumeration runs");
        // Find a chain that actually used a parameterised alternative > 0 (a split size).
        let chain = enumerated
            .lowered_candidates()
            .map(|(_, steps)| steps)
            .find(|steps| steps.iter().any(|s| s.alternative > 0));
        if let Some(steps) = chain {
            let narrowed = RuleOptions {
                split_sizes: vec![2],
                ..config.rule_options.clone()
            };
            assert!(
                replay(&program, steps, &narrowed).is_err(),
                "replay should fail when the recorded alternative is out of range"
            );
        }
    }

    #[test]
    fn replay_rejects_unknown_rules_and_missing_sites() {
        let program = dot(128);
        let bogus = DerivationStep {
            rule: "no-such-rule",
            kind: crate::rules::RuleKind::Algorithmic,
            location: "@root".to_string(),
            path: Vec::new(),
            alternative: 0,
        };
        assert!(matches!(
            replay(
                &program,
                std::slice::from_ref(&bogus),
                &RuleOptions::default()
            ),
            Err(ReplayError::UnknownRule { .. })
        ));
        let missing = DerivationStep {
            rule: "map-fusion",
            kind: crate::rules::RuleKind::Algorithmic,
            location: ".arg9".to_string(),
            path: vec![crate::traversal::Step::Arg(9)],
            alternative: 0,
        };
        assert!(matches!(
            replay(
                &program,
                std::slice::from_ref(&missing),
                &RuleOptions::default()
            ),
            Err(ReplayError::NoSuchSite { .. })
        ));
    }
}
