//! Location-based traversal over term trees.
//!
//! A [`Location`] addresses a subexpression of a [`Term`] body: a sequence of steps that
//! either descend into an argument of an application ([`Step::Arg`]) or into the body of the
//! lambda found in an application's function position after unwrapping a number of pattern
//! layers ([`Step::Body`]). [`sites`] enumerates every application together with the
//! [`NestContext`] of enclosing parallel patterns (which decides which lowering rules are
//! legal there) and the types of its arguments (used e.g. for arithmetically checked
//! divisibility of `split` factors).

use std::collections::HashMap;
use std::sync::Arc;

use lift_arith::ArithExpr;
use lift_ir::Type;

use crate::term::{StableHasher, Term, TermExpr, TermFun};

/// One step of a [`Location`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Descend into the i-th argument of an application.
    Arg(usize),
    /// Descend into the body of the lambda in the application's function position, after
    /// unwrapping `peel` pattern layers (`peel == 0` means the function is itself a lambda).
    Body {
        /// Number of pattern layers to unwrap before reaching the lambda.
        peel: usize,
    },
}

/// A path from the root body to a subexpression.
pub type Location = Vec<Step>;

/// Renders a location compactly, e.g. `.arg0.body.arg1`.
pub fn format_location(loc: &[Step]) -> String {
    if loc.is_empty() {
        return "@root".to_string();
    }
    let mut out = String::new();
    for step in loc {
        match step {
            Step::Arg(i) => out.push_str(&format!(".arg{i}")),
            Step::Body { peel: 0 } => out.push_str(".body"),
            Step::Body { peel } => out.push_str(&format!(".fun{peel}.body")),
        }
    }
    out
}

/// The parallel patterns enclosing a rewrite site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct NestContext {
    /// Inside the function of a `mapGlb`.
    pub inside_glb: bool,
    /// Inside the function of a `mapWrg`.
    pub inside_wrg: bool,
    /// Inside the function of a `mapLcl`.
    pub inside_lcl: bool,
    /// Which `mapWrg` dimensions enclose the site, as a bitmask (bit `d` set ⇔ inside a
    /// `mapWrg(d)`). The boolean flags collapse dimensions; 2D rules need them apart — a
    /// `map` under `mapWrg(1)` may still lower to `mapLcl(1)` but must not nest a second
    /// dimension-1 work-group loop.
    pub wrg_dims: u8,
    /// Which `mapLcl` dimensions enclose the site (bit `d` set ⇔ inside a `mapLcl(d)`).
    pub lcl_dims: u8,
    /// Inside a sequential region (`mapSeq`, `mapVec` or a reduction operator).
    pub inside_seq: bool,
    /// Inside the function of a high-level `map`/`reduce` whose parallelism is undecided.
    pub inside_pending: bool,
    /// Inside the body of an `iterate` that runs more than once. The body executes at a
    /// *different array length* every iteration, but sites are recorded with the first
    /// iteration's types — so rules whose rewrite bakes in a constant derived from the
    /// argument length (split-join, partial reduction, tiling, vectorisation) must not fire
    /// here: a factor that divides the first length need not divide the later ones.
    pub inside_iterate: bool,
}

impl NestContext {
    /// No enclosing map at all: the only place where work-item/work-group parallelism may be
    /// introduced.
    pub fn is_top_level(&self) -> bool {
        !self.inside_glb
            && !self.inside_wrg
            && !self.inside_lcl
            && !self.inside_seq
            && !self.inside_pending
    }

    /// Inside a work group (where `toLocal` placement is meaningful).
    pub fn in_work_group(&self) -> bool {
        self.inside_wrg || self.inside_lcl
    }

    /// Inside any map or reduction function.
    pub fn in_any_map(&self) -> bool {
        self.inside_glb
            || self.inside_wrg
            || self.inside_lcl
            || self.inside_seq
            || self.inside_pending
    }
}

/// Parameter-name → type environment at a site.
pub type TypeEnv = HashMap<String, Type>;

/// A rewritable application site.
#[derive(Clone, Debug)]
pub struct Site {
    /// Where the application lives.
    pub location: Location,
    /// The enclosing parallel patterns.
    pub context: NestContext,
    /// The types of the application's arguments, where derivable.
    pub arg_types: Vec<Option<Type>>,
    /// The parameter types in scope at the site (for [`infer_type`] queries by rules).
    /// Shared between all sites of the same lambda scope — enumerating sites does not clone
    /// the environment per site.
    pub env: Arc<TypeEnv>,
    /// A deterministic structural hash of `env` (name → type bindings, order-independent),
    /// computed once per lambda scope. Used by the exploration driver's rule-applicability
    /// cache so keying on the environment does not require re-hashing it per site.
    pub env_hash: u64,
}

/// Hashes a type environment deterministically (sorted by name).
fn env_hash_of(env: &TypeEnv) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut entries: Vec<_> = env.iter().collect();
    entries.sort_unstable_by_key(|(n, _)| n.as_str());
    let mut h = StableHasher::new();
    for (n, t) in entries {
        h.write_usize(n.len());
        h.write(n.as_bytes());
        t.hash(&mut h);
    }
    h.finish()
}

/// A scope: the shared environment map plus its precomputed hash.
#[derive(Clone)]
struct Scope {
    env: Arc<TypeEnv>,
    hash: u64,
}

impl Scope {
    fn new(env: TypeEnv) -> Scope {
        let hash = env_hash_of(&env);
        Scope {
            env: Arc::new(env),
            hash,
        }
    }

    /// A child scope with the lambda parameters bound (or unbound, for untypeable
    /// arguments) — the only place environments change during a walk.
    fn bind(&self, params: &[String], arg_types: &[Option<Type>]) -> Scope {
        let mut env = (*self.env).clone();
        for (p, t) in params.iter().zip(arg_types) {
            match t {
                Some(t) => {
                    env.insert(p.clone(), t.clone());
                }
                None => {
                    env.remove(p);
                }
            }
        }
        Scope::new(env)
    }
}

/// Enumerates every application site of the term, pre-order.
pub fn sites(term: &Term) -> Vec<Site> {
    let scope = Scope::new(term.params.iter().cloned().collect());
    let mut out = Vec::new();
    let mut loc = Vec::new();
    walk_expr(
        &term.body,
        &scope,
        &mut loc,
        NestContext::default(),
        Some(&mut out),
    );
    out
}

/// Infers the type of an expression under the given environment (best effort: returns `None`
/// where the lightweight tree-level rules cannot decide; the arena type checker remains the
/// authoritative gate for every derived program).
pub fn infer_type(e: &TermExpr, env: &TypeEnv) -> Option<Type> {
    let scope = Scope {
        env: Arc::new(env.clone()),
        // The hash is only consumed through recorded sites, and a pure type query records
        // none.
        hash: 0,
    };
    let mut loc = Vec::new();
    walk_expr(e, &scope, &mut loc, NestContext::default(), None)
}

/// Returns the subexpression at `loc`.
pub fn get<'a>(e: &'a TermExpr, loc: &[Step]) -> Option<&'a TermExpr> {
    let Some((step, rest)) = loc.split_first() else {
        return Some(e);
    };
    let TermExpr::Apply { f, args } = e else {
        return None;
    };
    match step {
        Step::Arg(i) => get(args.get(*i)?, rest),
        Step::Body { peel } => {
            let mut cur = f;
            for _ in 0..*peel {
                cur = cur.nested()?;
            }
            match cur {
                TermFun::Lambda { body, .. } => get(body, rest),
                _ => None,
            }
        }
    }
}

/// Returns a copy of `root` with the subexpression at `loc` replaced.
pub fn replace(root: &TermExpr, loc: &[Step], replacement: TermExpr) -> Option<TermExpr> {
    let mut out = root.clone();
    *get_mut(&mut out, loc)? = replacement;
    Some(out)
}

fn get_mut<'a>(e: &'a mut TermExpr, loc: &[Step]) -> Option<&'a mut TermExpr> {
    let Some((step, rest)) = loc.split_first() else {
        return Some(e);
    };
    let TermExpr::Apply { f, args } = e else {
        return None;
    };
    match step {
        Step::Arg(i) => get_mut(args.get_mut(*i)?, rest),
        Step::Body { peel } => {
            let mut cur = f;
            for _ in 0..*peel {
                cur = cur.nested_mut()?;
            }
            match cur {
                TermFun::Lambda { body, .. } => get_mut(body, rest),
                _ => None,
            }
        }
    }
}

/// Walks an expression, recording application sites and returning the expression's type where
/// derivable. `out == None` turns the walk into a pure type query.
fn walk_expr(
    e: &TermExpr,
    scope: &Scope,
    loc: &mut Location,
    ctx: NestContext,
    mut out: Option<&mut Vec<Site>>,
) -> Option<Type> {
    match e {
        TermExpr::Literal(l) => Some(l.ty()),
        TermExpr::Param(name) => scope.env.get(name).cloned(),
        TermExpr::Apply { f, args } => {
            let mut arg_types = Vec::with_capacity(args.len());
            for (i, a) in args.iter().enumerate() {
                loc.push(Step::Arg(i));
                let t = walk_expr(a, scope, loc, ctx, out.as_deref_mut());
                loc.pop();
                arg_types.push(t);
            }
            if let Some(recorder) = out.as_deref_mut() {
                recorder.push(Site {
                    location: loc.clone(),
                    context: ctx,
                    arg_types: arg_types.clone(),
                    env: Arc::clone(&scope.env),
                    env_hash: scope.hash,
                });
            }
            walk_fun(f, &arg_types, scope, loc, ctx, out, 0)
        }
    }
}

/// Walks a function position applied to arguments of the given types.
#[allow(clippy::too_many_lines)]
fn walk_fun(
    f: &TermFun,
    arg_types: &[Option<Type>],
    scope: &Scope,
    loc: &mut Location,
    ctx: NestContext,
    out: Option<&mut Vec<Site>>,
    peel: usize,
) -> Option<Type> {
    let array_of = |t: &Option<Type>| -> Option<(Type, ArithExpr)> {
        t.as_ref()?.as_array().map(|(e, l)| (e.clone(), l.clone()))
    };
    match f {
        TermFun::Lambda { params, body } => {
            let inner = scope.bind(params, arg_types);
            loc.push(Step::Body { peel });
            let result = walk_expr(body, &inner, loc, ctx, out);
            loc.pop();
            result
        }
        TermFun::UserFun(uf) => Some(uf.return_type().clone()),
        TermFun::Map(g)
        | TermFun::MapSeq(g)
        | TermFun::MapGlb(_, g)
        | TermFun::MapWrg(_, g)
        | TermFun::MapLcl(_, g) => {
            let elem_len = array_of(&arg_types[0]);
            let mut inner = ctx;
            match f {
                TermFun::Map(_) => inner.inside_pending = true,
                TermFun::MapSeq(_) => inner.inside_seq = true,
                TermFun::MapGlb(..) => inner.inside_glb = true,
                TermFun::MapWrg(d, _) => {
                    inner.inside_wrg = true;
                    inner.wrg_dims |= 1u8 << (*d).min(7);
                }
                TermFun::MapLcl(d, _) => {
                    inner.inside_lcl = true;
                    inner.lcl_dims |= 1u8 << (*d).min(7);
                }
                _ => unreachable!(),
            }
            let elem = elem_len.as_ref().map(|(e, _)| e.clone());
            let out_elem = walk_fun(g, &[elem], scope, loc, inner, out, peel + 1)?;
            let (_, len) = elem_len?;
            Some(Type::array(out_elem, len))
        }
        TermFun::MapVec(g) => {
            let mut inner = ctx;
            inner.inside_seq = true;
            let lane = match arg_types[0].as_ref() {
                Some(Type::Vector(kind, _)) => Some(Type::Scalar(*kind)),
                _ => None,
            };
            let out_lane = walk_fun(g, &[lane], scope, loc, inner, out, peel + 1)?;
            match (arg_types[0].as_ref(), out_lane) {
                (Some(Type::Vector(_, width)), Type::Scalar(kind)) => {
                    Some(Type::Vector(kind, *width))
                }
                _ => None,
            }
        }
        TermFun::Reduce(g) | TermFun::ReduceSeq(g) => {
            let mut inner = ctx;
            inner.inside_seq = true;
            let init = arg_types.first().cloned().flatten();
            let elem = arg_types.get(1).and_then(array_of).map(|(e, _)| e);
            walk_fun(g, &[init.clone(), elem], scope, loc, inner, out, peel + 1);
            init.map(|t| Type::array(t, 1usize))
        }
        TermFun::Iterate(n, g) => {
            // Walk the body once to record its sites; iterate the type function only for
            // small n (the paper's programs use constants like 6). The body runs at a
            // different length every iteration, so length-specialising rules are fenced off
            // via `inside_iterate` whenever it runs more than once.
            let mut inner = ctx;
            if *n > 1 {
                inner.inside_iterate = true;
            }
            let mut current = arg_types[0].clone();
            let first = walk_fun(g, &[current.clone()], scope, loc, inner, out, peel + 1);
            if *n == 0 {
                return current;
            }
            current = first;
            for _ in 1..*n {
                current = walk_fun(g, &[current.clone()], scope, loc, ctx, None, peel + 1);
            }
            current
        }
        TermFun::ToGlobal(g) | TermFun::ToLocal(g) | TermFun::ToPrivate(g) => {
            walk_fun(g, arg_types, scope, loc, ctx, out, peel + 1)
        }
        TermFun::Id => arg_types[0].clone(),
        TermFun::Split(chunk) => {
            let (elem, len) = array_of(&arg_types[0])?;
            Some(Type::array(
                Type::array(elem, chunk.clone()),
                len / chunk.clone(),
            ))
        }
        TermFun::Join => {
            let (row, outer) = array_of(&arg_types[0])?;
            let (elem, inner) = row.as_array()?;
            Some(Type::array(elem.clone(), outer * inner.clone()))
        }
        TermFun::Gather(_) | TermFun::Scatter(_) => arg_types[0].clone(),
        TermFun::Transpose => {
            let (row, n) = array_of(&arg_types[0])?;
            let (elem, m) = row.as_array()?;
            Some(Type::array(Type::array(elem.clone(), n), m.clone()))
        }
        TermFun::Zip(arity) => {
            let mut elems = Vec::with_capacity(*arity);
            let mut len = None;
            for t in arg_types {
                let (e, l) = array_of(t)?;
                elems.push(e);
                len.get_or_insert(l);
            }
            Some(Type::array(Type::Tuple(elems), len?))
        }
        TermFun::Get(index) => match arg_types[0].as_ref()? {
            Type::Tuple(elems) => elems.get(*index).cloned(),
            _ => None,
        },
        TermFun::Slide(size, step) => {
            let (elem, len) = array_of(&arg_types[0])?;
            // Mirror the typed side condition: an indivisible step means the site is not
            // usefully typeable (the arena checker will reject any such candidate).
            lift_ir::check_slide_divisibility(&len, size, step).ok()?;
            let windows = (len - size.clone()) / step.clone() + 1;
            Some(Type::array(Type::array(elem, size.clone()), windows))
        }
        TermFun::Pad(left, right, mode) => {
            let (elem, len) = array_of(&arg_types[0])?;
            lift_ir::check_pad_width(left, right, *mode, &len).ok()?;
            Some(Type::array(elem, left.clone() + len + right.clone()))
        }
        TermFun::AsVector(width) => {
            let (elem, len) = array_of(&arg_types[0])?;
            match elem {
                Type::Scalar(kind) => Some(Type::array(
                    Type::Vector(kind, *width),
                    len / ArithExpr::cst(*width as i64),
                )),
                _ => None,
            }
        }
        TermFun::AsScalar => {
            let (elem, len) = array_of(&arg_types[0])?;
            match elem {
                Type::Vector(kind, width) => Some(Type::array(
                    Type::Scalar(kind),
                    len * ArithExpr::cst(width as i64),
                )),
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_ir::{Program, Type, UserFun};

    fn sample() -> Term {
        // join(map(reduce(add,0))(split 4 (map(mult)(zip(x, y)))))
        let mut p = Program::new("t");
        let mult = p.user_fun(UserFun::mult_pair());
        let add = p.user_fun(UserFun::add());
        let m1 = p.map(mult);
        let red = p.reduce(add, 0.0);
        let m2 = p.map(red);
        let s = p.split(4usize);
        let j = p.join();
        let z = p.zip2();
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), 16usize)),
                ("y", Type::array(Type::float(), 16usize)),
            ],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                let mapped = p.apply1(m1, zipped);
                let split = p.apply1(s, mapped);
                let outer = p.apply1(m2, split);
                p.apply1(j, outer)
            },
        );
        Term::from_program(&p).expect("converts")
    }

    #[test]
    fn sites_enumerate_nested_applications() {
        let term = sample();
        let all = sites(&term);
        // join, map(reduce), reduce-in-lambda (eta), split, map(mult), zip at least.
        assert!(all.len() >= 6, "found only {} sites", all.len());
        // Every location round-trips through get().
        for site in &all {
            assert!(
                get(&term.body, &site.location).is_some(),
                "dangling location {:?}",
                site.location
            );
        }
    }

    #[test]
    fn argument_types_are_derived() {
        let term = sample();
        let all = sites(&term);
        // The split site sees the 16 mapped floats; the inner map site sees 16 pairs.
        let split_site = all
            .iter()
            .find(|s| {
                matches!(
                    get(&term.body, &s.location),
                    Some(TermExpr::Apply {
                        f: TermFun::Split(_),
                        ..
                    })
                )
            })
            .expect("split site");
        let ty = split_site.arg_types[0].clone().expect("typed");
        let (elem, len) = ty.as_array().expect("array");
        assert_eq!(*len, lift_arith::ArithExpr::cst(16));
        assert_eq!(*elem, Type::float());
        let map_site = all
            .iter()
            .find(|s| {
                matches!(
                    get(&term.body, &s.location),
                    Some(TermExpr::Apply { f: TermFun::Map(g), .. })
                        if matches!(g.as_ref(), TermFun::UserFun(_))
                )
            })
            .expect("map(mult) site");
        let ty = map_site.arg_types[0].clone().expect("typed");
        let (elem, _) = ty.as_array().expect("array");
        assert!(matches!(elem, Type::Tuple(_)));
    }

    #[test]
    fn contexts_mark_pending_high_level_maps() {
        let term = sample();
        let all = sites(&term);
        // The eta-expanded reduce application inside map(reduce) is in pending context.
        let pending: Vec<_> = all.iter().filter(|s| s.context.inside_pending).collect();
        assert!(!pending.is_empty(), "no pending-context sites found");
        assert!(all.iter().any(|s| s.context.is_top_level()));
    }

    #[test]
    fn replace_swaps_the_target_subtree() {
        let term = sample();
        let all = sites(&term);
        let target = &all[1];
        let replaced = replace(
            &term.body,
            &target.location,
            TermExpr::Param("swapped#0".into()),
        )
        .expect("replaces");
        let seen = get(&replaced, &target.location).expect("still addressable");
        assert_eq!(*seen, TermExpr::Param("swapped#0".into()));
    }
}
