//! A tree-shaped mirror of the arena-based Lift IR.
//!
//! Rewrite rules are far easier to express over recursive trees than over arena ids: a rule
//! matches a subtree and returns a replacement subtree, and substitution is a purely
//! functional rebuild along a path. This module defines that tree form ([`TermExpr`] /
//! [`TermFun`]) together with lossless conversions from and to [`lift_ir::Program`].
//!
//! Two normalisations happen during conversion:
//!
//! * **Eta-expansion** ([`TermFun::eta`]): a pattern nested directly inside another pattern
//!   (e.g. the inner `map` of `map(map f)`) is wrapped in a lambda, so every rewritable
//!   pattern application appears as a [`TermExpr::Apply`] node that the traversal of
//!   [`crate::traversal`] can reach.
//! * **Eta-contraction** (in [`Term::to_program`]): the inverse, so converting back produces
//!   the same compact nesting the seed programs use and the code generator is tested with.
//!
//! Parameter names are made globally unique during conversion (mangled with the originating
//! arena id) so the named tree representation cannot capture variables.

use std::collections::HashMap;

use lift_arith::ArithExpr;
use lift_ir::{
    ExprId, ExprKind, FunDecl, FunDeclId, Literal, PadMode, Pattern, Program, Reorder, Type,
    UserFun,
};

/// Errors raised while converting between the arena IR and the tree form.
#[derive(Clone, Debug, PartialEq)]
pub enum TermError {
    /// The program has no root lambda.
    MissingRoot,
    /// A root parameter has no declared type.
    UntypedRootParam(String),
    /// An expression referenced a parameter that is not in scope.
    UnboundParam(String),
}

impl std::fmt::Display for TermError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TermError::MissingRoot => write!(f, "the program has no root lambda"),
            TermError::UntypedRootParam(name) => {
                write!(f, "root parameter `{name}` has no declared type")
            }
            TermError::UnboundParam(name) => write!(f, "parameter `{name}` is not in scope"),
        }
    }
}

impl std::error::Error for TermError {}

/// A function in tree form: lambdas, user functions and the predefined patterns.
#[derive(Clone, Debug, PartialEq)]
pub enum TermFun {
    /// An anonymous function.
    Lambda {
        /// Parameter names (globally unique after conversion).
        params: Vec<String>,
        /// The body.
        body: Box<TermExpr>,
    },
    /// A user-defined scalar function.
    UserFun(UserFun),
    /// High-level `map`.
    Map(Box<TermFun>),
    /// High-level `reduce`.
    Reduce(Box<TermFun>),
    /// `mapSeq`.
    MapSeq(Box<TermFun>),
    /// `mapGlb^dim`.
    MapGlb(u8, Box<TermFun>),
    /// `mapWrg^dim`.
    MapWrg(u8, Box<TermFun>),
    /// `mapLcl^dim`.
    MapLcl(u8, Box<TermFun>),
    /// `mapVec`.
    MapVec(Box<TermFun>),
    /// `reduceSeq`.
    ReduceSeq(Box<TermFun>),
    /// `iterate^n`.
    Iterate(u64, Box<TermFun>),
    /// `toGlobal`.
    ToGlobal(Box<TermFun>),
    /// `toLocal`.
    ToLocal(Box<TermFun>),
    /// `toPrivate`.
    ToPrivate(Box<TermFun>),
    /// The identity pattern.
    Id,
    /// `split^chunk`.
    Split(ArithExpr),
    /// `join`.
    Join,
    /// `gather`.
    Gather(Reorder),
    /// `scatter`.
    Scatter(Reorder),
    /// `transpose`.
    Transpose,
    /// `zip` of `arity` arrays.
    Zip(usize),
    /// Tuple projection.
    Get(usize),
    /// `slide(size, step)`.
    Slide(ArithExpr, ArithExpr),
    /// `pad(left, right, mode)`.
    Pad(ArithExpr, ArithExpr, PadMode),
    /// `asVector^width`.
    AsVector(usize),
    /// `asScalar`.
    AsScalar,
}

impl TermFun {
    /// The nested function of a pattern, if it has one.
    pub fn nested(&self) -> Option<&TermFun> {
        match self {
            TermFun::Map(f)
            | TermFun::Reduce(f)
            | TermFun::MapSeq(f)
            | TermFun::MapGlb(_, f)
            | TermFun::MapWrg(_, f)
            | TermFun::MapLcl(_, f)
            | TermFun::MapVec(f)
            | TermFun::ReduceSeq(f)
            | TermFun::Iterate(_, f)
            | TermFun::ToGlobal(f)
            | TermFun::ToLocal(f)
            | TermFun::ToPrivate(f) => Some(f),
            _ => None,
        }
    }

    /// Mutable access to the nested function of a pattern.
    pub fn nested_mut(&mut self) -> Option<&mut TermFun> {
        match self {
            TermFun::Map(f)
            | TermFun::Reduce(f)
            | TermFun::MapSeq(f)
            | TermFun::MapGlb(_, f)
            | TermFun::MapWrg(_, f)
            | TermFun::MapLcl(_, f)
            | TermFun::MapVec(f)
            | TermFun::ReduceSeq(f)
            | TermFun::Iterate(_, f)
            | TermFun::ToGlobal(f)
            | TermFun::ToLocal(f)
            | TermFun::ToPrivate(f) => Some(f),
            _ => None,
        }
    }

    /// Eta-expands `self` into callable position: lambdas and user functions are returned
    /// unchanged; patterns are wrapped in `λx. pattern(x)` (or `λ(a, x). pattern(a, x)` for
    /// the binary reductions), so the pattern application becomes a rewritable expression.
    pub fn eta(self, fresh: &mut FreshNames) -> TermFun {
        match self {
            TermFun::Lambda { .. } | TermFun::UserFun(_) => self,
            TermFun::Reduce(_) | TermFun::ReduceSeq(_) => {
                let a = fresh.next("acc");
                let x = fresh.next("xs");
                TermFun::Lambda {
                    params: vec![a.clone(), x.clone()],
                    body: Box::new(TermExpr::Apply {
                        f: self,
                        args: vec![TermExpr::Param(a), TermExpr::Param(x)],
                    }),
                }
            }
            _ => {
                let x = fresh.next("x");
                TermFun::Lambda {
                    params: vec![x.clone()],
                    body: Box::new(TermExpr::Apply {
                        f: self,
                        args: vec![TermExpr::Param(x)],
                    }),
                }
            }
        }
    }
}

/// An expression in tree form.
#[derive(Clone, Debug, PartialEq)]
pub enum TermExpr {
    /// A compile-time constant.
    Literal(Literal),
    /// A reference to an enclosing lambda (or root) parameter.
    Param(String),
    /// Application of a function to arguments.
    Apply {
        /// The applied function.
        f: TermFun,
        /// The argument expressions.
        args: Vec<TermExpr>,
    },
}

impl TermExpr {
    /// Convenience: apply a unary function.
    pub fn apply1(f: TermFun, arg: TermExpr) -> TermExpr {
        TermExpr::Apply { f, args: vec![arg] }
    }

    /// Number of nodes in this expression (used to curb exploding candidates).
    pub fn size(&self) -> usize {
        match self {
            TermExpr::Literal(_) | TermExpr::Param(_) => 1,
            TermExpr::Apply { f, args } => {
                1 + fun_size(f) + args.iter().map(TermExpr::size).sum::<usize>()
            }
        }
    }
}

fn fun_size(f: &TermFun) -> usize {
    match f {
        TermFun::Lambda { body, .. } => 1 + body.size(),
        other => match other.nested() {
            Some(inner) => 1 + fun_size(inner),
            None => 1,
        },
    }
}

/// A generator of fresh parameter names.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FreshNames {
    counter: usize,
}

impl FreshNames {
    /// Returns a new name with the given prefix; the `#` separator cannot occur in
    /// user-written names, so generated names never collide with converted ones.
    pub fn next(&mut self, prefix: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("{prefix}#r{n}")
    }
}

/// A whole program in tree form: name, typed root parameters and the body.
#[derive(Clone, Debug, PartialEq)]
pub struct Term {
    /// Program name (becomes the kernel name after code generation).
    pub name: String,
    /// The root lambda's parameters with their declared types.
    pub params: Vec<(String, Type)>,
    /// The root lambda's body.
    pub body: TermExpr,
    /// Fresh-name state shared by all rewrites of this term.
    pub fresh: FreshNames,
}

impl Term {
    /// Converts an arena [`Program`] into tree form.
    ///
    /// # Errors
    ///
    /// Returns a [`TermError`] if the program has no root or a root parameter is untyped.
    pub fn from_program(program: &Program) -> Result<Term, TermError> {
        let root = program.root().ok_or(TermError::MissingRoot)?;
        let (param_ids, body_id) = match program.decl(root) {
            FunDecl::Lambda { params, body } => (params.clone(), *body),
            _ => return Err(TermError::MissingRoot),
        };
        let mut cx = FromProgram {
            program,
            names: HashMap::new(),
        };
        let mut params = Vec::with_capacity(param_ids.len());
        for id in &param_ids {
            let name = cx.bind(*id);
            match &program.expr(*id).ty {
                Some(t) => params.push((name, t.clone())),
                None => return Err(TermError::UntypedRootParam(name)),
            }
        }
        let body = beta_normalize(&cx.expr(body_id)?);
        Ok(Term {
            name: program.name().to_string(),
            params,
            body,
            fresh: FreshNames::default(),
        })
    }

    /// Converts the tree form back into an arena [`Program`] (with eta-redexes contracted so
    /// nested patterns regain their compact form).
    pub fn to_program(&self) -> Program {
        let mut program = Program::new(self.name.clone());
        let mut cx = ToProgram {
            program: &mut program,
            scope: Vec::new(),
        };
        let mut param_ids = Vec::with_capacity(self.params.len());
        for (name, ty) in &self.params {
            let id = cx.program.param(display_name(name), ty.clone());
            cx.scope.push((name.clone(), id));
            param_ids.push(id);
        }
        let body = cx.expr(&self.body);
        let root = program.add_decl(FunDecl::Lambda {
            params: param_ids,
            body,
        });
        program.set_root(root);
        program
    }

    /// Pretty-prints by round-tripping through the arena printer (the paper's notation).
    pub fn pretty(&self) -> String {
        self.to_program().to_string()
    }

    /// Renders the high-level pattern skeleton: the tree of pattern constructors with every
    /// numeric knob (split chunks, slide windows, iteration counts, vector widths, pad
    /// amounts), user-function identity and parameter name erased. Two programs share a
    /// skeleton exactly when they compose the same patterns in the same shape, so the
    /// derivation service uses it as the similarity key for warm-starting tuner searches
    /// from structurally related cached workloads (e.g. `matrix_multiply` at any size, or
    /// `dot_product` at any length, map to one skeleton each).
    pub fn skeleton(&self) -> String {
        let mut out = String::new();
        skeleton_expr(&self.body, &mut out);
        out
    }
}

fn skeleton_expr(e: &TermExpr, out: &mut String) {
    match e {
        TermExpr::Literal(_) => out.push_str("lit"),
        TermExpr::Param(_) => out.push_str("arg"),
        TermExpr::Apply { f, args } => {
            skeleton_fun(f, out);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                skeleton_expr(a, out);
            }
            out.push(')');
        }
    }
}

fn skeleton_fun(f: &TermFun, out: &mut String) {
    let nest = |tag: &str, g: &TermFun, out: &mut String| {
        out.push_str(tag);
        out.push('[');
        skeleton_fun(g, out);
        out.push(']');
    };
    match f {
        TermFun::Lambda { body, .. } => {
            out.push_str("fn{");
            skeleton_expr(body, out);
            out.push('}');
        }
        TermFun::UserFun(_) => out.push_str("uf"),
        TermFun::Map(g) => nest("map", g, out),
        TermFun::Reduce(g) => nest("reduce", g, out),
        TermFun::MapSeq(g) => nest("mapSeq", g, out),
        TermFun::MapGlb(d, g) => nest(&format!("mapGlb{d}"), g, out),
        TermFun::MapWrg(d, g) => nest(&format!("mapWrg{d}"), g, out),
        TermFun::MapLcl(d, g) => nest(&format!("mapLcl{d}"), g, out),
        TermFun::MapVec(g) => nest("mapVec", g, out),
        TermFun::ReduceSeq(g) => nest("reduceSeq", g, out),
        TermFun::Iterate(_, g) => nest("iterate", g, out),
        TermFun::ToGlobal(g) => nest("toGlobal", g, out),
        TermFun::ToLocal(g) => nest("toLocal", g, out),
        TermFun::ToPrivate(g) => nest("toPrivate", g, out),
        TermFun::Id => out.push_str("id"),
        TermFun::Split(_) => out.push_str("split"),
        TermFun::Join => out.push_str("join"),
        TermFun::Gather(_) => out.push_str("gather"),
        TermFun::Scatter(_) => out.push_str("scatter"),
        TermFun::Transpose => out.push_str("transpose"),
        TermFun::Zip(n) => {
            out.push_str("zip");
            out.push_str(&n.to_string());
        }
        TermFun::Get(_) => out.push_str("get"),
        TermFun::Slide(_, _) => out.push_str("slide"),
        TermFun::Pad(_, _, _) => out.push_str("pad"),
        TermFun::AsVector(_) => out.push_str("asVector"),
        TermFun::AsScalar => out.push_str("asScalar"),
    }
}

/// Beta-normalises an expression: inlines applications of lambdas (`(λx. b)(a)` → `b[x:=a]`)
/// whenever no work can be duplicated — every parameter is used at most once, or its argument
/// is a bare parameter or literal. Parameter names are globally unique, so substitution is
/// trivially capture-avoiding.
///
/// The builder DSL wraps patterns in lambdas (e.g. `reduce(f, init)` becomes
/// `λxs. reduce(f)(init, xs)` and `compose` chains become nested unary lambdas), which hides
/// pattern adjacency from rules like map fusion. Normalising makes `reduce ∘ map` and
/// `map ∘ map` adjacency structural.
pub fn beta_normalize(e: &TermExpr) -> TermExpr {
    match e {
        TermExpr::Literal(_) | TermExpr::Param(_) => e.clone(),
        TermExpr::Apply { f, args } => {
            let args: Vec<TermExpr> = args.iter().map(beta_normalize).collect();
            let f = normalize_fun(f);
            if let TermFun::Lambda { params, body } = &f {
                let cheap = |a: &TermExpr| matches!(a, TermExpr::Param(_) | TermExpr::Literal(_));
                let inlinable = params.len() == args.len()
                    && params.iter().zip(&args).all(|(p, a)| {
                        cheap(a) || (count_uses(body, p) <= 1 && uses_under_binder(body, p) == 0)
                    });
                if inlinable {
                    let mut inlined = (**body).clone();
                    let bindings: HashMap<&String, &TermExpr> = params.iter().zip(&args).collect();
                    substitute(&mut inlined, &bindings);
                    return beta_normalize(&inlined);
                }
            }
            TermExpr::Apply { f, args }
        }
    }
}

fn normalize_fun(f: &TermFun) -> TermFun {
    match f {
        TermFun::Lambda { params, body } => TermFun::Lambda {
            params: params.clone(),
            body: Box::new(beta_normalize(body)),
        },
        other => {
            let mut out = other.clone();
            if let Some(nested) = out.nested_mut() {
                *nested = normalize_fun(nested);
            }
            out
        }
    }
}

/// Uses of `name` that sit under a *multiplying* binder: the body of a lambda nested inside
/// a pattern function (`map(λy. …name…)`, `reduce(λacc x. …name…)`, …), which runs once per
/// element. Substituting an argument into such a position duplicates its work — and, worse,
/// moves any memory placement it carries (`toLocal` cooperative staging bound outside a
/// `mapLcl` nest) into a per-work-item context, turning a work-group-level copy into a data
/// race. A directly applied lambda (`(λx. …)(a)`) runs once, so its body is transparent.
fn uses_under_binder(e: &TermExpr, name: &str) -> usize {
    match e {
        TermExpr::Literal(_) | TermExpr::Param(_) => 0,
        TermExpr::Apply { f, args } => {
            let in_f = match f {
                TermFun::Lambda { body, .. } => uses_under_binder(body, name),
                other => other.nested().map_or(0, |_| count_uses_fun(other, name)),
            };
            in_f + args
                .iter()
                .map(|a| uses_under_binder(a, name))
                .sum::<usize>()
        }
    }
}

fn count_uses(e: &TermExpr, name: &str) -> usize {
    match e {
        TermExpr::Literal(_) => 0,
        TermExpr::Param(n) => usize::from(n == name),
        TermExpr::Apply { f, args } => {
            count_uses_fun(f, name) + args.iter().map(|a| count_uses(a, name)).sum::<usize>()
        }
    }
}

fn count_uses_fun(f: &TermFun, name: &str) -> usize {
    match f {
        TermFun::Lambda { body, .. } => count_uses(body, name),
        other => other.nested().map_or(0, |g| count_uses_fun(g, name)),
    }
}

fn substitute(e: &mut TermExpr, bindings: &HashMap<&String, &TermExpr>) {
    match e {
        TermExpr::Literal(_) => {}
        TermExpr::Param(n) => {
            if let Some(v) = bindings.get(n) {
                *e = (*v).clone();
            }
        }
        TermExpr::Apply { f, args } => {
            substitute_fun(f, bindings);
            for a in args {
                substitute(a, bindings);
            }
        }
    }
}

fn substitute_fun(f: &mut TermFun, bindings: &HashMap<&String, &TermExpr>) {
    match f {
        TermFun::Lambda { body, .. } => substitute(body, bindings),
        other => {
            if let Some(g) = other.nested_mut() {
                substitute_fun(g, bindings);
            }
        }
    }
}

/// Strips the uniqueness suffix for display.
fn display_name(name: &str) -> String {
    match name.split_once('#') {
        Some((base, _)) => base.to_string(),
        None => name.to_string(),
    }
}

/// The display prefix of a unique name, without allocating.
fn display_prefix(name: &str) -> &str {
    match name.split_once('#') {
        Some((base, _)) => base,
        None => name,
    }
}

// ------------------------------------------------------------------ structural hashing
//
// The exploration driver dedups candidates by a 64-bit *canonical* structural hash instead of
// retaining every candidate's full pretty-printed `Program` string. To keep the dedup
// semantics identical to the old string key, the hash walks the term applying exactly the two
// normalisations `to_program()` + pretty-printing apply:
//
// * parameter names are hashed by their *display* prefix (the `#id` uniqueness suffix is
//   stripped by `to_program`, so alpha-variants that print identically hash identically), and
// * eta-redexes in pattern-nested position (`λx. p(x)` where `p` is not a lambda and does not
//   capture `x`) are contracted on the fly, mirroring [`ToProgram::nested`].
//
// Everything the printed form distinguishes, the hash distinguishes (plus a little more:
// reorder functions and zip arities, which the printer elides but no rewrite rule varies
// independently of the surrounding structure).

/// A deterministic 64-bit FNV-1a hasher. The dedup keys must be stable across runs, threads
/// and processes (they are compared against a baseline and merged deterministically from
/// worker threads), so the randomly-seeded std `RandomState` is not usable here.
#[derive(Clone, Debug)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl StableHasher {
    /// Creates a hasher with the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher::default()
    }
}

impl std::hash::Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 = (self.0 ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl StableHasher {
    /// Hashes a string with a length prefix, so sequences of variable-length names are
    /// unambiguous (`["x", "xx"]` must not collide with `["xx", "x"]`).
    fn write_str(&mut self, s: &str) {
        use std::hash::Hasher;
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }
}

impl Term {
    /// The candidate-dedup key: a canonical structural hash combined with the term size.
    ///
    /// Two terms whose [`Term::to_program`] conversions pretty-print identically receive the
    /// same key, so deduping on this 8-byte key keeps exactly the candidate set the old
    /// `HashSet<String>` of full renderings kept — without materialising the arena program
    /// or the string.
    pub fn dedup_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = StableHasher::new();
        h.write_str(&self.name);
        for (name, ty) in &self.params {
            h.write_str(display_prefix(name));
            ty.hash(&mut h);
        }
        hash_expr_canon(&self.body, &mut h);
        h.write_usize(self.body.size());
        h.finish()
    }
}

/// Hashes the *raw* structure of an expression (unique parameter names, no eta-contraction).
/// This is the sound cache key for per-site rule applicability: two sites with equal raw
/// hashes (and equal contexts/types) present rules with literally the same input.
pub fn raw_expr_hash(e: &TermExpr) -> u64 {
    use std::hash::Hasher;
    let mut h = StableHasher::new();
    hash_expr_raw(e, &mut h);
    h.finish()
}

fn hash_expr_canon(e: &TermExpr, h: &mut StableHasher) {
    use std::hash::Hasher;
    match e {
        TermExpr::Literal(Literal::Float(v)) => {
            h.write_u8(0);
            h.write_u32(v.to_bits());
        }
        TermExpr::Literal(Literal::Int(v)) => {
            h.write_u8(1);
            h.write_i64(*v);
        }
        TermExpr::Param(name) => {
            h.write_u8(2);
            h.write_str(display_prefix(name));
        }
        TermExpr::Apply { f, args } => {
            h.write_u8(3);
            hash_fun_canon(f, h);
            h.write_usize(args.len());
            for a in args {
                hash_expr_canon(a, h);
            }
        }
    }
}

/// Mirrors [`ToProgram::nested`]: contracts `λx. p(x)` to `p` before hashing, under exactly
/// the conditions the converter contracts it.
fn hash_nested_canon(f: &TermFun, h: &mut StableHasher) {
    if let TermFun::Lambda { params, body } = f {
        if let TermExpr::Apply { f: inner, args } = body.as_ref() {
            let direct = params.len() == args.len()
                && params.iter().zip(args).all(|(p, a)| match a {
                    TermExpr::Param(n) => n == p,
                    _ => false,
                })
                && !matches!(inner, TermFun::Lambda { .. })
                && params.iter().all(|p| count_uses_fun(inner, p) == 0);
            if direct {
                hash_fun_canon(inner, h);
                return;
            }
        }
    }
    hash_fun_canon(f, h);
}

#[allow(clippy::too_many_lines)]
fn hash_fun_canon(f: &TermFun, h: &mut StableHasher) {
    use std::hash::{Hash, Hasher};
    match f {
        TermFun::Lambda { params, body } => {
            h.write_u8(10);
            h.write_usize(params.len());
            for p in params {
                h.write_str(display_prefix(p));
            }
            hash_expr_canon(body, h);
        }
        TermFun::UserFun(uf) => {
            h.write_u8(11);
            h.write_str(uf.name());
            h.write_usize(uf.arity());
        }
        TermFun::Map(g) => {
            h.write_u8(12);
            hash_nested_canon(g, h);
        }
        TermFun::Reduce(g) => {
            h.write_u8(13);
            hash_nested_canon(g, h);
        }
        TermFun::MapSeq(g) => {
            h.write_u8(14);
            hash_nested_canon(g, h);
        }
        TermFun::MapGlb(dim, g) => {
            h.write_u8(15);
            h.write_u8(*dim);
            hash_nested_canon(g, h);
        }
        TermFun::MapWrg(dim, g) => {
            h.write_u8(16);
            h.write_u8(*dim);
            hash_nested_canon(g, h);
        }
        TermFun::MapLcl(dim, g) => {
            h.write_u8(17);
            h.write_u8(*dim);
            hash_nested_canon(g, h);
        }
        TermFun::MapVec(g) => {
            h.write_u8(18);
            hash_nested_canon(g, h);
        }
        TermFun::ReduceSeq(g) => {
            h.write_u8(19);
            hash_nested_canon(g, h);
        }
        TermFun::Iterate(n, g) => {
            h.write_u8(20);
            h.write_u64(*n);
            hash_nested_canon(g, h);
        }
        TermFun::ToGlobal(g) => {
            h.write_u8(21);
            hash_nested_canon(g, h);
        }
        TermFun::ToLocal(g) => {
            h.write_u8(22);
            hash_nested_canon(g, h);
        }
        TermFun::ToPrivate(g) => {
            h.write_u8(23);
            hash_nested_canon(g, h);
        }
        TermFun::Id => h.write_u8(24),
        TermFun::Split(chunk) => {
            h.write_u8(25);
            chunk.hash(h);
        }
        TermFun::Join => h.write_u8(26),
        TermFun::Gather(r) => {
            h.write_u8(27);
            hash_reorder(r, h);
        }
        TermFun::Scatter(r) => {
            h.write_u8(28);
            hash_reorder(r, h);
        }
        TermFun::Transpose => h.write_u8(29),
        TermFun::Zip(arity) => {
            h.write_u8(30);
            h.write_usize(*arity);
        }
        TermFun::Get(index) => {
            h.write_u8(31);
            h.write_usize(*index);
        }
        TermFun::Slide(size, step) => {
            h.write_u8(32);
            size.hash(h);
            step.hash(h);
        }
        TermFun::Pad(left, right, mode) => {
            h.write_u8(35);
            left.hash(h);
            right.hash(h);
            h.write_u8(*mode as u8);
        }
        TermFun::AsVector(width) => {
            h.write_u8(33);
            h.write_usize(*width);
        }
        TermFun::AsScalar => h.write_u8(34),
    }
}

fn hash_reorder(r: &Reorder, h: &mut StableHasher) {
    use std::hash::{Hash, Hasher};
    match r {
        Reorder::Identity => h.write_u8(0),
        Reorder::Reverse => h.write_u8(1),
        Reorder::Stride(s) => {
            h.write_u8(2);
            s.hash(h);
        }
    }
}

fn hash_expr_raw(e: &TermExpr, h: &mut StableHasher) {
    use std::hash::Hasher;
    match e {
        TermExpr::Literal(Literal::Float(v)) => {
            h.write_u8(0);
            h.write_u32(v.to_bits());
        }
        TermExpr::Literal(Literal::Int(v)) => {
            h.write_u8(1);
            h.write_i64(*v);
        }
        TermExpr::Param(name) => {
            h.write_u8(2);
            h.write_str(name);
        }
        TermExpr::Apply { f, args } => {
            h.write_u8(3);
            hash_fun_raw(f, h);
            h.write_usize(args.len());
            for a in args {
                hash_expr_raw(a, h);
            }
        }
    }
}

fn hash_fun_raw(f: &TermFun, h: &mut StableHasher) {
    use std::hash::{Hash, Hasher};
    match f {
        TermFun::Lambda { params, body } => {
            h.write_u8(10);
            h.write_usize(params.len());
            for p in params {
                h.write_str(p);
            }
            hash_expr_raw(body, h);
        }
        // Rules may inspect the whole user-function definition (e.g. `partial-reduce` probes
        // the body for neutrality of the initialiser), so the raw hash covers all of it.
        TermFun::UserFun(uf) => {
            h.write_u8(11);
            h.write_str(uf.name());
            for t in uf.param_types() {
                t.hash(h);
            }
            uf.return_type().hash(h);
            h.write_u8(u8::from(uf.is_assoc_commutative()));
            hash_scalar_expr(uf.body(), h);
        }
        other => match other.nested() {
            Some(g) => {
                hash_fun_tag(other, h);
                hash_fun_raw(g, h);
            }
            // Leaf patterns carry no names and no nested function: the canonical walk
            // already hashes their full structure.
            None => hash_fun_canon(other, h),
        },
    }
}

fn hash_scalar_expr(e: &lift_ir::ScalarExpr, h: &mut StableHasher) {
    use lift_ir::ScalarExpr;
    use std::hash::Hasher;
    match e {
        ScalarExpr::Param(i) => {
            h.write_u8(0);
            h.write_usize(*i);
        }
        ScalarExpr::Get(inner, i) => {
            h.write_u8(1);
            hash_scalar_expr(inner, h);
            h.write_usize(*i);
        }
        ScalarExpr::Tuple(es) => {
            h.write_u8(2);
            h.write_usize(es.len());
            for e in es {
                hash_scalar_expr(e, h);
            }
        }
        ScalarExpr::ConstFloat(v) => {
            h.write_u8(3);
            h.write_u64(v.to_bits());
        }
        ScalarExpr::ConstInt(v) => {
            h.write_u8(4);
            h.write_i64(*v);
        }
        ScalarExpr::Bin(op, a, b) => {
            h.write_u8(5);
            h.write_u8(*op as u8);
            hash_scalar_expr(a, h);
            hash_scalar_expr(b, h);
        }
        ScalarExpr::Un(op, a) => {
            h.write_u8(6);
            h.write_u8(*op as u8);
            hash_scalar_expr(a, h);
        }
        ScalarExpr::Select(c, a, b) => {
            h.write_u8(7);
            hash_scalar_expr(c, h);
            hash_scalar_expr(a, h);
            hash_scalar_expr(b, h);
        }
    }
}

fn hash_fun_tag(f: &TermFun, h: &mut StableHasher) {
    use std::hash::Hasher;
    match f {
        TermFun::Map(_) => h.write_u8(12),
        TermFun::Reduce(_) => h.write_u8(13),
        TermFun::MapSeq(_) => h.write_u8(14),
        TermFun::MapGlb(dim, _) => {
            h.write_u8(15);
            h.write_u8(*dim);
        }
        TermFun::MapWrg(dim, _) => {
            h.write_u8(16);
            h.write_u8(*dim);
        }
        TermFun::MapLcl(dim, _) => {
            h.write_u8(17);
            h.write_u8(*dim);
        }
        TermFun::MapVec(_) => h.write_u8(18),
        TermFun::ReduceSeq(_) => h.write_u8(19),
        TermFun::Iterate(n, _) => {
            h.write_u8(20);
            h.write_u64(*n);
        }
        TermFun::ToGlobal(_) => h.write_u8(21),
        TermFun::ToLocal(_) => h.write_u8(22),
        TermFun::ToPrivate(_) => h.write_u8(23),
        _ => unreachable!("only patterns with a nested function reach hash_fun_tag"),
    }
}

struct FromProgram<'a> {
    program: &'a Program,
    names: HashMap<ExprId, String>,
}

impl FromProgram<'_> {
    /// Assigns (or retrieves) the unique name of a parameter expression.
    fn bind(&mut self, id: ExprId) -> String {
        if let Some(n) = self.names.get(&id) {
            return n.clone();
        }
        let base = match &self.program.expr(id).kind {
            ExprKind::Param { name } => name.clone(),
            _ => "p".to_string(),
        };
        let unique = format!("{base}#{}", id.index());
        self.names.insert(id, unique.clone());
        unique
    }

    fn expr(&mut self, id: ExprId) -> Result<TermExpr, TermError> {
        match self.program.expr(id).kind.clone() {
            ExprKind::Literal(l) => Ok(TermExpr::Literal(l)),
            ExprKind::Param { .. } => Ok(TermExpr::Param(self.bind(id))),
            ExprKind::FunCall { f, args } => {
                let f = self.fun(f)?;
                let args = args
                    .iter()
                    .map(|a| self.expr(*a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(TermExpr::Apply { f, args })
            }
        }
    }

    /// Converts a nested function position, eta-expanding patterns nested in patterns.
    fn nested_fun(&mut self, id: FunDeclId) -> Result<Box<TermFun>, TermError> {
        let f = self.fun(id)?;
        Ok(Box::new(match f {
            TermFun::Lambda { .. } | TermFun::UserFun(_) => f,
            pattern => {
                // Use the arena ids for the synthetic parameter names: decl ids are unique
                // within the source program, so `#e{id}` cannot collide with `#{expr_id}`.
                let unique = format!("x#e{}", id.index());
                if matches!(pattern, TermFun::Reduce(_) | TermFun::ReduceSeq(_)) {
                    let acc = format!("acc#e{}", id.index());
                    TermFun::Lambda {
                        params: vec![acc.clone(), unique.clone()],
                        body: Box::new(TermExpr::Apply {
                            f: pattern,
                            args: vec![TermExpr::Param(acc), TermExpr::Param(unique)],
                        }),
                    }
                } else {
                    TermFun::Lambda {
                        params: vec![unique.clone()],
                        body: Box::new(TermExpr::Apply {
                            f: pattern,
                            args: vec![TermExpr::Param(unique)],
                        }),
                    }
                }
            }
        }))
    }

    fn fun(&mut self, id: FunDeclId) -> Result<TermFun, TermError> {
        match self.program.decl(id).clone() {
            FunDecl::Lambda { params, body } => {
                let names = params.iter().map(|p| self.bind(*p)).collect();
                let body = self.expr(body)?;
                Ok(TermFun::Lambda {
                    params: names,
                    body: Box::new(body),
                })
            }
            FunDecl::UserFun(uf) => Ok(TermFun::UserFun(uf)),
            FunDecl::Pattern(p) => Ok(match p {
                Pattern::Map { f } => TermFun::Map(self.nested_fun(f)?),
                Pattern::Reduce { f } => TermFun::Reduce(self.nested_fun(f)?),
                Pattern::MapSeq { f } => TermFun::MapSeq(self.nested_fun(f)?),
                Pattern::MapGlb { dim, f } => TermFun::MapGlb(dim, self.nested_fun(f)?),
                Pattern::MapWrg { dim, f } => TermFun::MapWrg(dim, self.nested_fun(f)?),
                Pattern::MapLcl { dim, f } => TermFun::MapLcl(dim, self.nested_fun(f)?),
                Pattern::MapVec { f } => TermFun::MapVec(self.nested_fun(f)?),
                Pattern::ReduceSeq { f } => TermFun::ReduceSeq(self.nested_fun(f)?),
                Pattern::Iterate { n, f } => TermFun::Iterate(n, self.nested_fun(f)?),
                Pattern::ToGlobal { f } => TermFun::ToGlobal(self.nested_fun(f)?),
                Pattern::ToLocal { f } => TermFun::ToLocal(self.nested_fun(f)?),
                Pattern::ToPrivate { f } => TermFun::ToPrivate(self.nested_fun(f)?),
                Pattern::Id => TermFun::Id,
                Pattern::Split { chunk } => TermFun::Split(chunk),
                Pattern::Join => TermFun::Join,
                Pattern::Gather { reorder } => TermFun::Gather(reorder),
                Pattern::Scatter { reorder } => TermFun::Scatter(reorder),
                Pattern::Transpose => TermFun::Transpose,
                Pattern::Zip { arity } => TermFun::Zip(arity),
                Pattern::Get { index } => TermFun::Get(index),
                Pattern::Slide { size, step } => TermFun::Slide(size, step),
                Pattern::Pad { left, right, mode } => TermFun::Pad(left, right, mode),
                Pattern::AsVector { width } => TermFun::AsVector(width),
                Pattern::AsScalar => TermFun::AsScalar,
            }),
        }
    }
}

struct ToProgram<'a> {
    program: &'a mut Program,
    /// Lexical scope stack mapping unique names to arena param ids.
    scope: Vec<(String, ExprId)>,
}

impl ToProgram<'_> {
    fn lookup(&self, name: &str) -> ExprId {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
            .unwrap_or_else(|| panic!("parameter `{name}` is not in scope"))
    }

    fn expr(&mut self, e: &TermExpr) -> ExprId {
        match e {
            TermExpr::Literal(Literal::Float(v)) => self.program.literal_f32(*v),
            TermExpr::Literal(Literal::Int(v)) => self.program.literal_i64(*v),
            TermExpr::Param(name) => self.lookup(name),
            TermExpr::Apply { f, args } => {
                let f = self.fun(f);
                let args: Vec<ExprId> = args.iter().map(|a| self.expr(a)).collect();
                self.program.apply(f, args)
            }
        }
    }

    /// Converts a function in nested position, contracting eta-redexes (`λx. p(x)` → `p`).
    ///
    /// Contraction requires that the parameters do not *also* occur free inside `p` itself
    /// (e.g. `λx. mapSeq(λy. add(x, y))(x)` must keep its binder, or `x` becomes unbound).
    fn nested(&mut self, f: &TermFun) -> FunDeclId {
        if let TermFun::Lambda { params, body } = f {
            if let TermExpr::Apply { f: inner, args } = body.as_ref() {
                let direct = params.len() == args.len()
                    && params.iter().zip(args).all(|(p, a)| match a {
                        TermExpr::Param(n) => n == p,
                        _ => false,
                    })
                    && !matches!(inner, TermFun::Lambda { .. })
                    && params.iter().all(|p| count_uses_fun(inner, p) == 0);
                if direct {
                    return self.fun(inner);
                }
            }
        }
        self.fun(f)
    }

    fn fun(&mut self, f: &TermFun) -> FunDeclId {
        match f {
            TermFun::Lambda { params, body } => {
                let mut ids = Vec::with_capacity(params.len());
                for name in params {
                    let id = self.program.untyped_param(display_name(name));
                    self.scope.push((name.clone(), id));
                    ids.push(id);
                }
                let body = self.expr(body);
                self.scope.truncate(self.scope.len() - params.len());
                self.program.add_decl(FunDecl::Lambda { params: ids, body })
            }
            TermFun::UserFun(uf) => self.program.user_fun(uf.clone()),
            TermFun::Map(g) => {
                let g = self.nested(g);
                self.program.map(g)
            }
            TermFun::Reduce(g) => {
                let g = self.nested(g);
                self.program.reduce_pattern(g)
            }
            TermFun::MapSeq(g) => {
                let g = self.nested(g);
                self.program.map_seq(g)
            }
            TermFun::MapGlb(dim, g) => {
                let g = self.nested(g);
                self.program.map_glb(*dim, g)
            }
            TermFun::MapWrg(dim, g) => {
                let g = self.nested(g);
                self.program.map_wrg(*dim, g)
            }
            TermFun::MapLcl(dim, g) => {
                let g = self.nested(g);
                self.program.map_lcl(*dim, g)
            }
            TermFun::MapVec(g) => {
                let g = self.nested(g);
                self.program.map_vec(g)
            }
            TermFun::ReduceSeq(g) => {
                let g = self.nested(g);
                self.program.reduce_seq_pattern(g)
            }
            TermFun::Iterate(n, g) => {
                let g = self.nested(g);
                self.program.iterate(*n, g)
            }
            TermFun::ToGlobal(g) => {
                let g = self.nested(g);
                self.program.to_global(g)
            }
            TermFun::ToLocal(g) => {
                let g = self.nested(g);
                self.program.to_local(g)
            }
            TermFun::ToPrivate(g) => {
                let g = self.nested(g);
                self.program.to_private(g)
            }
            TermFun::Id => self.program.id_pattern(),
            TermFun::Split(chunk) => self.program.split(chunk.clone()),
            TermFun::Join => self.program.join(),
            TermFun::Gather(r) => self.program.gather(r.clone()),
            TermFun::Scatter(r) => self.program.scatter(r.clone()),
            TermFun::Transpose => self.program.transpose(),
            TermFun::Zip(arity) => self.program.zip(*arity),
            TermFun::Get(index) => self.program.get(*index),
            TermFun::Slide(size, step) => self.program.slide(size.clone(), step.clone()),
            TermFun::Pad(left, right, mode) => self.program.pad(left.clone(), right.clone(), *mode),
            TermFun::AsVector(width) => self.program.as_vector(*width),
            TermFun::AsScalar => self.program.as_scalar(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_interp::{evaluate, Value};

    fn high_level_dot(n: usize) -> Program {
        let mut p = Program::new("dot");
        let mult = p.user_fun(UserFun::mult_pair());
        let add = p.user_fun(UserFun::add());
        let m = p.map(mult);
        let red = p.reduce(add, 0.0);
        let z = p.zip2();
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), n)),
                ("y", Type::array(Type::float(), n)),
            ],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                let mapped = p.apply1(m, zipped);
                p.apply1(red, mapped)
            },
        );
        p
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let p = high_level_dot(8);
        let term = Term::from_program(&p).expect("converts");
        let q = term.to_program();
        let x = Value::from_f32_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let y = Value::from_f32_slice(&[8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0]);
        let a = evaluate(&p, &[x.clone(), y.clone()]).unwrap().flatten_f32();
        let b = evaluate(&q, &[x, y]).unwrap().flatten_f32();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_contracts_eta_redexes() {
        // map(map f) converts to an eta-expanded tree and back to the compact nesting.
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let inner = p.map_seq(id);
        let outer = p.map_seq(inner);
        p.with_root(
            vec![("x", Type::array(Type::array(Type::float(), 2usize), 3usize))],
            |p, params| p.apply1(outer, params[0]),
        );
        let term = Term::from_program(&p).expect("converts");
        // The eta-expanded tree exposes the inner pattern application…
        let TermExpr::Apply {
            f: TermFun::MapSeq(nested),
            ..
        } = &term.body
        else {
            panic!("expected a mapSeq application, got {:?}", term.body);
        };
        assert!(matches!(nested.as_ref(), TermFun::Lambda { .. }));
        // …and the round trip restores the compact form.
        let q = term.to_program();
        assert_eq!(p.to_string(), q.to_string());
    }

    #[test]
    fn eta_contraction_keeps_binders_captured_inside_the_pattern() {
        // outer = mapSeq(λx. mapSeq(λy. add(x, y))(x)): the nested lambda's parameter is
        // captured inside the inner pattern's function, so `λx. P(x)` must NOT contract.
        let mut p = Program::new("capture");
        let add = p.user_fun(UserFun::add());
        let lam = p.lambda(&["x"], |p, params| {
            let x = params[0];
            let inner = p.lambda(&["y"], |p, ps| p.apply(add, [x, ps[0]]));
            let ms = p.map_seq(inner);
            p.apply1(ms, x)
        });
        let outer = p.map_seq(lam);
        p.with_root(
            vec![(
                "xs",
                Type::array(Type::array(Type::float(), 2usize), 3usize),
            )],
            |p, params| p.apply1(outer, params[0]),
        );
        let term = Term::from_program(&p).expect("converts");
        let q = term.to_program(); // must not panic on an unbound parameter
                                   // The capturing lambda must survive the round trip un-contracted.
        assert_eq!(p.to_string(), q.to_string());
        let FunDecl::Pattern(Pattern::MapSeq { f }) = q.decl(match q.decl(q.root().unwrap()) {
            FunDecl::Lambda { body, .. } => match &q.expr(*body).kind {
                ExprKind::FunCall { f, .. } => *f,
                other => panic!("expected a call, got {other:?}"),
            },
            _ => unreachable!(),
        }) else {
            panic!("expected the outer mapSeq");
        };
        assert!(
            matches!(q.decl(*f), FunDecl::Lambda { .. }),
            "the capturing lambda was eta-contracted away"
        );
    }

    #[test]
    fn listing1_round_trips_through_the_tree_form() {
        // The full Listing 1 program exercises compose lambdas, iterate, toLocal/toGlobal.
        let p = lift_benchmark_dot(256);
        let term = Term::from_program(&p).expect("converts");
        let q = term.to_program();
        let x: Vec<f32> = (0..256).map(|i| (i % 7) as f32).collect();
        let y: Vec<f32> = (0..256).map(|i| (i % 5) as f32 * 0.5).collect();
        let a = evaluate(&p, &[Value::from_f32_slice(&x), Value::from_f32_slice(&y)])
            .unwrap()
            .flatten_f32();
        let b = evaluate(&q, &[Value::from_f32_slice(&x), Value::from_f32_slice(&y)])
            .unwrap()
            .flatten_f32();
        assert_eq!(a, b);
    }

    /// A local copy of the Listing 1 builder (the benchmarks crate depends on this one's
    /// siblings, so the test rebuilds the program instead of importing it).
    fn lift_benchmark_dot(n: usize) -> Program {
        let mut p = Program::new("partialDot");
        let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
        let add = p.user_fun(UserFun::add());
        let red1 = p.reduce_seq(mult_add, 0.0);
        let copy_l1 = p.copy_to_local();
        let step1_f = p.compose(&[copy_l1, red1]);
        let step1_map = p.map_lcl(0, step1_f);
        let s2a = p.split(2usize);
        let j1 = p.join();
        let step1 = p.compose(&[j1, step1_map, s2a]);

        let red2 = p.reduce_seq(add, 0.0);
        let copy_l2 = p.copy_to_local();
        let step2_f = p.compose(&[copy_l2, red2]);
        let step2_map = p.map_lcl(0, step2_f);
        let s2b = p.split(2usize);
        let j2 = p.join();
        let iter_body = p.compose(&[j2, step2_map, s2b]);
        let step2 = p.iterate(6, iter_body);

        let copy_g = p.copy_to_global();
        let m_copy = p.map_lcl(0, copy_g);
        let s1 = p.split(1usize);
        let j3 = p.join();
        let step3 = p.compose(&[j3, m_copy, s1]);

        let wg_body = p.compose(&[step3, step2, step1]);
        let wg = p.map_wrg(0, wg_body);
        let s128 = p.split(128usize);
        let jout = p.join();
        let z = p.zip2();
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), n)),
                ("y", Type::array(Type::float(), n)),
            ],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                let split = p.apply1(s128, zipped);
                let mapped = p.apply1(wg, split);
                p.apply1(jout, mapped)
            },
        );
        p
    }
}
