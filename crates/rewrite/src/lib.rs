//! # Rewrite-rule engine and cost-guided exploration
//!
//! The Lift approach (and its companion paper *Generating Performance Portable Code using
//! Rewrite Rules*, Steuwer et al.) starts from *high-level*, backend-agnostic expressions
//! built from `map` and `reduce`, and derives OpenCL-specific implementations by applying
//! semantics-preserving rewrite rules. This crate supplies that missing front half of the
//! pipeline:
//!
//! * [`term`] — a tree-shaped mirror of the arena IR that rules pattern-match on, with
//!   lossless conversions in both directions,
//! * [`traversal`] — location-based traversal: every application site, its enclosing
//!   parallel-pattern context and derived argument types,
//! * [`rules`] — the algorithmic rules (map fusion, split-join with arithmetically checked
//!   divisibility, partial reduction, iterate decomposition, data-layout identities) and the
//!   OpenCL lowering rules (`map` → `mapGlb` / `mapWrg ∘ mapLcl` / `mapSeq` / vectorised
//!   `mapVec`, `reduce` → `reduceSeq`, `toLocal`/`toGlobal`/`toPrivate` placement),
//! * [`mod@explore`] — the exploration driver: applies rules under a depth/width budget,
//!   re-typechecks every derived program, validates fully lowered candidates against the
//!   reference interpreter on the virtual GPU and ranks them with the analytical cost model.
//!
//! ```
//! use lift_ir::prelude::*;
//! use lift_rewrite::{explore, ExplorationConfig};
//! use lift_vgpu::LaunchConfig;
//!
//! // A high-level program: square every element (no OpenCL patterns anywhere).
//! let mut p = Program::new("square");
//! let mult = p.user_fun(UserFun::mult());
//! let sq = p.lambda(&["v"], |p, params| p.apply(mult, [params[0], params[0]]));
//! let m = p.map(sq);
//! p.with_root(vec![("x", Type::array(Type::float(), 64usize))], |p, params| {
//!     p.apply1(m, params[0])
//! });
//!
//! let config = ExplorationConfig {
//!     launch: LaunchConfig::d1(16, 4),
//!     ..ExplorationConfig::default()
//! };
//! let result = explore(&p, &config).expect("exploration runs");
//! assert!(!result.variants.is_empty());
//! // The best variant is fully lowered and compiled to OpenCL.
//! assert!(result.variants[0].kernel_source.contains("kernel void"));
//! ```

pub mod explore;
pub mod rules;
pub mod term;
pub mod traversal;
pub mod typecheck;

pub use explore::{
    enumerate, explore, DedupKey, DerivationStep, Enumerated, Exploration, ExplorationConfig,
    ExploreError, Variant,
};
pub use rules::{all_rules, divides, Rule, RuleCx, RuleKind, RuleOptions};
pub use term::{beta_normalize, raw_expr_hash, StableHasher, Term, TermError, TermExpr, TermFun};
pub use traversal::{
    format_location, get, infer_type, replace, sites, Location, NestContext, Site, Step,
};
pub use typecheck::typecheck;
