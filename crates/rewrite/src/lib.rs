//! # Rewrite-rule engine and cost-guided exploration
//!
//! The Lift approach (and its companion paper *Generating Performance Portable Code using
//! Rewrite Rules*, Steuwer et al.) starts from *high-level*, backend-agnostic expressions
//! built from `map` and `reduce`, and derives OpenCL-specific implementations by applying
//! semantics-preserving rewrite rules. This crate supplies that missing front half of the
//! pipeline:
//!
//! * [`term`] — a tree-shaped mirror of the arena IR that rules pattern-match on, with
//!   lossless conversions in both directions,
//! * [`traversal`] — location-based traversal: every application site, its enclosing
//!   parallel-pattern context and derived argument types,
//! * [`rules`] — the algorithmic rules (map fusion, split-join with arithmetically checked
//!   divisibility, partial reduction, iterate decomposition, data-layout identities) and the
//!   OpenCL lowering rules (`map` → `mapGlb` / `mapWrg ∘ mapLcl` / `mapSeq` / vectorised
//!   `mapVec`, `reduce` → `reduceSeq`, `toLocal`/`toGlobal`/`toPrivate` placement),
//! * [`mod@explore`] — the exploration driver: applies rules under a depth/width budget,
//!   re-typechecks every derived program, validates fully lowered candidates against the
//!   reference interpreter on the virtual GPU and ranks them with the analytical cost model,
//! * [`mod@provenance`] — replay and transcript rendering for recorded derivation chains.
//!
//! ```
//! use lift_ir::prelude::*;
//! use lift_rewrite::{explore, ExplorationConfig};
//! use lift_vgpu::LaunchConfig;
//!
//! // A high-level program: square every element (no OpenCL patterns anywhere).
//! let mut p = Program::new("square");
//! let mult = p.user_fun(UserFun::mult());
//! let sq = p.lambda(&["v"], |p, params| p.apply(mult, [params[0], params[0]]));
//! let m = p.map(sq);
//! p.with_root(vec![("x", Type::array(Type::float(), 64usize))], |p, params| {
//!     p.apply1(m, params[0])
//! });
//!
//! let config = ExplorationConfig {
//!     launch: LaunchConfig::d1(16, 4),
//!     ..ExplorationConfig::default()
//! };
//! let result = explore(&p, &config).expect("exploration runs");
//! assert!(!result.variants.is_empty());
//! // The best variant is fully lowered and compiled to OpenCL.
//! assert!(result.variants[0].kernel_source.contains("kernel void"));
//! ```
//!
//! # Telemetry
//!
//! Every entry point has a `_with` twin taking a [`lift_telemetry::Collector`]
//! ([`explore_with`], [`enumerate_with`], [`Enumerated::score_with`]): the search then emits
//! per-round beam statistics (`BeamRound`), per-rule fire/reject counts (`RuleRound`),
//! scoring-phase spans (`typecheck`/`compile`/`execute`/`score` inside an `enumerate` span)
//! and the ranked variants. The plain entry points use the `Null` collector, whose disabled
//! state reduces every instrumentation site to a branch — exploration throughput is
//! unchanged. Setting [`ExplorationConfig::trace_rejections`] additionally emits one
//! `Rejection` event (with its rendered site) per rejected rewrite.
//!
//! # Reading a derivation transcript
//!
//! Each returned [`Variant`] carries its derivation chain: one [`DerivationStep`] per
//! applied rule, with the rule name, its family (`Algorithmic` identity or OpenCL
//! `Lowering`), the structured site [`Location`] (rendered like `.arg0.fun1.body`: descend
//! into argument 0, then into the lambda body behind one pattern layer), and which
//! `alternative` the rule chose when it offered several (e.g. one per dividing split
//! factor). [`provenance::replay`] runs a chain back through the engine and reproduces the
//! exact derived term; [`provenance::explain`] renders the whole walkthrough:
//!
//! ```text
//! derivation of `dot` in 3 steps
//!
//! initial program:
//!     join (map (reduce add 0.0) (split 32 (map mult (zip x y))))
//!
//! step 1: apply map-to-mapGlb [Lowering] at .arg0 (alternative 0)
//!     join (mapGlb (reduce add 0.0) (split 32 (map mult (zip x y))))
//! ...
//! ```
//!
//! Read it top to bottom: every section shows the whole program *after* that rule fired, so
//! the transformation at each step is the diff between consecutive sections. The first
//! lowering decision is usually the interesting one — it fixes how work maps onto the
//! OpenCL thread hierarchy; everything after refines memory placement and sequential
//! residue. `examples/explain_dot_product.rs` prints this transcript for the paper's
//! Listing-1 dot product.

pub mod explore;
pub mod provenance;
pub mod rules;
pub mod term;
pub mod traversal;
pub mod typecheck;

pub use explore::{
    canonical_key, enumerate, enumerate_with, explore, explore_with, CanonicalKey, DedupKey,
    DerivationStep, Enumerated, Exploration, ExplorationConfig, ExploreError, Variant,
};
pub use provenance::{explain, replay, ExplainedStep, Explanation, ReplayError};
pub use rules::{
    all_rules, divides, Rule, RuleCx, RuleKind, RuleOptions, TileSize, RULE_SET_VERSION,
};
pub use term::{beta_normalize, raw_expr_hash, StableHasher, Term, TermError, TermExpr, TermFun};
pub use traversal::{
    format_location, get, infer_type, replace, sites, Location, NestContext, Site, Step,
};
pub use typecheck::typecheck;
