//! The rewrite rules.
//!
//! Two families, following *Generating Performance Portable Code using Rewrite Rules*
//! (Steuwer et al., arXiv:1502.02389):
//!
//! * **Algorithmic rules** are provably semantics-preserving identities between high-level
//!   expressions: map fusion, the split-join decomposition (with arithmetically checked
//!   divisibility of the split factor), partial-reduction promotion, iterate decomposition
//!   and the data-layout identities (`transpose ∘ transpose = id`, `scatter f ∘ gather f =
//!   id`, `join ∘ split n = id`).
//! * **Lowering rules** map the backend-agnostic `map`/`reduce` onto the OpenCL-specific
//!   patterns: `mapGlb`, `mapWrg ∘ mapLcl` (with a work-group split), `mapSeq`,
//!   `mapVec`-based vectorisation via `asVector`/`asScalar`, `reduceSeq`, and the
//!   `toLocal`/`toGlobal`/`toPrivate` memory-placement wrappers. Lowering rules carry side
//!   conditions over the [`NestContext`] (e.g. `mapLcl` is only legal inside a `mapWrg`) so
//!   the exploration only produces structurally legal OpenCL nestings.
//!
//! Every rule is *local*: it matches one application site ([`crate::traversal::Site`]) and
//! returns zero or more replacement expressions. The exploration driver re-typechecks every
//! derived program, so rules may be liberal as long as they preserve semantics.

use lift_arith::ArithExpr;
use lift_interp::Value;
use lift_ir::Type;

use crate::term::{FreshNames, TermExpr, TermFun};
use crate::traversal::{infer_type, NestContext, TypeEnv};

/// Which family a rule belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleKind {
    /// Semantics-preserving identity between high-level expressions.
    Algorithmic,
    /// Maps high-level patterns onto OpenCL-specific ones.
    Lowering,
}

/// Numeric knobs the parameterised rules draw from.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RuleOptions {
    /// Candidate `split` factors (checked for divisibility against the array length).
    pub split_sizes: Vec<i64>,
    /// Candidate vector widths for the vectorisation rule.
    pub vector_widths: Vec<usize>,
}

impl Default for RuleOptions {
    fn default() -> Self {
        RuleOptions {
            split_sizes: vec![2, 4, 8],
            vector_widths: vec![4],
        }
    }
}

/// Everything a rule may consult at a site.
pub struct RuleCx<'a> {
    /// The enclosing parallel patterns.
    pub context: NestContext,
    /// Types of the site's arguments, where derivable.
    pub arg_types: &'a [Option<Type>],
    /// Parameter types in scope at the site (for typing arbitrary subexpressions).
    pub env: &'a TypeEnv,
    /// Numeric knobs.
    pub options: &'a RuleOptions,
    /// Fresh-name supply for synthesised lambdas.
    pub fresh: &'a mut FreshNames,
}

impl RuleCx<'_> {
    /// The element type and length of the site's first argument, if it is an array.
    fn arg0_array(&self) -> Option<(Type, ArithExpr)> {
        self.arg_types
            .first()?
            .as_ref()?
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
    }

    /// Split factors that provably divide `len` (rule 1 of Section 5.3: `c` divides `len`
    /// exactly when the normalised remainder is the constant zero).
    fn dividing_splits(&self, len: &ArithExpr) -> Vec<i64> {
        self.options
            .split_sizes
            .iter()
            .copied()
            .filter(|c| *c > 1 && divides(*c, len))
            .collect()
    }
}

/// Arithmetically checked divisibility: `c | len` iff `len mod c` normalises to 0.
pub fn divides(c: i64, len: &ArithExpr) -> bool {
    (len.clone() % ArithExpr::cst(c)).is_cst(0)
}

/// Checks that the literal initialiser is neutral for the binary operator by probing
/// `op(z, t) == t == op(t, z)` over a spread of values. Reordering rules such as partial
/// reduction apply the initialiser once per chunk, which is only sound when it is neutral
/// (`reduce(add, 1.0)` over `k` chunks would otherwise add `1.0` `k` extra times).
fn is_neutral_init(uf: &lift_ir::UserFun, init: &TermExpr) -> bool {
    let TermExpr::Literal(lift_ir::Literal::Float(z)) = init else {
        return false;
    };
    const PROBES: [f32; 6] = [-3.5, -1.0, 0.0, 0.25, 2.0, 7.5];
    PROBES.iter().all(|t| {
        let left = lift_interp::eval_scalar(uf.body(), &[Value::Float(*z), Value::Float(*t)]);
        let right = lift_interp::eval_scalar(uf.body(), &[Value::Float(*t), Value::Float(*z)]);
        left.as_f32() == Some(*t) && right.as_f32() == Some(*t)
    })
}

/// A named rewrite rule.
pub struct Rule {
    /// The rule name shown in derivation chains.
    pub name: &'static str,
    /// The rule family.
    pub kind: RuleKind,
    apply: fn(&TermExpr, &mut RuleCx) -> Vec<TermExpr>,
}

impl Rule {
    /// All rewrites this rule can perform at the given site.
    pub fn applications(&self, site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
        (self.apply)(site, cx)
    }
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

/// The complete rule set.
pub fn all_rules() -> &'static [Rule] {
    const RULES: &[Rule] = &[
        // -------------------------------------------------------- algorithmic
        Rule {
            name: "map-fusion",
            kind: RuleKind::Algorithmic,
            apply: map_fusion,
        },
        Rule {
            name: "reduce-map-fusion",
            kind: RuleKind::Algorithmic,
            apply: reduce_map_fusion,
        },
        Rule {
            name: "split-join",
            kind: RuleKind::Algorithmic,
            apply: split_join,
        },
        Rule {
            name: "partial-reduce",
            kind: RuleKind::Algorithmic,
            apply: partial_reduce,
        },
        Rule {
            name: "iterate-decomposition",
            kind: RuleKind::Algorithmic,
            apply: iterate_decomposition,
        },
        Rule {
            name: "split-join-id",
            kind: RuleKind::Algorithmic,
            apply: split_join_id,
        },
        Rule {
            name: "transpose-transpose-id",
            kind: RuleKind::Algorithmic,
            apply: transpose_transpose_id,
        },
        Rule {
            name: "gather-scatter-id",
            kind: RuleKind::Algorithmic,
            apply: gather_scatter_id,
        },
        Rule {
            name: "map-join-promotion",
            kind: RuleKind::Algorithmic,
            apply: map_join_promotion,
        },
        Rule {
            name: "split-map-promotion",
            kind: RuleKind::Algorithmic,
            apply: split_map_promotion,
        },
        Rule {
            name: "reduceSeq-mapSeq-fusion",
            kind: RuleKind::Algorithmic,
            apply: reduce_seq_map_seq_fusion,
        },
        // ----------------------------------------------------------- lowering
        Rule {
            name: "map-to-mapSeq",
            kind: RuleKind::Lowering,
            apply: map_to_map_seq,
        },
        Rule {
            name: "map-to-mapGlb",
            kind: RuleKind::Lowering,
            apply: map_to_map_glb,
        },
        Rule {
            name: "map-to-mapWrg-mapLcl",
            kind: RuleKind::Lowering,
            apply: map_to_wrg_lcl,
        },
        Rule {
            name: "map-to-mapLcl",
            kind: RuleKind::Lowering,
            apply: map_to_map_lcl,
        },
        Rule {
            name: "map-vectorise",
            kind: RuleKind::Lowering,
            apply: map_vectorise,
        },
        Rule {
            name: "reduce-to-reduceSeq",
            kind: RuleKind::Lowering,
            apply: reduce_to_reduce_seq,
        },
        Rule {
            name: "wrap-toLocal",
            kind: RuleKind::Lowering,
            apply: wrap_to_local,
        },
        Rule {
            name: "wrap-toGlobal",
            kind: RuleKind::Lowering,
            apply: wrap_to_global,
        },
        Rule {
            name: "wrap-toPrivate",
            kind: RuleKind::Lowering,
            apply: wrap_to_private,
        },
    ];
    RULES
}

// ---------------------------------------------------------------------- helpers

/// Matches `map(f)(x)`, returning the mapped function and input.
fn as_map(site: &TermExpr) -> Option<(&TermFun, &TermExpr)> {
    match site {
        TermExpr::Apply {
            f: TermFun::Map(g),
            args,
        } if args.len() == 1 => Some((g, &args[0])),
        _ => None,
    }
}

/// `λx. outer(inner(x))`.
fn composed(outer: &TermFun, inner: &TermFun, fresh: &mut FreshNames) -> TermFun {
    let x = fresh.next("x");
    TermFun::Lambda {
        params: vec![x.clone()],
        body: Box::new(TermExpr::apply1(
            outer.clone(),
            TermExpr::apply1(inner.clone(), TermExpr::Param(x)),
        )),
    }
}

/// `map(f)` with the nested function eta-wrapped when it is itself a pattern (keeping the
/// invariant that pattern applications stay visible to the traversal).
fn map_of(f: TermFun, fresh: &mut FreshNames) -> TermFun {
    TermFun::Map(Box::new(f.eta(fresh)))
}

/// Does the subtree introduce work-item/work-group parallelism already?
fn fun_contains_parallel(f: &TermFun) -> bool {
    match f {
        TermFun::MapGlb(..) | TermFun::MapWrg(..) | TermFun::MapLcl(..) => true,
        TermFun::Lambda { body, .. } => expr_contains_parallel(body),
        other => other.nested().is_some_and(fun_contains_parallel),
    }
}

fn expr_contains_parallel(e: &TermExpr) -> bool {
    match e {
        TermExpr::Literal(_) | TermExpr::Param(_) => false,
        TermExpr::Apply { f, args } => {
            fun_contains_parallel(f) || args.iter().any(expr_contains_parallel)
        }
    }
}

// ---------------------------------------------------------------- algorithmic rules

/// `map f ∘ map g` → `map (f ∘ g)`.
fn map_fusion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, inner)) = as_map(site) else {
        return Vec::new();
    };
    let Some((g, x)) = as_map(inner) else {
        return Vec::new();
    };
    vec![TermExpr::apply1(
        TermFun::Map(Box::new(composed(f, g, cx.fresh))),
        x.clone(),
    )]
}

/// `reduce(f, z) ∘ map(g)` → `reduce(λ(acc, x). f(acc, g(x)), z)` — and the same for the
/// lowered `reduceSeq`/`mapSeq` pair via [`reduce_seq_map_seq_fusion`].
fn reduce_map_fusion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Reduce(op),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [init, input] = args.as_slice() else {
        return Vec::new();
    };
    let Some((g, x)) = as_map(input) else {
        return Vec::new();
    };
    vec![TermExpr::Apply {
        f: TermFun::Reduce(Box::new(fused_reduction_operator(op, g, cx.fresh))),
        args: vec![init.clone(), x.clone()],
    }]
}

/// `reduceSeq(f, z) ∘ mapSeq(g)` → `reduceSeq(λ(acc, x). f(acc, g(x)), z)` (Section 4.2 of
/// the rewrite paper: the fusion that avoids materialising the mapped array).
fn reduce_seq_map_seq_fusion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::ReduceSeq(op),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [init, input] = args.as_slice() else {
        return Vec::new();
    };
    let TermExpr::Apply {
        f: TermFun::MapSeq(g),
        args: inner_args,
    } = input
    else {
        return Vec::new();
    };
    let [x] = inner_args.as_slice() else {
        return Vec::new();
    };
    vec![TermExpr::Apply {
        f: TermFun::ReduceSeq(Box::new(fused_reduction_operator(op, g, cx.fresh))),
        args: vec![init.clone(), x.clone()],
    }]
}

/// `λ(acc, x). op(acc, g(x))`.
fn fused_reduction_operator(op: &TermFun, g: &TermFun, fresh: &mut FreshNames) -> TermFun {
    let acc = fresh.next("acc");
    let x = fresh.next("x");
    TermFun::Lambda {
        params: vec![acc.clone(), x.clone()],
        body: Box::new(TermExpr::Apply {
            f: op.clone(),
            args: vec![
                TermExpr::Param(acc),
                TermExpr::apply1(g.clone(), TermExpr::Param(x)),
            ],
        }),
    }
}

/// `map f` → `join ∘ map(map f) ∘ split n`, for every `n` that divides the input length.
fn split_join(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    let Some((_, len)) = cx.arg0_array() else {
        return Vec::new();
    };
    cx.dividing_splits(&len)
        .into_iter()
        .map(|c| {
            let inner = map_of(TermFun::Map(Box::new(f.clone())), cx.fresh);
            TermExpr::apply1(
                TermFun::Join,
                TermExpr::apply1(
                    inner,
                    TermExpr::apply1(TermFun::Split(ArithExpr::cst(c)), x.clone()),
                ),
            )
        })
        .collect()
}

/// `reduce(f, z)` → `reduce(f, z) ∘ join ∘ map(reduce(f, z)) ∘ split n` (partial reduction).
///
/// Side conditions: the operator must be a user function *declared* associative and
/// commutative ([`lift_ir::UserFun::is_assoc_commutative`]) and the literal initialiser must
/// be neutral for it ([`is_neutral_init`]). Both matter: fusion synthesises fold operators
/// like `λ(acc, x). acc + x*x` which have the right *type* but reorder incorrectly (partial
/// sums get squared again), and a non-neutral initialiser such as `reduce(add, 1.0)` would
/// be re-added once per chunk.
fn partial_reduce(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Reduce(op),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [init, x] = args.as_slice() else {
        return Vec::new();
    };
    match op.as_ref() {
        TermFun::UserFun(uf) if uf.is_assoc_commutative() && is_neutral_init(uf, init) => {}
        _ => return Vec::new(),
    }
    let Some((_, len)) = cx
        .arg_types
        .get(1)
        .and_then(|t| t.as_ref()?.as_array().map(|(e, l)| (e.clone(), l.clone())))
    else {
        return Vec::new();
    };
    cx.dividing_splits(&len)
        .into_iter()
        .map(|c| {
            let chunk = cx.fresh.next("chunk");
            let per_chunk = TermFun::Lambda {
                params: vec![chunk.clone()],
                body: Box::new(TermExpr::Apply {
                    f: TermFun::Reduce(op.clone()),
                    args: vec![init.clone(), TermExpr::Param(chunk)],
                }),
            };
            TermExpr::Apply {
                f: TermFun::Reduce(op.clone()),
                args: vec![
                    init.clone(),
                    TermExpr::apply1(
                        TermFun::Join,
                        TermExpr::apply1(
                            TermFun::Map(Box::new(per_chunk)),
                            TermExpr::apply1(TermFun::Split(ArithExpr::cst(c)), x.clone()),
                        ),
                    ),
                ],
            }
        })
        .collect()
}

/// `iterate n f` → `f ∘ iterate (n-1) f` (and `iterate 0 f` → `id`).
fn iterate_decomposition(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Iterate(n, g),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [x] = args.as_slice() else {
        return Vec::new();
    };
    match n {
        0 => vec![x.clone()],
        1 => vec![TermExpr::apply1((**g).clone(), x.clone())],
        n => vec![TermExpr::apply1(
            (**g).clone(),
            TermExpr::apply1(TermFun::Iterate(n - 1, g.clone()), x.clone()),
        )],
    }
}

/// `join ∘ split n` → `id` (requires `n` to divide the length, which holds by construction
/// when the inner type is derivable and the outer length matches).
fn split_join_id(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Join,
        args,
    } = site
    else {
        return Vec::new();
    };
    let [TermExpr::Apply {
        f: TermFun::Split(c),
        args: inner,
    }] = args.as_slice()
    else {
        return Vec::new();
    };
    let [x] = inner.as_slice() else {
        return Vec::new();
    };
    // The split input's length must be provably divisible by the chunk, otherwise
    // `join(split_c(x))` drops the remainder and is not the identity.
    let Some(c) = c.as_cst() else {
        return Vec::new();
    };
    let x_len = infer_type(x, cx.env).and_then(|t| t.as_array().map(|(_, l)| l.clone()));
    match x_len {
        Some(len) if divides(c, &len) => vec![x.clone()],
        _ => Vec::new(),
    }
}

/// `transpose ∘ transpose` → `id`.
fn transpose_transpose_id(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Transpose,
        args,
    } = site
    else {
        return Vec::new();
    };
    let [TermExpr::Apply {
        f: TermFun::Transpose,
        args: inner,
    }] = args.as_slice()
    else {
        return Vec::new();
    };
    match inner.as_slice() {
        [x] => vec![x.clone()],
        _ => Vec::new(),
    }
}

/// `scatter f ∘ gather f` → `id` and `gather f ∘ scatter f` → `id`.
fn gather_scatter_id(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply { f: outer, args } = site else {
        return Vec::new();
    };
    let [TermExpr::Apply {
        f: inner,
        args: inner_args,
    }] = args.as_slice()
    else {
        return Vec::new();
    };
    let [x] = inner_args.as_slice() else {
        return Vec::new();
    };
    match (outer, inner) {
        (TermFun::Scatter(a), TermFun::Gather(b)) | (TermFun::Gather(a), TermFun::Scatter(b))
            if a == b =>
        {
            vec![x.clone()]
        }
        _ => Vec::new(),
    }
}

/// `map f ∘ join` → `join ∘ map(map f)`.
fn map_join_promotion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, input)) = as_map(site) else {
        return Vec::new();
    };
    let TermExpr::Apply {
        f: TermFun::Join,
        args: inner,
    } = input
    else {
        return Vec::new();
    };
    let [x] = inner.as_slice() else {
        return Vec::new();
    };
    let mapped = map_of(TermFun::Map(Box::new(f.clone())), cx.fresh);
    vec![TermExpr::apply1(
        TermFun::Join,
        TermExpr::apply1(mapped, x.clone()),
    )]
}

/// `split n ∘ map f` → `map(map f) ∘ split n`.
fn split_map_promotion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Split(c),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [input] = args.as_slice() else {
        return Vec::new();
    };
    let Some((f, x)) = as_map(input) else {
        return Vec::new();
    };
    let mapped = map_of(TermFun::Map(Box::new(f.clone())), cx.fresh);
    vec![TermExpr::apply1(
        mapped,
        TermExpr::apply1(TermFun::Split(c.clone()), x.clone()),
    )]
}

// ------------------------------------------------------------------ lowering rules

/// `map` → `mapSeq` (legal anywhere).
fn map_to_map_seq(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    vec![TermExpr::apply1(
        TermFun::MapSeq(Box::new(f.clone())),
        x.clone(),
    )]
}

/// `map` → `mapGlb⁰`: only outside any other map, and only when the mapped function does not
/// already contain work-item parallelism.
fn map_to_map_glb(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    if !cx.context.is_top_level() || fun_contains_parallel(f) {
        return Vec::new();
    }
    vec![TermExpr::apply1(
        TermFun::MapGlb(0, Box::new(f.clone())),
        x.clone(),
    )]
}

/// `map f` → `join ∘ mapWrg⁰(mapLcl⁰ f) ∘ split n`: the work-group lowering.
fn map_to_wrg_lcl(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    if !cx.context.is_top_level() || fun_contains_parallel(f) {
        return Vec::new();
    }
    let Some((_, len)) = cx.arg0_array() else {
        return Vec::new();
    };
    cx.dividing_splits(&len)
        .into_iter()
        .map(|c| {
            let t = cx.fresh.next("tile");
            let wrg_fun = TermFun::Lambda {
                params: vec![t.clone()],
                body: Box::new(TermExpr::apply1(
                    TermFun::MapLcl(0, Box::new(f.clone())),
                    TermExpr::Param(t),
                )),
            };
            TermExpr::apply1(
                TermFun::Join,
                TermExpr::apply1(
                    TermFun::MapWrg(0, Box::new(wrg_fun)),
                    TermExpr::apply1(TermFun::Split(ArithExpr::cst(c)), x.clone()),
                ),
            )
        })
        .collect()
}

/// `map` → `mapLcl⁰`: only directly inside a `mapWrg`.
fn map_to_map_lcl(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    if !cx.context.inside_wrg || cx.context.inside_lcl || fun_contains_parallel(f) {
        return Vec::new();
    }
    vec![TermExpr::apply1(
        TermFun::MapLcl(0, Box::new(f.clone())),
        x.clone(),
    )]
}

/// `map f` → `asScalar ∘ map(mapVec f) ∘ asVector w` for unary scalar user functions over
/// float arrays whose length the width divides.
fn map_vectorise(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    let TermFun::UserFun(uf) = f else {
        return Vec::new();
    };
    if uf.arity() != 1 || uf.param_types() != [Type::float()] || *uf.return_type() != Type::float()
    {
        return Vec::new();
    }
    let Some((elem, len)) = cx.arg0_array() else {
        return Vec::new();
    };
    if !elem.is_scalar() {
        return Vec::new();
    }
    let widths: Vec<usize> = cx
        .options
        .vector_widths
        .iter()
        .copied()
        .filter(|w| *w > 1 && divides(*w as i64, &len))
        .collect();
    widths
        .into_iter()
        .map(|w| {
            let lanes = map_of(TermFun::MapVec(Box::new(f.clone())), cx.fresh);
            TermExpr::apply1(
                TermFun::AsScalar,
                TermExpr::apply1(lanes, TermExpr::apply1(TermFun::AsVector(w), x.clone())),
            )
        })
        .collect()
}

/// `reduce` → `reduceSeq` (legal anywhere; the sequential reduction is the only reduction
/// primitive the backend provides, exactly as in the paper).
fn reduce_to_reduce_seq(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Reduce(op),
        args,
    } = site
    else {
        return Vec::new();
    };
    vec![TermExpr::Apply {
        f: TermFun::ReduceSeq(op.clone()),
        args: args.clone(),
    }]
}

/// Wraps a lowered computation in a memory-placement pattern.
fn wrap_in(site: &TermExpr, wrap: fn(Box<TermFun>) -> TermFun) -> Vec<TermExpr> {
    let TermExpr::Apply { f, args } = site else {
        return Vec::new();
    };
    match f {
        TermFun::MapSeq(_) | TermFun::ReduceSeq(_) | TermFun::MapVec(_) => {
            vec![TermExpr::Apply {
                f: wrap(Box::new(f.clone())),
                args: args.clone(),
            }]
        }
        _ => Vec::new(),
    }
}

/// `mapSeq/reduceSeq f` → `toLocal(…)`: stage the result in local memory (inside a work
/// group only).
fn wrap_to_local(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    if !cx.context.in_work_group() {
        return Vec::new();
    }
    wrap_in(site, TermFun::ToLocal)
}

/// `mapSeq/reduceSeq f` → `toGlobal(…)`: write the result to global memory. Inside a work
/// group (where the default would be local), and inside a `mapGlb` — a work item publishing
/// its partial result to global memory is how a first kernel feeds a second, device-wide
/// stage (the kernel boundary is the device-wide synchronisation point).
fn wrap_to_global(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    if !cx.context.in_work_group() && !cx.context.inside_glb {
        return Vec::new();
    }
    wrap_in(site, TermFun::ToGlobal)
}

/// `mapSeq/reduceSeq f` → `toPrivate(…)`: stage the result in private memory. Allowed in any
/// context — private staging is useful even in purely sequential single-work-item kernels.
fn wrap_to_private(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    wrap_in(site, TermFun::ToPrivate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use crate::traversal::{get, replace, sites};
    use lift_interp::{evaluate, Value};
    use lift_ir::{Program, Type, UserFun};

    fn high_level_square_sum(n: usize) -> Program {
        let mut p = Program::new("square_sum");
        let mult = p.user_fun(UserFun::mult());
        let sq = p.lambda(&["v"], |p, params| p.apply(mult, [params[0], params[0]]));
        let add = p.user_fun(UserFun::add());
        let m = p.map(sq);
        let red = p.reduce(add, 0.0);
        p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
            let mapped = p.apply1(m, params[0]);
            p.apply1(red, mapped)
        });
        p
    }

    /// Applies `rule` at the first site it matches and checks semantics are preserved.
    fn check_preserves(program: &Program, rule_name: &str, input: &[f32]) -> bool {
        let term = Term::from_program(program).expect("converts");
        let rule = all_rules()
            .iter()
            .find(|r| r.name == rule_name)
            .expect("rule exists");
        let options = RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![2],
        };
        let mut fresh = term.fresh;
        for site in sites(&term) {
            let Some(expr) = get(&term.body, &site.location) else {
                continue;
            };
            let mut cx = RuleCx {
                context: site.context,
                arg_types: &site.arg_types,
                env: &site.env,
                options: &options,
                fresh: &mut fresh,
            };
            let rewrites = rule.applications(expr, &mut cx);
            if rewrites.is_empty() {
                continue;
            }
            for replacement in rewrites {
                let new_body = replace(&term.body, &site.location, replacement).expect("replace");
                let derived = Term {
                    name: term.name.clone(),
                    params: term.params.clone(),
                    body: new_body,
                    fresh,
                }
                .to_program();
                let mut typed = derived.clone();
                lift_ir::infer_types(&mut typed).expect("derived program typechecks");
                let args = [Value::from_f32_slice(input)];
                let before = evaluate(program, &args)
                    .expect("original runs")
                    .flatten_f32();
                let after = evaluate(&derived, &args)
                    .expect("derived runs")
                    .flatten_f32();
                assert_eq!(before, after, "rule `{rule_name}` changed semantics");
            }
            return true;
        }
        false
    }

    #[test]
    fn lowering_rules_preserve_semantics_on_square_sum() {
        let p = high_level_square_sum(8);
        let input: Vec<f32> = (0..8).map(|i| i as f32 * 0.5).collect();
        for rule in ["map-to-mapSeq", "map-to-mapGlb", "reduce-to-reduceSeq"] {
            assert!(check_preserves(&p, rule, &input), "rule {rule} never fired");
        }
    }

    #[test]
    fn fusion_and_promotion_rules_preserve_semantics() {
        let p = high_level_square_sum(8);
        let input: Vec<f32> = (0..8).map(|i| i as f32 - 3.0).collect();
        for rule in ["reduce-map-fusion", "partial-reduce", "split-join"] {
            assert!(check_preserves(&p, rule, &input), "rule {rule} never fired");
        }
    }

    #[test]
    fn divisibility_is_arith_checked() {
        assert!(divides(4, &ArithExpr::cst(16)));
        assert!(!divides(3, &ArithExpr::cst(16)));
        // A symbolic length cannot be proven divisible…
        assert!(!divides(4, &ArithExpr::size_var("N")));
        // …but a length constructed as a multiple can.
        assert!(divides(4, &(ArithExpr::size_var("N") * 4)));
    }

    #[test]
    fn partial_reduce_requires_a_neutral_initialiser() {
        // reduce(add, 1.0): associative operator but a non-neutral initialiser — the rule
        // must not fire (each chunk would re-add the 1.0).
        let n = 8usize;
        let mut p = Program::new("shifted_sum");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce(add, 1.0);
        p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
            p.apply1(red, params[0])
        });
        let term = Term::from_program(&p).expect("converts");
        let rule = all_rules()
            .iter()
            .find(|r| r.name == "partial-reduce")
            .expect("rule exists");
        let options = RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
        };
        let mut fresh = term.fresh;
        for site in sites(&term) {
            let Some(expr) = get(&term.body, &site.location) else {
                continue;
            };
            let mut cx = RuleCx {
                context: site.context,
                arg_types: &site.arg_types,
                env: &site.env,
                options: &options,
                fresh: &mut fresh,
            };
            assert!(
                rule.applications(expr, &mut cx).is_empty(),
                "partial reduction fired with a non-neutral initialiser"
            );
        }
        // Sanity: the same program with a neutral initialiser does admit the rule.
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        assert!(
            check_preserves(&high_level_square_sum(8), "partial-reduce", &input),
            "partial reduction should fire for reduce(add, 0.0)"
        );
    }

    #[test]
    fn map_to_map_lcl_requires_wrg_context() {
        let p = high_level_square_sum(8);
        let term = Term::from_program(&p).expect("converts");
        let rule = all_rules()
            .iter()
            .find(|r| r.name == "map-to-mapLcl")
            .expect("rule exists");
        let options = RuleOptions::default();
        let mut fresh = term.fresh;
        for site in sites(&term) {
            let Some(expr) = get(&term.body, &site.location) else {
                continue;
            };
            let mut cx = RuleCx {
                context: site.context,
                arg_types: &site.arg_types,
                env: &site.env,
                options: &options,
                fresh: &mut fresh,
            };
            assert!(
                rule.applications(expr, &mut cx).is_empty(),
                "mapLcl lowering fired outside a work group"
            );
        }
    }
}
