//! The rewrite rules.
//!
//! Two families, following *Generating Performance Portable Code using Rewrite Rules*
//! (Steuwer et al., arXiv:1502.02389):
//!
//! * **Algorithmic rules** are provably semantics-preserving identities between high-level
//!   expressions: map fusion, the split-join decomposition (with arithmetically checked
//!   divisibility of the split factor), partial-reduction promotion, iterate decomposition
//!   and the data-layout identities (`transpose ∘ transpose = id`, `scatter f ∘ gather f =
//!   id`, `join ∘ split n = id`).
//! * **Lowering rules** map the backend-agnostic `map`/`reduce` onto the OpenCL-specific
//!   patterns: `mapGlb`, `mapWrg ∘ mapLcl` (with a work-group split), `mapSeq`,
//!   `mapVec`-based vectorisation via `asVector`/`asScalar`, `reduceSeq`, and the
//!   `toLocal`/`toGlobal`/`toPrivate` memory-placement wrappers. Lowering rules carry side
//!   conditions over the [`NestContext`] (e.g. `mapLcl` is only legal inside a `mapWrg`) so
//!   the exploration only produces structurally legal OpenCL nestings.
//!
//! Every rule is *local*: it matches one application site ([`crate::traversal::Site`]) and
//! returns zero or more replacement expressions. The exploration driver re-typechecks every
//! derived program, so rules may be liberal as long as they preserve semantics.

use lift_arith::ArithExpr;
use lift_interp::Value;
use lift_ir::Type;

use crate::term::{FreshNames, TermExpr, TermFun};
use crate::traversal::{infer_type, NestContext, TypeEnv};

/// Which family a rule belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleKind {
    /// Semantics-preserving identity between high-level expressions.
    Algorithmic,
    /// Maps high-level patterns onto OpenCL-specific ones.
    Lowering,
}

/// A rectangular tile: `y` rows by `x` columns.
///
/// The 1D rules (overlapped stencil tiling) consume only the `x` extent and match only
/// tiles constructed with [`TileSize::d1`] (`y == 1`); the 2D matrix-tiling rule consumes
/// genuinely two-dimensional tiles (`y > 1 && x > 1`), pairing the row-tile height with the
/// column-tile width of one work group's output block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileSize {
    /// Rows per tile (the `dim == 1` extent).
    pub y: i64,
    /// Columns per tile (the `dim == 0` extent) — the whole tile for 1D rules.
    pub x: i64,
}

impl TileSize {
    /// A one-dimensional tile of `x` elements (stencil windows per work-group tile).
    pub const fn d1(x: i64) -> TileSize {
        TileSize { y: 1, x }
    }

    /// A two-dimensional tile of `y` rows by `x` columns.
    pub const fn d2(y: i64, x: i64) -> TileSize {
        TileSize { y, x }
    }

    /// Whether this tile is one-dimensional (a single row).
    pub const fn is_d1(&self) -> bool {
        self.y == 1
    }
}

impl std::fmt::Debug for TileSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_d1() {
            write!(f, "{}", self.x)
        } else {
            write!(f, "{}x{}", self.y, self.x)
        }
    }
}

impl std::fmt::Display for TileSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Numeric knobs the parameterised rules draw from.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RuleOptions {
    /// Candidate `split` factors (checked for divisibility against the array length).
    pub split_sizes: Vec<i64>,
    /// Candidate vector widths for the vectorisation rule.
    pub vector_widths: Vec<usize>,
    /// Candidate tile shapes, a tuning dimension in both tiling rule families: 1D tiles
    /// ([`TileSize::d1`]) are windows per tile for the overlapped stencil tiling, 2D tiles
    /// ([`TileSize::d2`]) are the output row/column block one work group computes in the
    /// matrix tiling. Divisibility against the tiled extents is arithmetically checked,
    /// like `split_sizes`; the best tile balances local-memory footprint against the number
    /// of work groups.
    pub tile_sizes: Vec<TileSize>,
}

impl Default for RuleOptions {
    fn default() -> Self {
        RuleOptions {
            split_sizes: vec![2, 4, 8],
            vector_widths: vec![4],
            tile_sizes: vec![TileSize::d1(32), TileSize::d1(64)],
        }
    }
}

/// Everything a rule may consult at a site.
pub struct RuleCx<'a> {
    /// The enclosing parallel patterns.
    pub context: NestContext,
    /// Types of the site's arguments, where derivable.
    pub arg_types: &'a [Option<Type>],
    /// Parameter types in scope at the site (for typing arbitrary subexpressions).
    pub env: &'a TypeEnv,
    /// Numeric knobs.
    pub options: &'a RuleOptions,
    /// Fresh-name supply for synthesised lambdas.
    pub fresh: &'a mut FreshNames,
}

impl RuleCx<'_> {
    /// The element type and length of the site's first argument, if it is an array.
    fn arg0_array(&self) -> Option<(Type, ArithExpr)> {
        self.arg_types
            .first()?
            .as_ref()?
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
    }

    /// Split factors that provably divide `len` (rule 1 of Section 5.3: `c` divides `len`
    /// exactly when the normalised remainder is the constant zero).
    fn dividing_splits(&self, len: &ArithExpr) -> Vec<i64> {
        self.options
            .split_sizes
            .iter()
            .copied()
            .filter(|c| *c > 1 && divides(*c, len))
            .collect()
    }

    /// Stencil tile sizes (windows per tile) that provably divide the window count without
    /// degenerating into "one tile covers everything". Only 1D tiles participate — a 2D
    /// tile shape addresses the matrix-tiling rule, not the stencil family.
    fn dividing_tiles(&self, window_count: &ArithExpr) -> Vec<i64> {
        self.options
            .tile_sizes
            .iter()
            .filter(|t| t.is_d1())
            .map(|t| t.x)
            .filter(|v| {
                *v > 1 && divides(*v, window_count) && window_count.as_cst().is_none_or(|w| *v < w)
            })
            .collect()
    }

    /// 2D tile shapes whose row extent provably divides `rows` and column extent provably
    /// divides `cols` (both extents must be genuine, i.e. greater than one).
    fn dividing_tile_pairs(&self, rows: &ArithExpr, cols: &ArithExpr) -> Vec<TileSize> {
        self.options
            .tile_sizes
            .iter()
            .copied()
            .filter(|t| t.y > 1 && t.x > 1 && divides(t.y, rows) && divides(t.x, cols))
            .collect()
    }
}

/// Arithmetically checked divisibility: `c | len` iff `len mod c` normalises to 0.
pub fn divides(c: i64, len: &ArithExpr) -> bool {
    (len.clone() % ArithExpr::cst(c)).is_cst(0)
}

/// Checks that the literal initialiser is neutral for the binary operator by probing
/// `op(z, t) == t == op(t, z)` over a spread of values. Reordering rules such as partial
/// reduction apply the initialiser once per chunk, which is only sound when it is neutral
/// (`reduce(add, 1.0)` over `k` chunks would otherwise add `1.0` `k` extra times).
fn is_neutral_init(uf: &lift_ir::UserFun, init: &TermExpr) -> bool {
    let TermExpr::Literal(lift_ir::Literal::Float(z)) = init else {
        return false;
    };
    const PROBES: [f32; 6] = [-3.5, -1.0, 0.0, 0.25, 2.0, 7.5];
    PROBES.iter().all(|t| {
        let left = lift_interp::eval_scalar(uf.body(), &[Value::Float(*z), Value::Float(*t)]);
        let right = lift_interp::eval_scalar(uf.body(), &[Value::Float(*t), Value::Float(*z)]);
        left.as_f32() == Some(*t) && right.as_f32() == Some(*t)
    })
}

/// A named rewrite rule.
pub struct Rule {
    /// The rule name shown in derivation chains.
    pub name: &'static str,
    /// The rule family.
    pub kind: RuleKind,
    apply: fn(&TermExpr, &mut RuleCx) -> Vec<TermExpr>,
}

impl Rule {
    /// All rewrites this rule can perform at the given site.
    pub fn applications(&self, site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
        (self.apply)(site, cx)
    }
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

/// Version of the rule set, bumped whenever the behaviour of [`all_rules`] changes in a way
/// that invalidates recorded derivations: a rule added, removed, renamed or reordered, or a
/// parameterised rule changing how it enumerates alternatives. Recorded
/// [`DerivationStep`](crate::explore::DerivationStep) chains address rules by name and
/// rewrites by alternative index, so any such change silently re-targets old chains — the
/// derivation-service cache keys every entry by this constant and drops the whole
/// generation when it moves.
pub const RULE_SET_VERSION: u32 = 1;

/// The complete rule set.
pub fn all_rules() -> &'static [Rule] {
    const RULES: &[Rule] = &[
        // -------------------------------------------------------- algorithmic
        Rule {
            name: "map-fusion",
            kind: RuleKind::Algorithmic,
            apply: map_fusion,
        },
        Rule {
            name: "reduce-map-fusion",
            kind: RuleKind::Algorithmic,
            apply: reduce_map_fusion,
        },
        Rule {
            name: "split-join",
            kind: RuleKind::Algorithmic,
            apply: split_join,
        },
        Rule {
            name: "partial-reduce",
            kind: RuleKind::Algorithmic,
            apply: partial_reduce,
        },
        Rule {
            name: "iterate-decomposition",
            kind: RuleKind::Algorithmic,
            apply: iterate_decomposition,
        },
        Rule {
            name: "split-join-id",
            kind: RuleKind::Algorithmic,
            apply: split_join_id,
        },
        Rule {
            name: "transpose-transpose-id",
            kind: RuleKind::Algorithmic,
            apply: transpose_transpose_id,
        },
        Rule {
            name: "gather-scatter-id",
            kind: RuleKind::Algorithmic,
            apply: gather_scatter_id,
        },
        Rule {
            name: "map-join-promotion",
            kind: RuleKind::Algorithmic,
            apply: map_join_promotion,
        },
        Rule {
            name: "split-map-promotion",
            kind: RuleKind::Algorithmic,
            apply: split_map_promotion,
        },
        Rule {
            name: "reduceSeq-mapSeq-fusion",
            kind: RuleKind::Algorithmic,
            apply: reduce_seq_map_seq_fusion,
        },
        // ------------------------------------------------------------- stencil
        Rule {
            name: "slide-tiling",
            kind: RuleKind::Algorithmic,
            apply: slide_tiling,
        },
        Rule {
            name: "pad-map-commute",
            kind: RuleKind::Algorithmic,
            apply: pad_map_commute,
        },
        Rule {
            name: "pad-pad-merge",
            kind: RuleKind::Algorithmic,
            apply: pad_pad_merge,
        },
        Rule {
            name: "reduce-to-iterate",
            kind: RuleKind::Algorithmic,
            apply: reduce_to_iterate,
        },
        Rule {
            name: "stencil-wrg-tiling",
            kind: RuleKind::Lowering,
            apply: stencil_wrg_tiling,
        },
        Rule {
            name: "mm-tiled-2d",
            kind: RuleKind::Lowering,
            apply: mm_tiled_2d,
        },
        // ----------------------------------------------------------- lowering
        Rule {
            name: "map-to-mapSeq",
            kind: RuleKind::Lowering,
            apply: map_to_map_seq,
        },
        Rule {
            name: "map-to-mapGlb",
            kind: RuleKind::Lowering,
            apply: map_to_map_glb,
        },
        Rule {
            name: "map-to-mapWrg-mapLcl",
            kind: RuleKind::Lowering,
            apply: map_to_wrg_lcl,
        },
        Rule {
            name: "map-to-mapLcl",
            kind: RuleKind::Lowering,
            apply: map_to_map_lcl,
        },
        Rule {
            name: "map-vectorise",
            kind: RuleKind::Lowering,
            apply: map_vectorise,
        },
        Rule {
            name: "reduce-to-reduceSeq",
            kind: RuleKind::Lowering,
            apply: reduce_to_reduce_seq,
        },
        Rule {
            name: "wrap-toLocal",
            kind: RuleKind::Lowering,
            apply: wrap_to_local,
        },
        Rule {
            name: "wrap-toGlobal",
            kind: RuleKind::Lowering,
            apply: wrap_to_global,
        },
        Rule {
            name: "wrap-toPrivate",
            kind: RuleKind::Lowering,
            apply: wrap_to_private,
        },
    ];
    RULES
}

// ---------------------------------------------------------------------- helpers

/// Matches `map(f)(x)`, returning the mapped function and input.
fn as_map(site: &TermExpr) -> Option<(&TermFun, &TermExpr)> {
    match site {
        TermExpr::Apply {
            f: TermFun::Map(g),
            args,
        } if args.len() == 1 => Some((g, &args[0])),
        _ => None,
    }
}

/// `λx. outer(inner(x))`.
fn composed(outer: &TermFun, inner: &TermFun, fresh: &mut FreshNames) -> TermFun {
    let x = fresh.next("x");
    TermFun::Lambda {
        params: vec![x.clone()],
        body: Box::new(TermExpr::apply1(
            outer.clone(),
            TermExpr::apply1(inner.clone(), TermExpr::Param(x)),
        )),
    }
}

/// `map(f)` with the nested function eta-wrapped when it is itself a pattern (keeping the
/// invariant that pattern applications stay visible to the traversal).
fn map_of(f: TermFun, fresh: &mut FreshNames) -> TermFun {
    TermFun::Map(Box::new(f.eta(fresh)))
}

/// Does the subtree introduce work-item/work-group parallelism already?
fn fun_contains_parallel(f: &TermFun) -> bool {
    match f {
        TermFun::MapGlb(..) | TermFun::MapWrg(..) | TermFun::MapLcl(..) => true,
        TermFun::Lambda { body, .. } => expr_contains_parallel(body),
        other => other.nested().is_some_and(fun_contains_parallel),
    }
}

fn expr_contains_parallel(e: &TermExpr) -> bool {
    match e {
        TermExpr::Literal(_) | TermExpr::Param(_) => false,
        TermExpr::Apply { f, args } => {
            fun_contains_parallel(f) || args.iter().any(expr_contains_parallel)
        }
    }
}

/// Whether `name` occurs as a parameter reference anywhere in the expression. Conservative
/// about shadowing (an occurrence under a rebinding lambda still counts), which only makes
/// the rules using it decline more sites than strictly necessary.
fn expr_uses_param(e: &TermExpr, name: &str) -> bool {
    fn fun_uses(f: &TermFun, name: &str) -> bool {
        match f {
            TermFun::Lambda { body, .. } => expr_uses_param(body, name),
            other => other.nested().is_some_and(|g| fun_uses(g, name)),
        }
    }
    match e {
        TermExpr::Literal(_) => false,
        TermExpr::Param(p) => p == name,
        TermExpr::Apply { f, args } => {
            fun_uses(f, name) || args.iter().any(|a| expr_uses_param(a, name))
        }
    }
}

// ---------------------------------------------------------------- algorithmic rules

/// `map f ∘ map g` → `map (f ∘ g)`.
fn map_fusion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, inner)) = as_map(site) else {
        return Vec::new();
    };
    let Some((g, x)) = as_map(inner) else {
        return Vec::new();
    };
    vec![TermExpr::apply1(
        TermFun::Map(Box::new(composed(f, g, cx.fresh))),
        x.clone(),
    )]
}

/// `reduce(f, z) ∘ map(g)` → `reduce(λ(acc, x). f(acc, g(x)), z)` — and the same for the
/// lowered `reduceSeq`/`mapSeq` pair via [`reduce_seq_map_seq_fusion`].
fn reduce_map_fusion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Reduce(op),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [init, input] = args.as_slice() else {
        return Vec::new();
    };
    let Some((g, x)) = as_map(input) else {
        return Vec::new();
    };
    vec![TermExpr::Apply {
        f: TermFun::Reduce(Box::new(fused_reduction_operator(op, g, cx.fresh))),
        args: vec![init.clone(), x.clone()],
    }]
}

/// `reduceSeq(f, z) ∘ mapSeq(g)` → `reduceSeq(λ(acc, x). f(acc, g(x)), z)` (Section 4.2 of
/// the rewrite paper: the fusion that avoids materialising the mapped array).
fn reduce_seq_map_seq_fusion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::ReduceSeq(op),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [init, input] = args.as_slice() else {
        return Vec::new();
    };
    let TermExpr::Apply {
        f: TermFun::MapSeq(g),
        args: inner_args,
    } = input
    else {
        return Vec::new();
    };
    let [x] = inner_args.as_slice() else {
        return Vec::new();
    };
    vec![TermExpr::Apply {
        f: TermFun::ReduceSeq(Box::new(fused_reduction_operator(op, g, cx.fresh))),
        args: vec![init.clone(), x.clone()],
    }]
}

/// `λ(acc, x). op(acc, g(x))`.
fn fused_reduction_operator(op: &TermFun, g: &TermFun, fresh: &mut FreshNames) -> TermFun {
    let acc = fresh.next("acc");
    let x = fresh.next("x");
    TermFun::Lambda {
        params: vec![acc.clone(), x.clone()],
        body: Box::new(TermExpr::Apply {
            f: op.clone(),
            args: vec![
                TermExpr::Param(acc),
                TermExpr::apply1(g.clone(), TermExpr::Param(x)),
            ],
        }),
    }
}

/// `map f` → `join ∘ map(map f) ∘ split n`, for every `n` that divides the input length.
fn split_join(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    if cx.context.inside_iterate {
        return Vec::new();
    }
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    let Some((_, len)) = cx.arg0_array() else {
        return Vec::new();
    };
    cx.dividing_splits(&len)
        .into_iter()
        .map(|c| {
            let inner = map_of(TermFun::Map(Box::new(f.clone())), cx.fresh);
            TermExpr::apply1(
                TermFun::Join,
                TermExpr::apply1(
                    inner,
                    TermExpr::apply1(TermFun::Split(ArithExpr::cst(c)), x.clone()),
                ),
            )
        })
        .collect()
}

/// `reduce(f, z)` → `reduce(f, z) ∘ join ∘ map(reduce(f, z)) ∘ split n` (partial reduction).
///
/// Side conditions: the operator must be a user function *declared* associative and
/// commutative ([`lift_ir::UserFun::is_assoc_commutative`]) and the literal initialiser must
/// be neutral for it ([`is_neutral_init`]). Both matter: fusion synthesises fold operators
/// like `λ(acc, x). acc + x*x` which have the right *type* but reorder incorrectly (partial
/// sums get squared again), and a non-neutral initialiser such as `reduce(add, 1.0)` would
/// be re-added once per chunk.
fn partial_reduce(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    if cx.context.inside_iterate {
        return Vec::new();
    }
    let TermExpr::Apply {
        f: TermFun::Reduce(op),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [init, x] = args.as_slice() else {
        return Vec::new();
    };
    match op.as_ref() {
        TermFun::UserFun(uf) if uf.is_assoc_commutative() && is_neutral_init(uf, init) => {}
        _ => return Vec::new(),
    }
    let Some((_, len)) = cx
        .arg_types
        .get(1)
        .and_then(|t| t.as_ref()?.as_array().map(|(e, l)| (e.clone(), l.clone())))
    else {
        return Vec::new();
    };
    cx.dividing_splits(&len)
        .into_iter()
        .map(|c| {
            let chunk = cx.fresh.next("chunk");
            let per_chunk = TermFun::Lambda {
                params: vec![chunk.clone()],
                body: Box::new(TermExpr::Apply {
                    f: TermFun::Reduce(op.clone()),
                    args: vec![init.clone(), TermExpr::Param(chunk)],
                }),
            };
            TermExpr::Apply {
                f: TermFun::Reduce(op.clone()),
                args: vec![
                    init.clone(),
                    TermExpr::apply1(
                        TermFun::Join,
                        TermExpr::apply1(
                            TermFun::Map(Box::new(per_chunk)),
                            TermExpr::apply1(TermFun::Split(ArithExpr::cst(c)), x.clone()),
                        ),
                    ),
                ],
            }
        })
        .collect()
}

/// `iterate n f` → `f ∘ iterate (n-1) f` (and `iterate 0 f` → `id`).
fn iterate_decomposition(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Iterate(n, g),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [x] = args.as_slice() else {
        return Vec::new();
    };
    match n {
        0 => vec![x.clone()],
        1 => vec![TermExpr::apply1((**g).clone(), x.clone())],
        n => vec![TermExpr::apply1(
            (**g).clone(),
            TermExpr::apply1(TermFun::Iterate(n - 1, g.clone()), x.clone()),
        )],
    }
}

/// `join ∘ split n` → `id` (requires `n` to divide the length, which holds by construction
/// when the inner type is derivable and the outer length matches).
fn split_join_id(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Join,
        args,
    } = site
    else {
        return Vec::new();
    };
    let [TermExpr::Apply {
        f: TermFun::Split(c),
        args: inner,
    }] = args.as_slice()
    else {
        return Vec::new();
    };
    let [x] = inner.as_slice() else {
        return Vec::new();
    };
    // The split input's length must be provably divisible by the chunk, otherwise
    // `join(split_c(x))` drops the remainder and is not the identity.
    let Some(c) = c.as_cst() else {
        return Vec::new();
    };
    let x_len = infer_type(x, cx.env).and_then(|t| t.as_array().map(|(_, l)| l.clone()));
    match x_len {
        Some(len) if divides(c, &len) => vec![x.clone()],
        _ => Vec::new(),
    }
}

/// `transpose ∘ transpose` → `id`.
fn transpose_transpose_id(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Transpose,
        args,
    } = site
    else {
        return Vec::new();
    };
    let [TermExpr::Apply {
        f: TermFun::Transpose,
        args: inner,
    }] = args.as_slice()
    else {
        return Vec::new();
    };
    match inner.as_slice() {
        [x] => vec![x.clone()],
        _ => Vec::new(),
    }
}

/// `scatter f ∘ gather f` → `id` and `gather f ∘ scatter f` → `id`.
fn gather_scatter_id(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply { f: outer, args } = site else {
        return Vec::new();
    };
    let [TermExpr::Apply {
        f: inner,
        args: inner_args,
    }] = args.as_slice()
    else {
        return Vec::new();
    };
    let [x] = inner_args.as_slice() else {
        return Vec::new();
    };
    match (outer, inner) {
        (TermFun::Scatter(a), TermFun::Gather(b)) | (TermFun::Gather(a), TermFun::Scatter(b))
            if a == b =>
        {
            vec![x.clone()]
        }
        _ => Vec::new(),
    }
}

/// `map f ∘ join` → `join ∘ map(map f)`.
fn map_join_promotion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, input)) = as_map(site) else {
        return Vec::new();
    };
    let TermExpr::Apply {
        f: TermFun::Join,
        args: inner,
    } = input
    else {
        return Vec::new();
    };
    let [x] = inner.as_slice() else {
        return Vec::new();
    };
    let mapped = map_of(TermFun::Map(Box::new(f.clone())), cx.fresh);
    vec![TermExpr::apply1(
        TermFun::Join,
        TermExpr::apply1(mapped, x.clone()),
    )]
}

/// `split n ∘ map f` → `map(map f) ∘ split n`.
fn split_map_promotion(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Split(c),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [input] = args.as_slice() else {
        return Vec::new();
    };
    let Some((f, x)) = as_map(input) else {
        return Vec::new();
    };
    let mapped = map_of(TermFun::Map(Box::new(f.clone())), cx.fresh);
    vec![TermExpr::apply1(
        mapped,
        TermExpr::apply1(TermFun::Split(c.clone()), x.clone()),
    )]
}

// ------------------------------------------------------------------- stencil rules

/// Matches `slide(size, 1)(x)` with a constant window size, returning `(size, x)`.
fn as_unit_step_slide(site: &TermExpr) -> Option<(i64, &TermExpr)> {
    let TermExpr::Apply {
        f: TermFun::Slide(size, step),
        args,
    } = site
    else {
        return None;
    };
    let [x] = args.as_slice() else {
        return None;
    };
    if !step.is_cst(1) {
        return None;
    }
    size.as_cst().map(|s| (s, x))
}

/// Overlapped tiling (the stencil analogue of split-join):
/// `slide n 1` → `join ∘ map(slide n 1) ∘ slide (n+v-1) v` for every tile size `v` that
/// divides the window count. The outer slide carves the input into tiles of `v` windows
/// (each `n+v-1` elements long, overlapping its neighbours by `n-1`), the mapped inner
/// slide re-creates the windows per tile, and `join` restores the original window order.
fn slide_tiling(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    if cx.context.inside_iterate {
        return Vec::new();
    }
    let Some((size, x)) = as_unit_step_slide(site) else {
        return Vec::new();
    };
    let Some((_, len)) = cx.arg0_array() else {
        return Vec::new();
    };
    let window_count = len - ArithExpr::cst(size) + 1;
    cx.dividing_tiles(&window_count)
        .into_iter()
        .map(|v| {
            let inner = map_of(
                TermFun::Slide(ArithExpr::cst(size), ArithExpr::cst(1)),
                cx.fresh,
            );
            TermExpr::apply1(
                TermFun::Join,
                TermExpr::apply1(
                    inner,
                    TermExpr::apply1(
                        TermFun::Slide(ArithExpr::cst(size + v - 1), ArithExpr::cst(v)),
                        x.clone(),
                    ),
                ),
            )
        })
        .collect()
}

/// `map f ∘ pad l r` → `pad l r ∘ map f`: every padded element is a copy of an input
/// element, so mapping before or after padding reads the same values — but mapping first
/// does the work once per *input* element instead of once per padded element, and moves the
/// pad next to a `slide` where the tiling rules can see it.
fn pad_map_commute(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, input)) = as_map(site) else {
        return Vec::new();
    };
    let TermExpr::Apply {
        f: TermFun::Pad(left, right, mode),
        args: inner,
    } = input
    else {
        return Vec::new();
    };
    let [x] = inner.as_slice() else {
        return Vec::new();
    };
    vec![TermExpr::apply1(
        TermFun::Pad(left.clone(), right.clone(), *mode),
        TermExpr::apply1(TermFun::Map(Box::new(f.clone())), x.clone()),
    )]
}

/// `padClamp(a, b) ∘ padClamp(c, d)` → `padClamp(a+c, b+d)`. Clamp is the only mode where
/// re-padding keeps replicating the same edge element; mirror and wrap walk further into
/// the array on the second application, so the rule is restricted to clamp.
fn pad_pad_merge(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Pad(a, b, lift_ir::PadMode::Clamp),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [TermExpr::Apply {
        f: TermFun::Pad(c, d, lift_ir::PadMode::Clamp),
        args: inner,
    }] = args.as_slice()
    else {
        return Vec::new();
    };
    let [x] = inner.as_slice() else {
        return Vec::new();
    };
    vec![TermExpr::apply1(
        TermFun::Pad(
            a.clone() + c.clone(),
            b.clone() + d.clone(),
            lift_ir::PadMode::Clamp,
        ),
        x.clone(),
    )]
}

/// The tree-reduction rule of Listing 1: `reduce(f, z)` over an array of constant length
/// `2^k` → `iterate^k (join ∘ map(reduce(f, z)) ∘ split 2)` — every iteration halves the
/// array by reducing adjacent pairs, which is the shape that lowers to the work-group
/// tree reduction (`mapLcl` over pairs) of the paper's dot-product kernel.
///
/// Side conditions as for partial reduction: the operator must be declared
/// associative-commutative and the initialiser neutral (it is re-applied once per pair per
/// level).
fn reduce_to_iterate(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    if cx.context.inside_iterate {
        return Vec::new();
    }
    let TermExpr::Apply {
        f: TermFun::Reduce(op),
        args,
    } = site
    else {
        return Vec::new();
    };
    let [init, x] = args.as_slice() else {
        return Vec::new();
    };
    match op.as_ref() {
        TermFun::UserFun(uf) if uf.is_assoc_commutative() && is_neutral_init(uf, init) => {}
        _ => return Vec::new(),
    }
    let Some(len) = cx
        .arg_types
        .get(1)
        .and_then(|t| t.as_ref()?.as_array().map(|(_, l)| l.clone()))
        .and_then(|l| l.as_cst())
    else {
        return Vec::new();
    };
    // Constant power of two, large enough to be worth a tree and small enough to unroll the
    // iterate's type computation.
    if !(4..=4096).contains(&len) || (len as u64).count_ones() != 1 {
        return Vec::new();
    }
    let k = u64::from(len.trailing_zeros());
    let pair = cx.fresh.next("pair");
    let halve_pairs = TermFun::Lambda {
        params: vec![pair.clone()],
        body: Box::new(TermExpr::Apply {
            f: TermFun::Reduce(op.clone()),
            args: vec![init.clone(), TermExpr::Param(pair)],
        }),
    };
    let level = cx.fresh.next("level");
    let halve = TermFun::Lambda {
        params: vec![level.clone()],
        body: Box::new(TermExpr::apply1(
            TermFun::Join,
            TermExpr::apply1(
                TermFun::Map(Box::new(halve_pairs)),
                TermExpr::apply1(TermFun::Split(ArithExpr::cst(2)), TermExpr::Param(level)),
            ),
        )),
    };
    vec![TermExpr::apply1(
        TermFun::Iterate(k, Box::new(halve)),
        x.clone(),
    )]
}

/// The work-group lowering of an overlapped-tiled stencil, in one step:
///
/// `map f ∘ slide n 1` → `join ∘ mapWrg⁰(mapLcl⁰ f ∘ slide n 1 ∘ toLocal(mapLcl⁰ id)) ∘
/// slide (n+v-1) v`
///
/// Each work group loads one overlapping tile of `n+v-1` input elements into local memory
/// (one cooperative `mapLcl` copy, so every element crosses the global-memory bus once per
/// tile instead of once per window), re-creates the tile's `v` windows with a local `slide`,
/// and computes one window per local work item. `v` comes from
/// [`RuleOptions::tile_sizes`], so the auto-tuner searches the tile size jointly with the
/// launch configuration.
fn stencil_wrg_tiling(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, input)) = as_map(site) else {
        return Vec::new();
    };
    if cx.context.inside_iterate || !cx.context.is_top_level() || fun_contains_parallel(f) {
        return Vec::new();
    }
    let Some((size, x)) = as_unit_step_slide(input) else {
        return Vec::new();
    };
    // The cooperative copy is a float copy: the slide input must be a float array.
    let Some((elem, _)) = cx.arg0_array() else {
        return Vec::new();
    };
    if !elem
        .as_array()
        .is_some_and(|(window_elem, _)| *window_elem == Type::float())
    {
        return Vec::new();
    }
    let Some(len) = infer_type(x, cx.env).and_then(|t| t.as_array().map(|(_, l)| l.clone())) else {
        return Vec::new();
    };
    let window_count = len - ArithExpr::cst(size) + 1;
    cx.dividing_tiles(&window_count)
        .into_iter()
        .map(|v| {
            let tile = cx.fresh.next("tile");
            let copy = TermExpr::apply1(
                TermFun::ToLocal(Box::new(TermFun::MapLcl(
                    0,
                    Box::new(TermFun::UserFun(lift_ir::UserFun::id_float())),
                ))),
                TermExpr::Param(tile.clone()),
            );
            let local_windows = TermExpr::apply1(
                TermFun::Slide(ArithExpr::cst(size), ArithExpr::cst(1)),
                copy,
            );
            let per_window =
                TermExpr::apply1(TermFun::MapLcl(0, Box::new(f.clone())), local_windows);
            let wrg_fun = TermFun::Lambda {
                params: vec![tile],
                body: Box::new(per_window),
            };
            TermExpr::apply1(
                TermFun::Join,
                TermExpr::apply1(
                    TermFun::MapWrg(0, Box::new(wrg_fun)),
                    TermExpr::apply1(
                        TermFun::Slide(ArithExpr::cst(size + v - 1), ArithExpr::cst(v)),
                        x.clone(),
                    ),
                ),
            )
        })
        .collect()
}

/// The 2D tiled/register-blocked lowering of matrix multiplication, in one step — the
/// `split∘transpose∘split` tile formation of the paper's Table 1 kernel. It matches the
/// high-level shape
///
/// `map(λrow. join(map(g)(transpose(B))))(A)`
///
/// (each output row pairs one row of `A : [m][k]` against every column of `B : [k][n]`
/// through `g`) and rewrites it, per dividing 2D tile `(tm, tn)`, into
///
/// `join ∘ mapWrg¹(λatile. transpose ∘ join ∘ mapWrg⁰(λbtile. …) ∘ split tn ∘ transpose(B))
///  ∘ split tm(A)`
///
/// where each work group computes one `tm × tn` output block: both the `A`-row tile and the
/// `B`-column tile are staged cooperatively in `__local` memory (2D-distributed
/// `mapLcl⁰/mapLcl¹` copies, so every element crosses the global-memory bus once per tile
/// instead of once per output element), the compute nest distributes columns over `mapLcl⁰`
/// and rows over `mapLcl¹`, and each work item register-blocks its `A` row through a
/// `toPrivate` copy before running the original per-element computation `g` — kept intact
/// as a redex `(λrow. g(bcol))(arowp)`, so the remaining high-level `map`/`reduce` inside
/// lower through the ordinary rules afterwards.
fn mm_tiled_2d(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, a)) = as_map(site) else {
        return Vec::new();
    };
    if cx.context.inside_iterate || !cx.context.is_top_level() || fun_contains_parallel(f) {
        return Vec::new();
    }
    // f = λrow. join(map(g)(transpose(b))), with b independent of the row.
    let TermFun::Lambda { params, body } = f else {
        return Vec::new();
    };
    let [row] = params.as_slice() else {
        return Vec::new();
    };
    let TermExpr::Apply {
        f: TermFun::Join,
        args,
    } = body.as_ref()
    else {
        return Vec::new();
    };
    let [inner] = args.as_slice() else {
        return Vec::new();
    };
    let Some((g, cols)) = as_map(inner) else {
        return Vec::new();
    };
    if !matches!(g, TermFun::Lambda { params, .. } if params.len() == 1) {
        return Vec::new();
    }
    let TermExpr::Apply {
        f: TermFun::Transpose,
        args: t_args,
    } = cols
    else {
        return Vec::new();
    };
    let [b] = t_args.as_slice() else {
        return Vec::new();
    };
    if expr_uses_param(b, row) {
        return Vec::new();
    }
    // A : [m][k]float (the cooperative copies and the register blocking are float copies).
    let Some((a_row, m)) = cx.arg0_array() else {
        return Vec::new();
    };
    if !a_row
        .as_array()
        .is_some_and(|(elem, _)| *elem == Type::float())
    {
        return Vec::new();
    }
    // B : [k][n]float — the column count bounds the x tile extent.
    let Some(n) = infer_type(b, cx.env).and_then(|t| {
        let (b_row, _) = t.as_array()?;
        let (b_elem, n) = b_row.as_array()?;
        (*b_elem == Type::float()).then(|| n.clone())
    }) else {
        return Vec::new();
    };
    let id_copy = || TermFun::UserFun(lift_ir::UserFun::id_float());
    cx.dividing_tile_pairs(&m, &n)
        .into_iter()
        .map(|tile| {
            let atile = cx.fresh.next("atile");
            let btile = cx.fresh.next("btile");
            let atl = cx.fresh.next("atl");
            let btl = cx.fresh.next("btl");
            let bcol = cx.fresh.next("bcol");
            let arow = cx.fresh.next("arow");
            // Register blocking: each work item copies its A row to private memory once,
            // then runs the original per-element computation with `row` rebound to the
            // private copy and `g` applied to the work item's B column.
            let arow_private = TermExpr::apply1(
                TermFun::ToPrivate(Box::new(TermFun::MapSeq(Box::new(id_copy())))),
                TermExpr::Param(arow.clone()),
            );
            let per_pair = TermExpr::apply1(
                TermFun::Lambda {
                    params: vec![row.clone()],
                    body: Box::new(TermExpr::apply1(g.clone(), TermExpr::Param(bcol.clone()))),
                },
                arow_private,
            );
            let per_arow = TermFun::Lambda {
                params: vec![arow],
                body: Box::new(per_pair),
            };
            // Compute nest over the staged tiles: columns on dim 0, rows on dim 1; the
            // join collapses the per-pair `[1]float` reduction results into the column.
            let column_block = TermExpr::apply1(
                TermFun::Join,
                TermExpr::apply1(
                    TermFun::MapLcl(1, Box::new(per_arow)),
                    TermExpr::Param(atl.clone()),
                ),
            );
            let compute = TermExpr::apply1(
                TermFun::MapLcl(
                    0,
                    Box::new(TermFun::Lambda {
                        params: vec![bcol],
                        body: Box::new(column_block),
                    }),
                ),
                TermExpr::Param(btl.clone()),
            );
            // Cooperative staging: both tiles land in local memory through 2D-distributed
            // work-item copies (each tile's copy loops over the dimensions in its own
            // natural order, so consecutive work items copy consecutive elements).
            let atile_staged = TermExpr::apply1(
                TermFun::ToLocal(Box::new(TermFun::MapLcl(
                    1,
                    Box::new(TermFun::MapLcl(0, Box::new(id_copy()))),
                ))),
                TermExpr::Param(atile.clone()),
            );
            let btile_staged = TermExpr::apply1(
                TermFun::ToLocal(Box::new(TermFun::MapLcl(
                    0,
                    Box::new(TermFun::MapLcl(1, Box::new(id_copy()))),
                ))),
                TermExpr::Param(btile.clone()),
            );
            let with_atl = TermExpr::apply1(
                TermFun::Lambda {
                    params: vec![atl],
                    body: Box::new(compute),
                },
                atile_staged,
            );
            let per_col_tile = TermFun::Lambda {
                params: vec![btile],
                body: Box::new(TermExpr::apply1(
                    TermFun::Lambda {
                        params: vec![btl],
                        body: Box::new(with_atl),
                    },
                    btile_staged,
                )),
            };
            // Tile formation: split tm over A's rows (dim 1 of the launch grid), split tn
            // over transpose(B)'s rows, i.e. B's columns (dim 0); the trailing
            // join/transpose/join un-tile the [m/tm][tm][n] blocks back to [m][n] purely
            // through views.
            let btiles = TermExpr::apply1(
                TermFun::Split(ArithExpr::cst(tile.x)),
                TermExpr::apply1(TermFun::Transpose, (*b).clone()),
            );
            let row_block = TermExpr::apply1(
                TermFun::Transpose,
                TermExpr::apply1(
                    TermFun::Join,
                    TermExpr::apply1(TermFun::MapWrg(0, Box::new(per_col_tile)), btiles),
                ),
            );
            TermExpr::apply1(
                TermFun::Join,
                TermExpr::apply1(
                    TermFun::MapWrg(
                        1,
                        Box::new(TermFun::Lambda {
                            params: vec![atile],
                            body: Box::new(row_block),
                        }),
                    ),
                    TermExpr::apply1(TermFun::Split(ArithExpr::cst(tile.y)), a.clone()),
                ),
            )
        })
        .collect()
}

// ------------------------------------------------------------------ lowering rules

/// `map` → `mapSeq` (legal anywhere).
fn map_to_map_seq(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    vec![TermExpr::apply1(
        TermFun::MapSeq(Box::new(f.clone())),
        x.clone(),
    )]
}

/// `map` → `mapGlb⁰`: only outside any other map, and only when the mapped function does not
/// already contain work-item parallelism.
fn map_to_map_glb(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    if !cx.context.is_top_level() || fun_contains_parallel(f) {
        return Vec::new();
    }
    vec![TermExpr::apply1(
        TermFun::MapGlb(0, Box::new(f.clone())),
        x.clone(),
    )]
}

/// `map f` → `join ∘ mapWrg⁰(mapLcl⁰ f) ∘ split n`: the work-group lowering.
fn map_to_wrg_lcl(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    if cx.context.inside_iterate || !cx.context.is_top_level() || fun_contains_parallel(f) {
        return Vec::new();
    }
    let Some((_, len)) = cx.arg0_array() else {
        return Vec::new();
    };
    cx.dividing_splits(&len)
        .into_iter()
        .map(|c| {
            let t = cx.fresh.next("tile");
            let wrg_fun = TermFun::Lambda {
                params: vec![t.clone()],
                body: Box::new(TermExpr::apply1(
                    TermFun::MapLcl(0, Box::new(f.clone())),
                    TermExpr::Param(t),
                )),
            };
            TermExpr::apply1(
                TermFun::Join,
                TermExpr::apply1(
                    TermFun::MapWrg(0, Box::new(wrg_fun)),
                    TermExpr::apply1(TermFun::Split(ArithExpr::cst(c)), x.clone()),
                ),
            )
        })
        .collect()
}

/// `map` → `mapLcl⁽ᵈ⁾`: only inside a `mapWrg`, and only along work-group dimensions `d`
/// that do not already carry a local loop at this site — distributing twice over the same
/// dimension would make distinct iterations share work items. Inside a 1D `mapWrg⁰` this
/// yields exactly the old `mapLcl⁰` lowering; inside a 2D nest each still-free dimension is
/// offered.
fn map_to_map_lcl(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    if !cx.context.inside_wrg || fun_contains_parallel(f) {
        return Vec::new();
    }
    let free = cx.context.wrg_dims & !cx.context.lcl_dims;
    (0u8..8)
        .filter(|d| free & (1 << d) != 0)
        .map(|d| TermExpr::apply1(TermFun::MapLcl(d, Box::new(f.clone())), x.clone()))
        .collect()
}

/// `map f` → `asScalar ∘ map(mapVec f) ∘ asVector w` for unary scalar user functions over
/// float arrays whose length the width divides.
fn map_vectorise(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    if cx.context.inside_iterate {
        return Vec::new();
    }
    let Some((f, x)) = as_map(site) else {
        return Vec::new();
    };
    let TermFun::UserFun(uf) = f else {
        return Vec::new();
    };
    if uf.arity() != 1 || uf.param_types() != [Type::float()] || *uf.return_type() != Type::float()
    {
        return Vec::new();
    }
    let Some((elem, len)) = cx.arg0_array() else {
        return Vec::new();
    };
    if !elem.is_scalar() {
        return Vec::new();
    }
    let widths: Vec<usize> = cx
        .options
        .vector_widths
        .iter()
        .copied()
        .filter(|w| *w > 1 && divides(*w as i64, &len))
        .collect();
    widths
        .into_iter()
        .map(|w| {
            let lanes = map_of(TermFun::MapVec(Box::new(f.clone())), cx.fresh);
            TermExpr::apply1(
                TermFun::AsScalar,
                TermExpr::apply1(lanes, TermExpr::apply1(TermFun::AsVector(w), x.clone())),
            )
        })
        .collect()
}

/// `reduce` → `reduceSeq` (legal anywhere; the sequential reduction is the only reduction
/// primitive the backend provides, exactly as in the paper).
fn reduce_to_reduce_seq(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    let TermExpr::Apply {
        f: TermFun::Reduce(op),
        args,
    } = site
    else {
        return Vec::new();
    };
    vec![TermExpr::Apply {
        f: TermFun::ReduceSeq(op.clone()),
        args: args.clone(),
    }]
}

/// Wraps a lowered computation in a memory-placement pattern.
fn wrap_in(site: &TermExpr, wrap: fn(Box<TermFun>) -> TermFun) -> Vec<TermExpr> {
    let TermExpr::Apply { f, args } = site else {
        return Vec::new();
    };
    match f {
        TermFun::MapSeq(_) | TermFun::ReduceSeq(_) | TermFun::MapVec(_) => {
            vec![TermExpr::Apply {
                f: wrap(Box::new(f.clone())),
                args: args.clone(),
            }]
        }
        _ => Vec::new(),
    }
}

/// `mapSeq/reduceSeq f` → `toLocal(…)`: stage the result in local memory (inside a work
/// group only).
fn wrap_to_local(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    if !cx.context.in_work_group() {
        return Vec::new();
    }
    wrap_in(site, TermFun::ToLocal)
}

/// `mapSeq/reduceSeq f` → `toGlobal(…)`: write the result to global memory. Inside a work
/// group (where the default would be local), and inside a `mapGlb` — a work item publishing
/// its partial result to global memory is how a first kernel feeds a second, device-wide
/// stage (the kernel boundary is the device-wide synchronisation point).
fn wrap_to_global(site: &TermExpr, cx: &mut RuleCx) -> Vec<TermExpr> {
    if !cx.context.in_work_group() && !cx.context.inside_glb {
        return Vec::new();
    }
    wrap_in(site, TermFun::ToGlobal)
}

/// `mapSeq/reduceSeq f` → `toPrivate(…)`: stage the result in private memory. Allowed in any
/// context — private staging is useful even in purely sequential single-work-item kernels.
fn wrap_to_private(site: &TermExpr, _cx: &mut RuleCx) -> Vec<TermExpr> {
    wrap_in(site, TermFun::ToPrivate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use crate::traversal::{get, replace, sites};
    use lift_interp::{evaluate, Value};
    use lift_ir::{Program, Type, UserFun};

    fn high_level_square_sum(n: usize) -> Program {
        let mut p = Program::new("square_sum");
        let mult = p.user_fun(UserFun::mult());
        let sq = p.lambda(&["v"], |p, params| p.apply(mult, [params[0], params[0]]));
        let add = p.user_fun(UserFun::add());
        let m = p.map(sq);
        let red = p.reduce(add, 0.0);
        p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
            let mapped = p.apply1(m, params[0]);
            p.apply1(red, mapped)
        });
        p
    }

    /// Applies `rule` at the first site it matches and checks semantics are preserved.
    fn check_preserves(program: &Program, rule_name: &str, input: &[f32]) -> bool {
        let term = Term::from_program(program).expect("converts");
        let rule = all_rules()
            .iter()
            .find(|r| r.name == rule_name)
            .expect("rule exists");
        let options = RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![2],
            tile_sizes: vec![TileSize::d1(2), TileSize::d1(4)],
        };
        let mut fresh = term.fresh;
        for site in sites(&term) {
            let Some(expr) = get(&term.body, &site.location) else {
                continue;
            };
            let mut cx = RuleCx {
                context: site.context,
                arg_types: &site.arg_types,
                env: &site.env,
                options: &options,
                fresh: &mut fresh,
            };
            let rewrites = rule.applications(expr, &mut cx);
            if rewrites.is_empty() {
                continue;
            }
            for replacement in rewrites {
                let new_body = replace(&term.body, &site.location, replacement).expect("replace");
                let derived = Term {
                    name: term.name.clone(),
                    params: term.params.clone(),
                    body: new_body,
                    fresh,
                }
                .to_program();
                let mut typed = derived.clone();
                lift_ir::infer_types(&mut typed).expect("derived program typechecks");
                let args = [Value::from_f32_slice(input)];
                let before = evaluate(program, &args)
                    .expect("original runs")
                    .flatten_f32();
                let after = evaluate(&derived, &args)
                    .expect("derived runs")
                    .flatten_f32();
                assert_eq!(before, after, "rule `{rule_name}` changed semantics");
            }
            return true;
        }
        false
    }

    #[test]
    fn lowering_rules_preserve_semantics_on_square_sum() {
        let p = high_level_square_sum(8);
        let input: Vec<f32> = (0..8).map(|i| i as f32 * 0.5).collect();
        for rule in ["map-to-mapSeq", "map-to-mapGlb", "reduce-to-reduceSeq"] {
            assert!(check_preserves(&p, rule, &input), "rule {rule} never fired");
        }
    }

    #[test]
    fn fusion_and_promotion_rules_preserve_semantics() {
        let p = high_level_square_sum(8);
        let input: Vec<f32> = (0..8).map(|i| i as f32 - 3.0).collect();
        for rule in ["reduce-map-fusion", "partial-reduce", "split-join"] {
            assert!(check_preserves(&p, rule, &input), "rule {rule} never fired");
        }
    }

    /// `map(λw. reduce(add, 0)(w)) ∘ slide(3, 1)`: a 3-point sum stencil over `n` inputs
    /// (`n - 2` windows), the canonical target of the stencil rule family.
    fn high_level_stencil(n: usize) -> Program {
        let mut p = Program::new("stencil_sum");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce(add, 0.0);
        let m = p.map(red);
        let s = p.slide(3usize, 1usize);
        p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
            let windows = p.apply1(s, params[0]);
            p.apply1(m, windows)
        });
        p
    }

    fn padded_map(n: usize, mode: lift_ir::PadMode) -> Program {
        let mut p = Program::new("padded");
        let mult = p.user_fun(UserFun::mult());
        let sq = p.lambda(&["v"], |p, params| p.apply(mult, [params[0], params[0]]));
        let m = p.map(sq);
        let pad = p.pad(1usize, 2usize, mode);
        p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
            let padded = p.apply1(pad, params[0]);
            p.apply1(m, padded)
        });
        p
    }

    #[test]
    fn stencil_rules_preserve_semantics() {
        // 10 inputs -> 8 windows: tile sizes 2 and 4 both divide the window count.
        let p = high_level_stencil(10);
        let input: Vec<f32> = (0..10).map(|i| i as f32 * 0.5 - 2.0).collect();
        for rule in ["slide-tiling", "stencil-wrg-tiling"] {
            assert!(check_preserves(&p, rule, &input), "rule {rule} never fired");
        }
    }

    #[test]
    fn pad_rules_preserve_semantics_for_every_mode() {
        use lift_ir::PadMode;
        let input: Vec<f32> = (0..6).map(|i| i as f32 - 2.5).collect();
        for mode in [PadMode::Clamp, PadMode::Mirror, PadMode::Wrap] {
            assert!(
                check_preserves(&padded_map(6, mode), "pad-map-commute", &input),
                "pad-map-commute never fired for {mode:?}"
            );
        }
        // The merge rule needs two stacked clamp pads.
        let mut p = Program::new("stacked");
        let idf = p.user_fun(UserFun::id_float());
        let m = p.map(idf);
        let outer = p.pad(1usize, 1usize, PadMode::Clamp);
        let inner = p.pad(2usize, 1usize, PadMode::Clamp);
        p.with_root(
            vec![("x", Type::array(Type::float(), 5usize))],
            |p, params| {
                let once = p.apply1(inner, params[0]);
                let twice = p.apply1(outer, once);
                p.apply1(m, twice)
            },
        );
        assert!(
            check_preserves(&p, "pad-pad-merge", &[1.0, 2.0, 3.0, 4.0, 5.0]),
            "pad-pad-merge never fired"
        );
    }

    #[test]
    fn pad_pad_merge_is_restricted_to_clamp() {
        use lift_ir::PadMode;
        // Mirror pads do not merge: pad(1,1) ∘ pad(1,1) reflects deeper into the array
        // than pad(2,2) would. The rule must not fire.
        let mut p = Program::new("stacked_mirror");
        let idf = p.user_fun(UserFun::id_float());
        let m = p.map(idf);
        let outer = p.pad(1usize, 1usize, PadMode::Mirror);
        let inner = p.pad(1usize, 1usize, PadMode::Mirror);
        p.with_root(
            vec![("x", Type::array(Type::float(), 4usize))],
            |p, params| {
                let once = p.apply1(inner, params[0]);
                let twice = p.apply1(outer, once);
                p.apply1(m, twice)
            },
        );
        let term = Term::from_program(&p).expect("converts");
        let rule = all_rules()
            .iter()
            .find(|r| r.name == "pad-pad-merge")
            .expect("rule exists");
        let options = RuleOptions::default();
        let mut fresh = term.fresh;
        for site in sites(&term) {
            let Some(expr) = get(&term.body, &site.location) else {
                continue;
            };
            let mut cx = RuleCx {
                context: site.context,
                arg_types: &site.arg_types,
                env: &site.env,
                options: &options,
                fresh: &mut fresh,
            };
            assert!(
                rule.applications(expr, &mut cx).is_empty(),
                "pad-pad-merge fired for mirror pads"
            );
        }
    }

    #[test]
    fn reduce_to_iterate_builds_a_halving_tree() {
        let mut p = Program::new("tree_sum");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce(add, 0.0);
        p.with_root(
            vec![("x", Type::array(Type::float(), 16usize))],
            |p, params| p.apply1(red, params[0]),
        );
        let input: Vec<f32> = (0..16).map(|i| i as f32 * 0.25).collect();
        assert!(
            check_preserves(&p, "reduce-to-iterate", &input),
            "reduce-to-iterate never fired"
        );
        // Non-power-of-two lengths do not admit the rule.
        let mut q = Program::new("tree_sum12");
        let add = q.user_fun(UserFun::add());
        let red = q.reduce(add, 0.0);
        q.with_root(
            vec![("x", Type::array(Type::float(), 12usize))],
            |q, params| q.apply1(red, params[0]),
        );
        assert!(!check_preserves(&q, "reduce-to-iterate", &[0.0; 12]));
    }

    #[test]
    fn stencil_tiling_fires_only_for_dividing_tiles() {
        // 9 inputs -> 7 windows: neither 2 nor 4 divides 7, so no tiling applies.
        assert!(!check_preserves(
            &high_level_stencil(9),
            "slide-tiling",
            &[0.0; 9]
        ));
    }

    #[test]
    fn divisibility_is_arith_checked() {
        assert!(divides(4, &ArithExpr::cst(16)));
        assert!(!divides(3, &ArithExpr::cst(16)));
        // A symbolic length cannot be proven divisible…
        assert!(!divides(4, &ArithExpr::size_var("N")));
        // …but a length constructed as a multiple can.
        assert!(divides(4, &(ArithExpr::size_var("N") * 4)));
    }

    #[test]
    fn partial_reduce_requires_a_neutral_initialiser() {
        // reduce(add, 1.0): associative operator but a non-neutral initialiser — the rule
        // must not fire (each chunk would re-add the 1.0).
        let n = 8usize;
        let mut p = Program::new("shifted_sum");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce(add, 1.0);
        p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
            p.apply1(red, params[0])
        });
        let term = Term::from_program(&p).expect("converts");
        let rule = all_rules()
            .iter()
            .find(|r| r.name == "partial-reduce")
            .expect("rule exists");
        let options = RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: vec![TileSize::d1(2), TileSize::d1(4)],
        };
        let mut fresh = term.fresh;
        for site in sites(&term) {
            let Some(expr) = get(&term.body, &site.location) else {
                continue;
            };
            let mut cx = RuleCx {
                context: site.context,
                arg_types: &site.arg_types,
                env: &site.env,
                options: &options,
                fresh: &mut fresh,
            };
            assert!(
                rule.applications(expr, &mut cx).is_empty(),
                "partial reduction fired with a non-neutral initialiser"
            );
        }
        // Sanity: the same program with a neutral initialiser does admit the rule.
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        assert!(
            check_preserves(&high_level_square_sum(8), "partial-reduce", &input),
            "partial reduction should fire for reduce(add, 0.0)"
        );
    }

    #[test]
    fn map_to_map_lcl_requires_wrg_context() {
        let p = high_level_square_sum(8);
        let term = Term::from_program(&p).expect("converts");
        let rule = all_rules()
            .iter()
            .find(|r| r.name == "map-to-mapLcl")
            .expect("rule exists");
        let options = RuleOptions::default();
        let mut fresh = term.fresh;
        for site in sites(&term) {
            let Some(expr) = get(&term.body, &site.location) else {
                continue;
            };
            let mut cx = RuleCx {
                context: site.context,
                arg_types: &site.arg_types,
                env: &site.env,
                options: &options,
                fresh: &mut fresh,
            };
            assert!(
                rule.applications(expr, &mut cx).is_empty(),
                "mapLcl lowering fired outside a work group"
            );
        }
    }
}
