//! Cost-guided exploration of the rewrite space.
//!
//! Starting from a (typically high-level) program, the driver repeatedly applies rewrite
//! rules at every site under a depth/width budget, re-typechecks every derived program, and
//! keeps a beam of the most promising candidates (those with the fewest remaining high-level
//! patterns, then the smallest). Fully lowered candidates are compiled with `lift-codegen`,
//! executed on the `lift-vgpu` virtual GPU with deterministic inputs, checked against the
//! reference interpreter's result for the *original* program (the rules are
//! semantics-preserving, so any disagreement disqualifies a variant), and scored with the
//! analytical cost model of the selected [`DeviceProfile`]. The best `N` variants are
//! returned together with their derivation chains, ready for code generation.

use std::collections::HashSet;

use lift_arith::Environment;
use lift_codegen::{compile, CompilationOptions, KernelParamInfo};
use lift_interp::{evaluate_with_sizes, Value};
use lift_ir::{infer_types, Program, Type, TypeError};
use lift_vgpu::{outputs_match, CostCounters, DeviceProfile, KernelArg, LaunchConfig, VirtualGpu};

use crate::rules::{all_rules, RuleCx, RuleKind, RuleOptions};
use crate::term::{Term, TermError};
use crate::traversal::{format_location, get, replace, sites};

/// Budgets and knobs for the exploration.
#[derive(Clone, Debug)]
pub struct ExplorationConfig {
    /// Maximum number of rewrite steps per derivation.
    pub max_depth: usize,
    /// Maximum number of candidates carried from one depth level to the next.
    pub beam_width: usize,
    /// Hard cap on the total number of candidates ever enumerated.
    pub max_candidates: usize,
    /// Maximum term size (node count) a candidate may reach.
    pub max_term_size: usize,
    /// Numeric knobs for the parameterised rules.
    pub rule_options: RuleOptions,
    /// How many best variants to return.
    pub best_n: usize,
    /// The launch configuration candidates are compiled for and executed with.
    pub launch: LaunchConfig,
    /// Compiler optimisation toggles (the launch sizes are overwritten from `launch`).
    pub compile_options: CompilationOptions,
    /// The device profile whose cost model ranks the variants.
    pub device: DeviceProfile,
    /// Bindings for symbolic sizes (empty for fully constant programs).
    pub sizes: Environment,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        ExplorationConfig {
            max_depth: 6,
            beam_width: 64,
            max_candidates: 4000,
            max_term_size: 200,
            rule_options: RuleOptions::default(),
            best_n: 3,
            launch: LaunchConfig::d1(64, 16),
            compile_options: CompilationOptions::all_optimisations(),
            device: DeviceProfile::nvidia(),
            sizes: Environment::new(),
        }
    }
}

/// One applied rule in a derivation chain.
#[derive(Clone, Debug)]
pub struct DerivationStep {
    /// The rule name.
    pub rule: &'static str,
    /// The rule family.
    pub kind: RuleKind,
    /// Where it was applied (rendered with [`format_location`]).
    pub location: String,
}

/// A fully lowered, compiled, validated and scored variant.
#[derive(Clone, Debug)]
pub struct Variant {
    /// The derived low-level program (typechecked).
    pub program: Program,
    /// The rules that produced it, in application order.
    pub derivation: Vec<DerivationStep>,
    /// The generated OpenCL kernel source.
    pub kernel_source: String,
    /// Dynamic cost counters from the virtual-GPU execution.
    pub counters: CostCounters,
    /// Estimated execution time under the configured device profile (lower is better).
    pub estimated_time: f64,
}

/// Statistics and results of one exploration.
#[derive(Clone, Debug, Default)]
pub struct Exploration {
    /// The validated variants, best (lowest estimated time) first.
    pub variants: Vec<Variant>,
    /// Total candidates enumerated (including rejected ones).
    pub explored: usize,
    /// Candidates rejected because the derived program failed to re-typecheck.
    pub rejected_typecheck: usize,
    /// Fully lowered candidates that failed to compile.
    pub rejected_compile: usize,
    /// Fully lowered candidates whose execution disagreed with the interpreter.
    pub rejected_incorrect: usize,
    /// Distinct fully lowered candidates that reached scoring.
    pub lowered: usize,
}

/// Errors from the exploration driver.
#[derive(Clone, Debug)]
pub enum ExploreError {
    /// Converting the input program to tree form failed.
    Term(TermError),
    /// The input program does not typecheck.
    Type(TypeError),
    /// The reference interpreter could not evaluate the input program.
    Reference(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Term(e) => write!(f, "cannot build rewrite term: {e}"),
            ExploreError::Type(e) => write!(f, "input program does not typecheck: {e}"),
            ExploreError::Reference(e) => write!(f, "reference evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<TermError> for ExploreError {
    fn from(e: TermError) -> Self {
        ExploreError::Term(e)
    }
}

impl From<TypeError> for ExploreError {
    fn from(e: TypeError) -> Self {
        ExploreError::Type(e)
    }
}

#[derive(Clone)]
struct Candidate {
    term: Term,
    steps: Vec<DerivationStep>,
    high_level_left: usize,
    /// The typechecked arena form of `term` (reused by scoring instead of re-deriving it).
    program: Program,
}

/// Explores the rewrite space of `program` and returns the validated, cost-ranked variants.
///
/// # Errors
///
/// Returns an [`ExploreError`] if the *input* program is invalid (does not typecheck, cannot
/// be converted, or cannot be evaluated by the reference interpreter). Failures of derived
/// candidates are not errors — they are counted in the [`Exploration`] statistics.
pub fn explore(program: &Program, config: &ExplorationConfig) -> Result<Exploration, ExploreError> {
    let mut typed = program.clone();
    infer_types(&mut typed)?;

    // Deterministic inputs + the reference output from the interpreter.
    let inputs = generate_inputs(&typed, &config.sizes).map_err(ExploreError::Reference)?;
    let input_values: Vec<Value> = inputs.iter().map(|i| i.value.clone()).collect();
    let reference = evaluate_with_sizes(&typed, &input_values, &config.sizes)
        .map_err(|e| ExploreError::Reference(e.to_string()))?
        .flatten_f32();

    let root = Term::from_program(&typed)?;
    let mut stats = Exploration::default();
    let mut seen: HashSet<String> = HashSet::new();
    let mut complete: Vec<Candidate> = Vec::new();

    let mut start_program = root.to_program();
    infer_types(&mut start_program)?;
    let start = Candidate {
        high_level_left: high_level_count(&start_program),
        term: root,
        steps: Vec::new(),
        program: start_program,
    };
    seen.insert(start.program.to_string());
    if start.high_level_left == 0 {
        complete.push(start.clone());
    }
    let mut frontier = vec![start];

    'search: for _depth in 0..config.max_depth {
        let mut next: Vec<Candidate> = Vec::new();
        for cand in &frontier {
            for site in sites(&cand.term) {
                let Some(site_expr) = get(&cand.term.body, &site.location) else {
                    continue;
                };
                for rule in all_rules() {
                    let mut fresh = cand.term.fresh.clone();
                    let rewrites = {
                        let mut cx = RuleCx {
                            context: site.context,
                            arg_types: &site.arg_types,
                            env: &site.env,
                            options: &config.rule_options,
                            fresh: &mut fresh,
                        };
                        rule.applications(site_expr, &mut cx)
                    };
                    for replacement in rewrites {
                        stats.explored += 1;
                        if stats.explored >= config.max_candidates {
                            break 'search;
                        }
                        let Some(body) = replace(&cand.term.body, &site.location, replacement)
                        else {
                            continue;
                        };
                        let term = Term {
                            name: cand.term.name.clone(),
                            params: cand.term.params.clone(),
                            body: crate::term::beta_normalize(&body),
                            fresh: fresh.clone(),
                        };
                        if term.body.size() > config.max_term_size {
                            continue;
                        }
                        let mut derived = term.to_program();
                        if infer_types(&mut derived).is_err() {
                            stats.rejected_typecheck += 1;
                            continue;
                        }
                        let key = derived.to_string();
                        if !seen.insert(key) {
                            continue;
                        }
                        let mut steps = cand.steps.clone();
                        steps.push(DerivationStep {
                            rule: rule.name,
                            kind: rule.kind,
                            location: format_location(&site.location),
                        });
                        let next_cand = Candidate {
                            high_level_left: high_level_count(&derived),
                            term,
                            steps,
                            program: derived,
                        };
                        if next_cand.high_level_left == 0 {
                            complete.push(next_cand.clone());
                        }
                        next.push(next_cand);
                    }
                }
            }
        }
        // Beam selection: lowering progress first, then smaller terms.
        next.sort_by_key(|c| (c.high_level_left, c.term.body.size()));
        next.truncate(config.beam_width);
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    stats.lowered = complete.len();
    let mut variants: Vec<Variant> = Vec::new();
    for cand in complete {
        match score(&cand, &inputs, &reference, config) {
            Ok(v) => variants.push(v),
            Err(ScoreError::Compile) => stats.rejected_compile += 1,
            Err(ScoreError::Incorrect) => stats.rejected_incorrect += 1,
        }
    }
    variants.sort_by(|a, b| {
        a.estimated_time
            .partial_cmp(&b.estimated_time)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    variants.truncate(config.best_n);
    stats.variants = variants;
    Ok(stats)
}

fn high_level_count(program: &Program) -> usize {
    program
        .reachable_decls()
        .into_iter()
        .filter(|d| matches!(program.decl(*d), lift_ir::FunDecl::Pattern(p) if p.is_high_level()))
        .count()
}

enum ScoreError {
    Compile,
    Incorrect,
}

/// One prepared root-parameter input: the interpreter value and its flat buffer form.
struct PreparedInput {
    value: Value,
    buffer: Vec<f32>,
}

/// Deterministic pseudo-random inputs derived from the root parameter types.
fn generate_inputs(program: &Program, sizes: &Environment) -> Result<Vec<PreparedInput>, String> {
    let params = program.root_params().to_vec();
    let mut out = Vec::with_capacity(params.len());
    for (i, p) in params.iter().enumerate() {
        let ty = program
            .expr(*p)
            .ty
            .clone()
            .ok_or_else(|| format!("root parameter {i} is untyped"))?;
        let mut state = 0x9e37u32.wrapping_add(i as u32 * 0x85eb);
        let value = value_of_type(&ty, sizes, &mut state)
            .ok_or_else(|| format!("cannot generate an input of type {ty}"))?;
        let buffer = value.flatten_f32();
        out.push(PreparedInput { value, buffer });
    }
    Ok(out)
}

/// Small deterministic generator: values in [-2, 2) with a quarter-step grid, so additions
/// and multiplications stay well inside `f32` exactness for the comparison tolerance.
fn next_input(state: &mut u32) -> f32 {
    *state = state.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*state >> 16) % 16) as f32 * 0.25 - 2.0
}

fn value_of_type(ty: &Type, sizes: &Environment, state: &mut u32) -> Option<Value> {
    match ty {
        Type::Scalar(_) => Some(Value::Float(next_input(state))),
        Type::Vector(_, width) => Some(Value::Vector(
            (0..*width)
                .map(|_| Value::Float(next_input(state)))
                .collect(),
        )),
        Type::Tuple(elems) => Some(Value::Tuple(
            elems
                .iter()
                .map(|e| value_of_type(e, sizes, state))
                .collect::<Option<Vec<_>>>()?,
        )),
        Type::Array(elem, len) => {
            let n = len.evaluate(sizes).ok()?;
            let n = usize::try_from(n).ok()?;
            Some(Value::Array(
                (0..n)
                    .map(|_| value_of_type(elem, sizes, state))
                    .collect::<Option<Vec<_>>>()?,
            ))
        }
    }
}

fn score(
    cand: &Candidate,
    inputs: &[PreparedInput],
    reference: &[f32],
    config: &ExplorationConfig,
) -> Result<Variant, ScoreError> {
    let program = cand.program.clone();
    let options = config
        .compile_options
        .clone()
        .with_launch(config.launch.global, config.launch.local);
    let kernel = compile(&program, &options).map_err(|_| ScoreError::Compile)?;
    let out_len = kernel
        .output_len
        .evaluate(&config.sizes)
        .map_err(|_| ScoreError::Compile)? as usize;

    let mut args = Vec::new();
    let mut output_buffer_index = 0;
    let mut buffers = 0;
    for p in &kernel.params {
        match p {
            KernelParamInfo::Input { index, .. } => {
                args.push(KernelArg::Buffer(inputs[*index].buffer.clone()));
                buffers += 1;
            }
            KernelParamInfo::ScalarInput { index, .. } => {
                args.push(KernelArg::Float(inputs[*index].buffer[0]));
            }
            KernelParamInfo::Output { .. } => {
                output_buffer_index = buffers;
                args.push(KernelArg::zeros(out_len));
                buffers += 1;
            }
            KernelParamInfo::Size { name } => {
                let v = config.sizes.get(name).ok_or(ScoreError::Compile)?;
                args.push(KernelArg::Int(v));
            }
        }
    }

    let result = VirtualGpu::new()
        .launch(&kernel.module, &kernel.kernel_name, config.launch, args)
        .map_err(|_| ScoreError::Incorrect)?;
    let output = &result.buffers[output_buffer_index];
    if !outputs_match(output, reference) {
        return Err(ScoreError::Incorrect);
    }
    let counters = result.report.counters;
    Ok(Variant {
        program,
        derivation: cand.steps.clone(),
        kernel_source: kernel.source(),
        counters,
        estimated_time: counters.estimated_time(&config.device),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_ir::UserFun;

    /// High-level partial dot product: `join ∘ map(reduce(add, 0)) ∘ split 128 ∘ map(mult)
    /// ∘ zip` — Listing 1 of the paper before any implementation choices are made.
    pub(crate) fn high_level_partial_dot(n: usize) -> Program {
        let mut p = Program::new("partial_dot");
        let mult = p.user_fun(UserFun::mult_pair());
        let add = p.user_fun(UserFun::add());
        let m1 = p.map(mult);
        let red = p.reduce(add, 0.0);
        let m2 = p.map(red);
        let s = p.split(128usize);
        let j = p.join();
        let z = p.zip2();
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), n)),
                ("y", Type::array(Type::float(), n)),
            ],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                let mapped = p.apply1(m1, zipped);
                let split = p.apply1(s, mapped);
                let outer = p.apply1(m2, split);
                p.apply1(j, outer)
            },
        );
        p
    }

    #[test]
    fn exploration_derives_multiple_correct_dot_product_variants() {
        let program = high_level_partial_dot(512);
        let config = ExplorationConfig {
            max_depth: 5,
            beam_width: 48,
            rule_options: RuleOptions {
                split_sizes: vec![2, 4],
                vector_widths: vec![4],
            },
            launch: LaunchConfig::d1(16, 4),
            best_n: 4,
            ..ExplorationConfig::default()
        };
        let result = explore(&program, &config).expect("exploration runs");
        assert!(
            result.variants.len() >= 2,
            "expected at least two validated variants, got {} (lowered {}, compile-rejected \
             {}, incorrect {})",
            result.variants.len(),
            result.lowered,
            result.rejected_compile,
            result.rejected_incorrect
        );
        // Distinct lowered programs, each carrying a non-trivial derivation.
        let mut renderings = HashSet::new();
        for v in &result.variants {
            assert!(!v.derivation.is_empty());
            assert!(v.kernel_source.contains("kernel void"));
            assert!(
                renderings.insert(v.program.to_string()),
                "duplicate variant returned"
            );
            assert!(
                v.program.first_high_level_pattern().is_none(),
                "variant still contains high-level patterns"
            );
        }
        // Ranked by estimated time.
        for pair in result.variants.windows(2) {
            assert!(pair[0].estimated_time <= pair[1].estimated_time);
        }
    }

    #[test]
    fn exploration_rejects_untypeable_input() {
        let p = Program::new("empty");
        assert!(explore(&p, &ExplorationConfig::default()).is_err());
    }
}
