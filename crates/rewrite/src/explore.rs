//! Cost-guided exploration of the rewrite space.
//!
//! Starting from a (typically high-level) program, the driver repeatedly applies rewrite
//! rules at every site under a depth/width budget and keeps a beam of the most promising
//! candidates (those with the fewest remaining high-level patterns, then the smallest).
//! Fully lowered candidates are compiled with `lift-codegen`, executed on the `lift-vgpu`
//! virtual GPU with deterministic inputs, checked against the reference interpreter's result
//! for the *original* program (the rules are semantics-preserving, so any disagreement
//! disqualifies a variant), and scored with the analytical cost model of the selected
//! [`DeviceProfile`]. The best `N` variants are returned together with their derivation
//! chains, ready for code generation.
//!
//! # The hot path
//!
//! Exploration throughput is what every auto-tuning feature multiplies, so the driver is
//! built to touch each candidate as lightly as possible:
//!
//! * candidates are deduped by an 8-byte canonical structural hash ([`Term::dedup_key`])
//!   instead of retaining full pretty-printed renderings,
//! * candidates are type-checked directly on the tree form ([`crate::typecheck()`]); the
//!   arena conversion and `infer_types` run only for the few candidates that reach scoring,
//! * per-site rule applicability is cached across depth levels (keyed by the raw structural
//!   hash of the subtree plus its context and types), so rules that cannot fire at an
//!   unchanged subtree are not re-attempted for every beam candidate containing it,
//! * frontier expansion and the compile+validate+score stage fan out over
//!   [`std::thread::scope`] workers ([`ExplorationConfig::threads`]) with a deterministic
//!   in-order merge, so results are identical to the sequential run,
//! * identical kernels (several derivations frequently lower to byte-identical OpenCL) are
//!   executed on the virtual GPU once and their counters shared, and
//! * beam selection keeps the best `beam_width` candidates with a bounded binary heap
//!   instead of sorting the whole frontier expansion.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Mutex;

use lift_arith::Environment;
use lift_codegen::{compile_program, CodegenError, CompilationOptions};
use lift_interp::{evaluate_with_sizes, Value};
use lift_ir::{infer_types, Program, Type, TypeError};
use lift_telemetry::{Collector, Event, Null, RejectReason, SoundnessIncident, SoundnessReport};
use lift_vgpu::{
    estimated_sequence_time, outputs_match, CostCounters, DeviceProfile, EngineSelection,
    ExecutionProfile, ExecutionRequest, KernelArg, KernelLaunchSpec, LaunchConfig, LaunchError,
    VgpuError,
};

use crate::rules::{all_rules, RuleCx, RuleKind, RuleOptions};
use crate::term::{
    beta_normalize, raw_expr_hash, StableHasher, Term, TermError, TermExpr, TermFun,
};
use crate::traversal::{format_location, get, replace, sites, Location, NestContext, Site};
use crate::typecheck::typecheck;

/// The 8-byte candidate-dedup key (see [`Term::dedup_key`]). The `seen` set of an
/// exploration holds one of these per enumerated distinct candidate — nothing else — which
/// bounds its payload memory to `8 bytes × candidates`.
pub type DedupKey = u64;

/// Budgets and knobs for the exploration.
#[derive(Clone, Debug)]
pub struct ExplorationConfig {
    /// Maximum number of rewrite steps per derivation.
    pub max_depth: usize,
    /// Maximum number of candidates carried from one depth level to the next.
    pub beam_width: usize,
    /// Hard cap on the total number of candidates ever enumerated.
    pub max_candidates: usize,
    /// Maximum term size (node count) a candidate may reach.
    pub max_term_size: usize,
    /// Numeric knobs for the parameterised rules.
    pub rule_options: RuleOptions,
    /// How many best variants to return.
    pub best_n: usize,
    /// The launch configuration candidates are compiled for and executed with.
    pub launch: LaunchConfig,
    /// Compiler optimisation toggles (the launch sizes are overwritten from `launch`).
    pub compile_options: CompilationOptions,
    /// The device profile whose cost model ranks the variants.
    pub device: DeviceProfile,
    /// Bindings for symbolic sizes (empty for fully constant programs).
    pub sizes: Environment,
    /// Worker threads for frontier expansion and candidate scoring: `0` uses the machine's
    /// available parallelism, `1` runs sequentially. The merge is deterministic, so every
    /// setting produces identical results.
    pub threads: usize,
    /// Emit one [`Event::Rejection`] per rejected rewrite (with its rendered site) to the
    /// collector. Off by default: rejection sites are rendered per rejected candidate, which
    /// is the kind of per-event allocation the hot path otherwise never pays. Has no effect
    /// under a disabled collector.
    pub trace_rejections: bool,
    /// Execute candidates under the virtual GPU's shadow-memory data-race detector
    /// ([`ExecutionRequest::race_detection`]), so a racy candidate that the static
    /// parallelism-ownership pass missed is rejected as a typed
    /// [`SoundnessIncident::DataRace`] instead of (at best) a silent wrong-output
    /// rejection. On by default: identical kernels are executed once per exploration
    /// (see [`Exploration::executed_kernels`]), so the per-access shadow bookkeeping is
    /// paid a handful of times per search, not per candidate.
    pub detect_races: bool,
    /// Which virtual-GPU execution tier scores the candidates
    /// ([`ExecutionRequest::engine`]). The default [`EngineSelection::Auto`] runs the
    /// bytecode tier (falling back to the interpreter per launch on unsupported
    /// constructs, reported as [`Event::EngineFallback`] telemetry); results are
    /// byte-identical across tiers, so this knob only trades throughput.
    pub engine: EngineSelection,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        ExplorationConfig {
            max_depth: 6,
            beam_width: 64,
            max_candidates: 4000,
            max_term_size: 200,
            rule_options: RuleOptions::default(),
            best_n: 3,
            launch: LaunchConfig::d1(64, 16),
            compile_options: CompilationOptions::all_optimisations(),
            device: DeviceProfile::nvidia(),
            sizes: Environment::new(),
            threads: 0,
            trace_rejections: false,
            detect_races: true,
            engine: EngineSelection::Auto,
        }
    }
}

/// One applied rule in a derivation chain.
///
/// A step carries full provenance: the structured [`Location`] of the rewrite site and the
/// index of the chosen rewrite among everything the rule offered there, so a recorded chain
/// can be replayed through the engine ([`crate::provenance::replay`]) to reproduce the exact
/// variant term, or rendered as a human-readable transcript ([`crate::provenance::explain`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivationStep {
    /// The rule name.
    pub rule: &'static str,
    /// The rule family.
    pub kind: RuleKind,
    /// Where it was applied (rendered with [`format_location`]).
    pub location: String,
    /// The structured location of the rewrite site (what [`DerivationStep::location`]
    /// renders).
    pub path: Location,
    /// Index of the chosen rewrite among the rule's applications at the site (parameterised
    /// rules offer one rewrite per option, e.g. per dividing split factor).
    pub alternative: usize,
}

/// A fully lowered, compiled, validated and scored variant.
#[derive(Clone, Debug)]
pub struct Variant {
    /// The derived low-level program (typechecked).
    pub program: Program,
    /// The rules that produced it, in application order.
    pub derivation: Vec<DerivationStep>,
    /// The generated OpenCL source of the whole module (one kernel per stage).
    pub kernel_source: String,
    /// Number of kernels the program compiled to (1 for ordinary single-kernel variants;
    /// more when global-memory intermediates split the program into a sequence).
    pub kernel_count: usize,
    /// Dynamic cost counters summed over all stages of the virtual-GPU execution.
    pub counters: CostCounters,
    /// Per-stage cost counters of the virtual-GPU execution, in launch order (one entry per
    /// kernel; parallel to `stage_names`).
    pub stage_counters: Vec<CostCounters>,
    /// Kernel names in launch order (parallel to `stage_counters`).
    pub stage_names: Vec<String>,
    /// Estimated execution time under the configured device profile (lower is better):
    /// per-stage work–span times summed plus one launch overhead per kernel.
    pub estimated_time: f64,
}

impl Variant {
    /// The structured per-stage execution profile of the variant under `device` — the same
    /// counters and time model that produced [`Variant::estimated_time`], broken down per
    /// kernel stage and cost component instead of collapsed into one number.
    pub fn profile(&self, device: &DeviceProfile) -> ExecutionProfile {
        ExecutionProfile::from_stages(&self.stage_names, &self.stage_counters, device)
    }
}

/// Statistics and results of one exploration.
#[derive(Clone, Debug, Default)]
pub struct Exploration {
    /// The validated variants, best (lowest estimated time) first.
    pub variants: Vec<Variant>,
    /// Total candidates enumerated (including rejected ones).
    pub explored: usize,
    /// Candidates rejected because the derived program failed to re-typecheck.
    pub rejected_typecheck: usize,
    /// Well-typed candidates discarded as structural duplicates of earlier ones.
    pub dedup_hits: usize,
    /// Fully lowered candidates that failed to compile.
    pub rejected_compile: usize,
    /// Fully lowered candidates whose execution disagreed with the interpreter.
    pub rejected_incorrect: usize,
    /// Candidates rejected statically by the parallelism-ownership pass (a shared buffer
    /// written at a finer parallelism level than its owner). The incidents are in
    /// [`Exploration::soundness`].
    pub rejected_unsound: usize,
    /// Candidates rejected because the shadow-memory detector observed a data race during
    /// execution (only under [`ExplorationConfig::detect_races`]). The incidents are in
    /// [`Exploration::soundness`].
    pub rejected_race: usize,
    /// Candidates rejected because a barrier was reached by only part of a work group.
    /// The incidents are in [`Exploration::soundness`].
    pub rejected_divergence: usize,
    /// The typed incident behind every soundness rejection (static ownership violations
    /// and dynamic races/divergences), for machine-readable reporting.
    pub soundness: SoundnessReport,
    /// Distinct fully lowered candidates that reached scoring.
    pub lowered: usize,
    /// Distinct kernels actually executed on the virtual GPU (identical kernel sources are
    /// executed once and share their counters).
    pub executed_kernels: usize,
}

/// Errors from the exploration driver.
#[derive(Clone, Debug)]
pub enum ExploreError {
    /// Converting the input program to tree form failed.
    Term(TermError),
    /// The input program does not typecheck.
    Type(TypeError),
    /// The reference interpreter could not evaluate the input program.
    Reference(String),
    /// The configured launch is invalid for the configured device profile.
    Launch(LaunchError),
    /// Replaying a recorded derivation chain failed (see [`Enumerated::from_derivation`]).
    Replay(crate::provenance::ReplayError),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Term(e) => write!(f, "cannot build rewrite term: {e}"),
            ExploreError::Type(e) => write!(f, "input program does not typecheck: {e}"),
            ExploreError::Reference(e) => write!(f, "reference evaluation failed: {e}"),
            ExploreError::Launch(e) => {
                write!(f, "launch configuration is invalid for the device: {e}")
            }
            ExploreError::Replay(e) => write!(f, "derivation replay failed: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<TermError> for ExploreError {
    fn from(e: TermError) -> Self {
        ExploreError::Term(e)
    }
}

impl From<TypeError> for ExploreError {
    fn from(e: TypeError) -> Self {
        ExploreError::Type(e)
    }
}

impl From<crate::provenance::ReplayError> for ExploreError {
    fn from(e: crate::provenance::ReplayError) -> Self {
        ExploreError::Replay(e)
    }
}

/// The content-address identity of a program, as used by the derivation-service cache.
///
/// The 8-byte [`Term::dedup_key`] is the lookup address; the full canonical rendering is
/// stored alongside it and compared on every hit so a (vanishingly unlikely) 64-bit hash
/// collision degrades to a cache miss instead of serving the wrong derivation. The
/// [`Term::skeleton`] is the coarser similarity key used to warm-start tuner searches from
/// structurally related workloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalKey {
    /// The 8-byte canonical structural hash ([`Term::dedup_key`]).
    pub hash: DedupKey,
    /// The full canonical rendering ([`Term::pretty`]) guarding `hash` against collisions.
    pub rendering: String,
    /// The high-level pattern skeleton ([`Term::skeleton`]).
    pub skeleton: String,
}

/// Computes the [`CanonicalKey`] of a program, normalising exactly as [`enumerate`] does
/// (type inference, then tree conversion), so a program hashes identically whether it is
/// keyed for the cache or enumerated from scratch.
///
/// # Errors
///
/// Returns [`ExploreError::Type`] / [`ExploreError::Term`] when the program does not
/// typecheck or cannot be converted to tree form.
pub fn canonical_key(program: &Program) -> Result<CanonicalKey, ExploreError> {
    let mut typed = program.clone();
    infer_types(&mut typed)?;
    let root = Term::from_program(&typed)?;
    Ok(CanonicalKey {
        hash: root.dedup_key(),
        rendering: root.pretty(),
        skeleton: root.skeleton(),
    })
}

#[derive(Clone, Debug)]
struct Candidate {
    term: Term,
    steps: Vec<DerivationStep>,
    high_level_left: usize,
    /// Cached `term.body.size()` (used by the size gate and beam selection).
    size: usize,
}

/// Everything produced for one enumerated rewrite, in deterministic enumeration order. The
/// per-candidate work (replace, normalise, typecheck, hash) happens in the expansion workers;
/// the budget, statistics and dedup decisions happen in the sequential merge, so the parallel
/// run is byte-identical to the sequential one.
enum Outcome {
    /// The rewrite was enumerated but rejected: the replacement failed to apply, the term
    /// outgrew `max_term_size`, or the derived term failed the (term-level) typecheck.
    /// Counted against the candidate budget, like always. `site` carries the rendered
    /// rewrite location only under [`ExplorationConfig::trace_rejections`] with an enabled
    /// collector — the hot path never renders it.
    Rejected {
        rule: &'static str,
        reason: RejectReason,
        site: Option<Box<str>>,
    },
    /// A well-typed derived candidate and its dedup key.
    Derived(Box<Candidate>, DedupKey),
}

/// Cache key for per-site rule applicability: the raw structural hash of the site subtree
/// (unique names — sound under alpha-variation), its nesting context, and a hash of the
/// argument/environment types the rules may consult. Sites with equal keys present every
/// rule with literally the same input, so a rule that produced no rewrites once can be
/// skipped at every later occurrence of the subtree (beam candidates overwhelmingly share
/// unchanged subtrees across depth levels).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct SiteKey {
    expr: u64,
    ctx: NestContext,
    types: u64,
}

fn site_key(site_expr: &TermExpr, site: &Site) -> SiteKey {
    use std::hash::{Hash, Hasher};
    let mut h = StableHasher::new();
    for t in &site.arg_types {
        t.hash(&mut h);
    }
    h.write_u64(site.env_hash);
    SiteKey {
        expr: raw_expr_hash(site_expr),
        ctx: site.context,
        types: h.finish(),
    }
}

type RuleCache = Mutex<HashMap<SiteKey, u32>>;

/// The launch-independent half of an exploration: the fully lowered candidates found by the
/// rule search, together with the deterministic inputs and the reference output.
///
/// The rule search only depends on the *search* knobs of the [`ExplorationConfig`]
/// (`max_depth`, `beam_width`, `max_candidates`, `max_term_size`, `rule_options`) — not on
/// the launch configuration, compiler options or device profile, which only matter when
/// candidates are compiled and executed. [`Enumerated::score`] runs that second half, so an
/// auto-tuner sweeping launch configurations enumerates once per `RuleOptions` and re-scores
/// the shared candidate set per launch instead of repeating the whole search.
#[derive(Clone, Debug)]
pub struct Enumerated {
    complete: Vec<Candidate>,
    inputs: Vec<PreparedInput>,
    reference: Vec<f32>,
    search: Exploration,
}

impl Enumerated {
    /// Number of distinct fully lowered candidates the search found.
    pub fn lowered(&self) -> usize {
        self.complete.len()
    }

    /// The fully lowered candidates: each derived term with its derivation chain, in
    /// discovery order. The chains carry full provenance ([`DerivationStep::path`],
    /// [`DerivationStep::alternative`]), so [`crate::provenance::replay`] reproduces each
    /// term exactly.
    pub fn lowered_candidates(&self) -> impl Iterator<Item = (&Term, &[DerivationStep])> {
        self.complete.iter().map(|c| (&c.term, c.steps.as_slice()))
    }

    /// Reconstructs a single-candidate [`Enumerated`] from a recorded derivation chain
    /// instead of searching: the chain is replayed through [`crate::provenance::replay`]
    /// (under `config.rule_options`) and the deterministic inputs and reference output are
    /// regenerated exactly as [`enumerate`] would. Scoring the result re-runs the full
    /// compile → static ownership check → execute → validate pipeline, so a cached
    /// derivation served by the derivation service is re-proven sound on every hit — a
    /// stale or corrupted cache entry fails here instead of reaching a device.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Replay`] when the chain does not apply to `program` (wrong
    /// program, renamed rule, out-of-range alternative — the typical symptoms of a stale
    /// cache entry), and the usual input errors when `program` itself is invalid.
    pub fn from_derivation(
        program: &Program,
        steps: &[DerivationStep],
        config: &ExplorationConfig,
    ) -> Result<Enumerated, ExploreError> {
        let mut typed = program.clone();
        infer_types(&mut typed)?;
        let inputs = generate_inputs(&typed, &config.sizes).map_err(ExploreError::Reference)?;
        let input_values: Vec<Value> = inputs.iter().map(|i| i.value.clone()).collect();
        let reference = evaluate_with_sizes(&typed, &input_values, &config.sizes)
            .map_err(|e| ExploreError::Reference(e.to_string()))?
            .flatten_f32();
        let term = crate::provenance::replay(program, steps, &config.rule_options)?;
        let candidate = Candidate {
            high_level_left: high_level_count(&term.body),
            size: term.body.size(),
            steps: steps.to_vec(),
            term,
        };
        let search = Exploration {
            lowered: 1,
            ..Exploration::default()
        };
        Ok(Enumerated {
            complete: vec![candidate],
            inputs,
            reference,
            search,
        })
    }

    /// Compiles, validates and ranks the enumerated candidates under the launch
    /// configuration, compiler options and device profile of `config` (the search knobs of
    /// `config` are ignored — they were consumed by [`enumerate`]).
    ///
    /// The `sizes` environment must bind the same symbolic sizes as the enumerating call:
    /// the deterministic inputs and the reference output were generated from it.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Launch`] if `config.launch` is invalid for `config.device`.
    /// Failures of individual candidates are counted in the [`Exploration`] statistics.
    pub fn score(&self, config: &ExplorationConfig) -> Result<Exploration, ExploreError> {
        self.score_with(config, &Null)
    }

    /// Like [`Enumerated::score`], but emits phase spans (`typecheck`, `compile`, `execute`,
    /// `score`) and per-variant events to `collector`.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Launch`] if `config.launch` is invalid for `config.device`.
    pub fn score_with(
        &self,
        config: &ExplorationConfig,
        collector: &dyn Collector,
    ) -> Result<Exploration, ExploreError> {
        config
            .device
            .validate_launch(&config.launch)
            .map_err(ExploreError::Launch)?;
        let workers = worker_count(config);
        let mut stats = self.search.clone();
        score_all(
            &self.complete,
            &self.inputs,
            &self.reference,
            config,
            workers,
            &mut stats,
            collector,
        );
        Ok(stats)
    }
}

/// Explores the rewrite space of `program` and returns the validated, cost-ranked variants.
///
/// Equivalent to [`enumerate`] followed by [`Enumerated::score`] with the same
/// configuration; callers that sweep launch configurations should use the two-phase API
/// directly and share the [`Enumerated`] across launches.
///
/// # Errors
///
/// Returns an [`ExploreError`] if the *input* program is invalid (does not typecheck, cannot
/// be converted, or cannot be evaluated by the reference interpreter) or the launch is
/// invalid for the device. Failures of derived candidates are not errors — they are counted
/// in the [`Exploration`] statistics.
pub fn explore(program: &Program, config: &ExplorationConfig) -> Result<Exploration, ExploreError> {
    explore_with(program, config, &Null)
}

/// Like [`explore`], but emits telemetry events to `collector`: per-round beam statistics,
/// per-rule fire/reject counts, scoring-phase spans and the ranked variants. With the
/// default [`Null`] collector this is exactly [`explore`].
///
/// # Errors
///
/// See [`explore`].
pub fn explore_with(
    program: &Program,
    config: &ExplorationConfig,
    collector: &dyn Collector,
) -> Result<Exploration, ExploreError> {
    enumerate_with(program, config, collector)?.score_with(config, collector)
}

/// Runs the rule-search phase of an exploration: beam search over rule applications,
/// term-level typechecking and structural dedup, collecting every fully lowered candidate.
///
/// # Errors
///
/// Returns an [`ExploreError`] if the *input* program is invalid (does not typecheck, cannot
/// be converted, or cannot be evaluated by the reference interpreter).
pub fn enumerate(
    program: &Program,
    config: &ExplorationConfig,
) -> Result<Enumerated, ExploreError> {
    enumerate_with(program, config, &Null)
}

/// Per-round telemetry aggregation: everything needed for one [`Event::BeamRound`] plus the
/// per-rule tallies behind its [`Event::RuleRound`]s. Only touched when the collector is
/// enabled — the disabled hot path pays one branch per outcome.
#[derive(Default)]
struct RoundStats {
    expanded: u32,
    derived: u32,
    dedup_hits: u32,
    rejected: u32,
    completed: u32,
    rules: std::collections::BTreeMap<&'static str, RuleTally>,
}

#[derive(Default)]
struct RuleTally {
    fired: u32,
    ill_typed: u32,
    oversize: u32,
    failed: u32,
    duplicates: u32,
}

impl RoundStats {
    fn tally(&mut self, rule: &'static str) -> &mut RuleTally {
        self.rules.entry(rule).or_default()
    }

    /// Emits the round's [`Event::BeamRound`] followed by one [`Event::RuleRound`] per rule
    /// with activity (in rule-name order — deterministic regardless of worker scheduling).
    fn emit(&self, collector: &dyn Collector, depth: u32, frontier: u32, kept: u32) {
        collector.record(Event::BeamRound {
            depth,
            frontier,
            expanded: self.expanded,
            derived: self.derived,
            dedup_hits: self.dedup_hits,
            rejected: self.rejected,
            completed: self.completed,
            kept,
            pruned: self.derived.saturating_sub(kept),
        });
        for (rule, t) in &self.rules {
            collector.record(Event::RuleRound {
                rule,
                depth,
                fired: t.fired,
                ill_typed: t.ill_typed,
                oversize: t.oversize,
                failed: t.failed,
                duplicates: t.duplicates,
            });
        }
    }
}

/// Like [`enumerate`], but emits telemetry events to `collector`: an `enumerate` span, one
/// [`Event::BeamRound`] (+ per-rule [`Event::RuleRound`]s) per depth level, and — under
/// [`ExplorationConfig::trace_rejections`] — one [`Event::Rejection`] per rejected rewrite.
/// Events are emitted from the sequential merge only, so they are deterministic for any
/// thread count.
///
/// # Errors
///
/// See [`enumerate`].
pub fn enumerate_with(
    program: &Program,
    config: &ExplorationConfig,
    collector: &dyn Collector,
) -> Result<Enumerated, ExploreError> {
    collector.span_begin("enumerate");
    let result = enumerate_impl(program, config, collector);
    collector.span_end("enumerate");
    result
}

fn enumerate_impl(
    program: &Program,
    config: &ExplorationConfig,
    collector: &dyn Collector,
) -> Result<Enumerated, ExploreError> {
    let mut typed = program.clone();
    infer_types(&mut typed)?;

    // Deterministic inputs + the reference output from the interpreter.
    let inputs = generate_inputs(&typed, &config.sizes).map_err(ExploreError::Reference)?;
    let input_values: Vec<Value> = inputs.iter().map(|i| i.value.clone()).collect();
    let reference = evaluate_with_sizes(&typed, &input_values, &config.sizes)
        .map_err(|e| ExploreError::Reference(e.to_string()))?
        .flatten_f32();

    let root = Term::from_program(&typed)?;
    let workers = worker_count(config);
    let mut stats = Exploration::default();
    let mut seen: HashSet<DedupKey> = HashSet::new();
    let mut complete: Vec<Candidate> = Vec::new();
    let rule_cache: RuleCache = Mutex::new(HashMap::new());

    let start = Candidate {
        high_level_left: high_level_count(&root.body),
        size: root.body.size(),
        steps: Vec::new(),
        term: root,
    };
    seen.insert(start.term.dedup_key());
    if start.high_level_left == 0 {
        complete.push(start.clone());
    }
    let mut frontier = vec![start];

    let telemetry = collector.enabled();
    let trace = config.trace_rejections && telemetry;

    for depth in 0..config.max_depth {
        // The merge below consumes at most `remaining` outcomes before the budget trips
        // (the outcome that reaches the cap is counted but not processed — hence max(1)),
        // so expansion never derives/typechecks work the merge cannot consume.
        let remaining = config.max_candidates.saturating_sub(stats.explored).max(1);
        let expansions = expand_frontier(&frontier, config, &rule_cache, workers, remaining, trace);
        let frontier_len = frontier.len() as u32;
        let mut round = RoundStats::default();
        let mut next: Vec<Candidate> = Vec::new();
        let mut budget_hit = false;
        'merge: for outcomes in expansions {
            for outcome in outcomes {
                stats.explored += 1;
                if stats.explored >= config.max_candidates {
                    budget_hit = true;
                    break 'merge;
                }
                match outcome {
                    Outcome::Rejected { rule, reason, site } => {
                        if reason == RejectReason::IllTyped {
                            stats.rejected_typecheck += 1;
                        }
                        if telemetry {
                            round.expanded += 1;
                            round.rejected += 1;
                            let t = round.tally(rule);
                            t.fired += 1;
                            match reason {
                                RejectReason::IllTyped => t.ill_typed += 1,
                                RejectReason::Oversize => t.oversize += 1,
                                RejectReason::ReplaceFailed => t.failed += 1,
                                // Duplicates are tallied on their own path below; the
                                // soundness reasons are emitted from the scoring phases,
                                // never from rule enumeration.
                                RejectReason::Duplicate
                                | RejectReason::OwnershipViolation
                                | RejectReason::DataRace
                                | RejectReason::DivergentBarrier => {}
                            }
                            if let Some(site) = site {
                                collector.record(Event::Rejection {
                                    rule,
                                    site: site.into_string(),
                                    reason,
                                });
                            }
                        }
                    }
                    Outcome::Derived(cand, key) => {
                        if !seen.insert(key) {
                            stats.dedup_hits += 1;
                            if telemetry {
                                round.expanded += 1;
                                round.dedup_hits += 1;
                                let last =
                                    cand.steps.last().expect("derived candidates have steps");
                                let t = round.tally(last.rule);
                                t.fired += 1;
                                t.duplicates += 1;
                                if trace {
                                    collector.record(Event::Rejection {
                                        rule: last.rule,
                                        site: last.location.clone(),
                                        reason: RejectReason::Duplicate,
                                    });
                                }
                            }
                            continue;
                        }
                        if telemetry {
                            round.expanded += 1;
                            round.derived += 1;
                            let last = cand.steps.last().expect("derived candidates have steps");
                            round.tally(last.rule).fired += 1;
                            if cand.high_level_left == 0 {
                                round.completed += 1;
                            }
                        }
                        if cand.high_level_left == 0 {
                            complete.push((*cand).clone());
                        }
                        next.push(*cand);
                    }
                }
            }
        }
        if budget_hit {
            // The budget tripped mid-merge: no beam is selected — mirror that in the event.
            if telemetry {
                round.emit(collector, depth as u32, frontier_len, 0);
            }
            break;
        }
        if next.is_empty() {
            if telemetry {
                round.emit(collector, depth as u32, frontier_len, 0);
            }
            break;
        }
        // Beam selection: lowering progress first, then smaller terms (heap-based select-k,
        // equivalent to a stable sort by `(high_level_left, size)` plus truncation).
        frontier = select_beam(next, config.beam_width);
        if telemetry {
            round.emit(collector, depth as u32, frontier_len, frontier.len() as u32);
        }
        if frontier.is_empty() {
            break;
        }
    }

    stats.lowered = complete.len();
    Ok(Enumerated {
        complete,
        inputs,
        reference,
        search: stats,
    })
}

fn worker_count(config: &ExplorationConfig) -> usize {
    match config.threads {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Expands every frontier candidate, fanning out over `workers` scoped threads. The result
/// vector is in frontier order regardless of scheduling, and each inner vector is in the
/// deterministic site-major, rule-minor enumeration order.
///
/// `remaining` is the number of outcomes the merge can still consume before the candidate
/// budget trips. A single candidate's outcomes beyond that count can never be consumed, so
/// each expansion stops there; the sequential path additionally stops expanding further
/// candidates once earlier ones have already filled the budget (their outcomes are consumed
/// first, in frontier order).
fn expand_frontier(
    frontier: &[Candidate],
    config: &ExplorationConfig,
    cache: &RuleCache,
    workers: usize,
    remaining: usize,
    trace: bool,
) -> Vec<Vec<Outcome>> {
    if workers <= 1 || frontier.len() <= 1 {
        let mut out = Vec::with_capacity(frontier.len());
        let mut produced = 0usize;
        for c in frontier {
            if produced >= remaining {
                break;
            }
            let outcomes = expand(c, config, cache, remaining - produced, trace);
            produced += outcomes.len();
            out.push(outcomes);
        }
        return out;
    }
    let chunk = frontier.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = frontier
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    part.iter()
                        .map(|c| expand(c, config, cache, remaining, trace))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(frontier.len());
        for h in handles {
            out.extend(h.join().expect("expansion worker panicked"));
        }
        out
    })
}

/// Applies every rule at every site of one candidate, producing an [`Outcome`] per rewrite
/// (at most `limit` of them — exactly one outcome is pushed per enumerated rewrite, so the
/// cut-off point is deterministic).
fn expand(
    cand: &Candidate,
    config: &ExplorationConfig,
    cache: &RuleCache,
    limit: usize,
    trace: bool,
) -> Vec<Outcome> {
    let rules = all_rules();
    debug_assert!(rules.len() <= 32, "rule-applicability mask is a u32");
    let mut out = Vec::new();
    for site in sites(&cand.term) {
        if out.len() >= limit {
            break;
        }
        let Some(site_expr) = get(&cand.term.body, &site.location) else {
            continue;
        };
        let key = site_key(site_expr, &site);
        let cached_mask = cache.lock().expect("rule cache lock").get(&key).copied();
        let mut mask: u32 = 0;
        let mut truncated = false;
        for (rule_index, rule) in rules.iter().enumerate() {
            if out.len() >= limit {
                truncated = true;
                break;
            }
            if let Some(m) = cached_mask {
                if m & (1 << rule_index) == 0 {
                    continue;
                }
            }
            let mut fresh = cand.term.fresh;
            let rewrites = {
                let mut cx = RuleCx {
                    context: site.context,
                    arg_types: &site.arg_types,
                    env: &site.env,
                    options: &config.rule_options,
                    fresh: &mut fresh,
                };
                rule.applications(site_expr, &mut cx)
            };
            if !rewrites.is_empty() {
                mask |= 1 << rule_index;
            }
            // The rendered rejection site is only paid for under `trace_rejections`.
            let reject_site = |reason| Outcome::Rejected {
                rule: rule.name,
                reason,
                site: trace.then(|| format_location(&site.location).into_boxed_str()),
            };
            for (alternative, replacement) in rewrites.into_iter().enumerate() {
                if out.len() >= limit {
                    truncated = true;
                    break;
                }
                let Some(body) = replace(&cand.term.body, &site.location, replacement) else {
                    out.push(reject_site(RejectReason::ReplaceFailed));
                    continue;
                };
                let term = Term {
                    name: cand.term.name.clone(),
                    params: cand.term.params.clone(),
                    body: beta_normalize(&body),
                    fresh,
                };
                let size = term.body.size();
                if size > config.max_term_size {
                    out.push(reject_site(RejectReason::Oversize));
                    continue;
                }
                if typecheck(&term).is_err() {
                    out.push(reject_site(RejectReason::IllTyped));
                    continue;
                }
                let dedup = term.dedup_key();
                let mut steps = cand.steps.clone();
                steps.push(DerivationStep {
                    rule: rule.name,
                    kind: rule.kind,
                    location: format_location(&site.location),
                    path: site.location.clone(),
                    alternative,
                });
                out.push(Outcome::Derived(
                    Box::new(Candidate {
                        high_level_left: high_level_count(&term.body),
                        size,
                        term,
                        steps,
                    }),
                    dedup,
                ));
            }
        }
        // A mask recorded from a truncated rule sweep would be incomplete — never cache it.
        if cached_mask.is_none() && !truncated {
            cache.lock().expect("rule cache lock").insert(key, mask);
        }
    }
    out
}

/// Keeps the `width` best candidates by `(high_level_left, size)` in stable order, using a
/// bounded max-heap instead of sorting the whole expansion.
fn select_beam(next: Vec<Candidate>, width: usize) -> Vec<Candidate> {
    let mut heap: BinaryHeap<(usize, usize, usize)> = BinaryHeap::with_capacity(width + 1);
    for (idx, c) in next.iter().enumerate() {
        let key = (c.high_level_left, c.size, idx);
        if heap.len() < width {
            heap.push(key);
        } else if let Some(top) = heap.peek() {
            if key < *top {
                heap.pop();
                heap.push(key);
            }
        }
    }
    let mut selected = heap.into_vec();
    selected.sort_unstable();
    let mut slots: Vec<Option<Candidate>> = next.into_iter().map(Some).collect();
    selected
        .into_iter()
        .map(|(_, _, idx)| slots[idx].take().expect("beam indices are unique"))
        .collect()
}

/// Counts the high-level (`map`/`reduce`) pattern occurrences in a term body — the tree-form
/// equivalent of counting reachable high-level `FunDecl::Pattern`s in the arena program.
fn high_level_count(e: &TermExpr) -> usize {
    fn count_fun(f: &TermFun) -> usize {
        match f {
            TermFun::Lambda { body, .. } => high_level_count(body),
            TermFun::Map(g) | TermFun::Reduce(g) => 1 + count_fun(g),
            other => other.nested().map_or(0, count_fun),
        }
    }
    match e {
        TermExpr::Literal(_) | TermExpr::Param(_) => 0,
        TermExpr::Apply { f, args } => {
            count_fun(f) + args.iter().map(high_level_count).sum::<usize>()
        }
    }
}

#[derive(Clone)]
enum ScoreError {
    Compile,
    Incorrect,
    /// The candidate was rejected for a soundness reason — statically by the ownership
    /// pass, or dynamically by the race detector / barrier-divergence check — and the
    /// typed incident carries the details.
    Unsound(SoundnessIncident),
}

/// One prepared root-parameter input: the interpreter value and its flat buffer form.
#[derive(Clone, Debug)]
struct PreparedInput {
    value: Value,
    buffer: Vec<f32>,
}

/// Deterministic pseudo-random inputs derived from the root parameter types.
fn generate_inputs(program: &Program, sizes: &Environment) -> Result<Vec<PreparedInput>, String> {
    let params = program.root_params().to_vec();
    let mut out = Vec::with_capacity(params.len());
    for (i, p) in params.iter().enumerate() {
        let ty = program
            .expr(*p)
            .ty
            .clone()
            .ok_or_else(|| format!("root parameter {i} is untyped"))?;
        let mut state = 0x9e37u32.wrapping_add(i as u32 * 0x85eb);
        let value = value_of_type(&ty, sizes, &mut state)
            .ok_or_else(|| format!("cannot generate an input of type {ty}"))?;
        let buffer = value.flatten_f32();
        out.push(PreparedInput { value, buffer });
    }
    Ok(out)
}

/// Small deterministic generator: values in [-2, 2) with a quarter-step grid, so additions
/// and multiplications stay well inside `f32` exactness for the comparison tolerance.
fn next_input(state: &mut u32) -> f32 {
    *state = state.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*state >> 16) % 16) as f32 * 0.25 - 2.0
}

fn value_of_type(ty: &Type, sizes: &Environment, state: &mut u32) -> Option<Value> {
    match ty {
        Type::Scalar(_) => Some(Value::Float(next_input(state))),
        Type::Vector(_, width) => Some(Value::Vector(
            (0..*width)
                .map(|_| Value::Float(next_input(state)))
                .collect(),
        )),
        Type::Tuple(elems) => Some(Value::Tuple(
            elems
                .iter()
                .map(|e| value_of_type(e, sizes, state))
                .collect::<Option<Vec<_>>>()?,
        )),
        Type::Array(elem, len) => {
            let n = len.evaluate(sizes).ok()?;
            let n = usize::try_from(n).ok()?;
            Some(Value::Array(
                (0..n)
                    .map(|_| value_of_type(elem, sizes, state))
                    .collect::<Option<Vec<_>>>()?,
            ))
        }
    }
}

/// A complete candidate compiled and readied for execution.
struct PreparedScore {
    program: Program,
    module: lift_ocl::Module,
    /// The kernel sequence in launch order (one entry for single-kernel candidates).
    stages: Vec<KernelLaunchSpec>,
    kernel_source: String,
    args: Vec<KernelArg>,
    output_buffer_index: usize,
    /// Hash of (kernel source, arguments): candidates with equal keys execute identically,
    /// so the virtual GPU runs each distinct key once.
    exec_key: u64,
}

/// Compiles, deduplicates, executes, validates and ranks the complete candidates. The four
/// phases (typecheck → compile → execute → score) are bracketed with collector spans, so a
/// recorded trace breaks a scoring pass down into the wall time of each.
#[allow(clippy::too_many_arguments)]
fn score_all(
    complete: &[Candidate],
    inputs: &[PreparedInput],
    reference: &[f32],
    config: &ExplorationConfig,
    workers: usize,
    stats: &mut Exploration,
    collector: &dyn Collector,
) {
    // Phase 1 (cheap, serial): arena conversion + type inference for every candidate.
    collector.span_begin("typecheck");
    let typed: Vec<Result<Program, ScoreError>> =
        complete.iter().map(typecheck_candidate).collect();
    collector.span_end("typecheck");

    // Phase 2 (serial): compilation + argument marshalling.
    collector.span_begin("compile");
    let prepared: Vec<Result<PreparedScore, ScoreError>> = typed
        .into_iter()
        .map(|t| t.and_then(|program| compile_candidate(program, inputs, config)))
        .collect();
    collector.span_end("compile");

    // Phase 3: execute each distinct kernel once, fanning out over scoped threads. The job
    // list is in first-occurrence order and the results are merged by key, so scheduling
    // cannot influence the outcome.
    collector.span_begin("execute");
    let mut exec_seen: HashSet<u64> = HashSet::new();
    let jobs: Vec<&PreparedScore> = prepared
        .iter()
        .filter_map(|p| p.as_ref().ok())
        .filter(|p| exec_seen.insert(p.exec_key))
        .collect();
    stats.executed_kernels = jobs.len();
    // What one execution yields: merged counters, the sequence's estimated time, and the
    // per-stage counters (for [`Variant::stage_counters`] / execution profiles).
    type Scored = (CostCounters, f64, Vec<CostCounters>);
    let run = |p: &PreparedScore| -> (u64, Result<Scored, ScoreError>) {
        let result = ExecutionRequest::new(&p.module)
            .on_device(&config.device)
            .engine(config.engine)
            .race_detection(config.detect_races)
            .collector(collector)
            .launch_sequence(&p.stages, p.args.clone());
        let verdict = match result {
            Err(VgpuError::DataRace {
                buffer,
                index,
                writers,
                epoch,
            }) => Err(ScoreError::Unsound(SoundnessIncident::DataRace {
                buffer,
                index,
                writers,
                epoch,
            })),
            Err(VgpuError::DivergentBarrier {
                group,
                arrived,
                expected,
            }) => Err(ScoreError::Unsound(SoundnessIncident::DivergentBarrier {
                group,
                arrived,
                expected,
            })),
            Err(_) => Err(ScoreError::Incorrect),
            Ok(result) => {
                if outputs_match(&result.buffers[p.output_buffer_index], reference) {
                    let stage_counters = result.stage_counters();
                    let time = estimated_sequence_time(&stage_counters, &config.device);
                    Ok((result.merged_counters(), time, stage_counters))
                } else {
                    Err(ScoreError::Incorrect)
                }
            }
        };
        (p.exec_key, verdict)
    };
    let executed: HashMap<u64, Result<Scored, ScoreError>> = if workers <= 1 || jobs.len() <= 1 {
        jobs.iter().map(|p| run(p)).collect()
    } else {
        let chunk = jobs.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .map(|part| s.spawn(move || part.iter().map(|p| run(p)).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scoring worker panicked"))
                .collect()
        })
    };
    collector.span_end("execute");

    // Phase 4 (serial): per-candidate verdicts in candidate order, then ranking.
    collector.span_begin("score");
    let mut variants: Vec<Variant> = Vec::new();
    for (cand, prep) in complete.iter().zip(prepared) {
        match prep {
            Err(e) => reject_candidate(stats, collector, cand, e),
            Ok(p) => match executed.get(&p.exec_key) {
                Some(Ok((counters, time, stage_counters))) => variants.push(Variant {
                    program: p.program,
                    derivation: cand.steps.clone(),
                    kernel_source: p.kernel_source,
                    kernel_count: stage_counters.len(),
                    counters: *counters,
                    stage_counters: stage_counters.clone(),
                    stage_names: p.stages.iter().map(|s| s.kernel.clone()).collect(),
                    estimated_time: *time,
                }),
                Some(Err(e)) => reject_candidate(stats, collector, cand, e.clone()),
                None => stats.rejected_incorrect += 1,
            },
        }
    }
    variants.sort_by(|a, b| {
        a.estimated_time
            .partial_cmp(&b.estimated_time)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    variants.truncate(config.best_n);
    stats.variants = variants;
    collector.span_end("score");
    if collector.enabled() {
        collector.record(Event::Counter {
            name: "executed_kernels",
            value: stats.executed_kernels as f64,
        });
        for (rank, v) in stats.variants.iter().enumerate() {
            collector.record(Event::Variant {
                rank: rank as u32,
                estimated_time: v.estimated_time,
                kernels: v.kernel_count as u32,
                steps: v.derivation.len() as u32,
            });
        }
    }
}

/// Counts one rejected candidate. Soundness rejections additionally record the typed
/// incident on [`Exploration::soundness`] and — under an enabled collector — emit a
/// first-class [`Event::Rejection`] whose `rule` is the candidate's last derivation step
/// and whose `site` is the incident's one-line rendering. Unlike rewrite-level rejection
/// tracing this is not gated on [`ExplorationConfig::trace_rejections`]: soundness
/// rejections are rare and each one means a miscompile was prevented.
fn reject_candidate(
    stats: &mut Exploration,
    collector: &dyn Collector,
    cand: &Candidate,
    error: ScoreError,
) {
    match error {
        ScoreError::Compile => stats.rejected_compile += 1,
        ScoreError::Incorrect => stats.rejected_incorrect += 1,
        ScoreError::Unsound(incident) => {
            match &incident {
                SoundnessIncident::OwnershipViolation { .. } => stats.rejected_unsound += 1,
                SoundnessIncident::DataRace { .. } => stats.rejected_race += 1,
                SoundnessIncident::DivergentBarrier { .. } => stats.rejected_divergence += 1,
            }
            if collector.enabled() {
                collector.record(Event::Rejection {
                    rule: cand.steps.last().map_or("<input>", |s| s.rule),
                    site: incident.describe(),
                    reason: incident.reason(),
                });
            }
            stats.soundness.record(incident);
        }
    }
}

/// Phase-1 work for one candidate: arena conversion plus the type inference that fills in
/// the annotations code generation reads (the term-level checker already accepted it).
fn typecheck_candidate(cand: &Candidate) -> Result<Program, ScoreError> {
    let mut program = cand.term.to_program();
    infer_types(&mut program).map_err(|_| ScoreError::Compile)?;
    Ok(program)
}

fn compile_candidate(
    program: Program,
    inputs: &[PreparedInput],
    config: &ExplorationConfig,
) -> Result<PreparedScore, ScoreError> {
    use std::hash::Hasher;
    let options = config
        .compile_options
        .clone()
        .with_launch(config.launch.global, config.launch.local);
    let compiled = compile_program(&program, &options).map_err(|e| match e {
        // The ownership pass's typed rejection survives as a typed incident; every other
        // compile failure stays an undifferentiated compile rejection.
        CodegenError::OwnershipViolation {
            buffer,
            writer_level,
            owner_level,
            site,
        } => ScoreError::Unsound(SoundnessIncident::OwnershipViolation {
            buffer,
            writer_level: writer_level.label(),
            owner_level: owner_level.label(),
            site,
        }),
        _ => ScoreError::Compile,
    })?;
    let input_buffers: Vec<Vec<f32>> = inputs.iter().map(|i| i.buffer.clone()).collect();
    let (args, output_buffer_index) = compiled
        .bind_args(&input_buffers, &config.sizes)
        .map_err(|_| ScoreError::Compile)?;

    let stages = compiled.launch_plan(config.launch);
    let kernel_source = compiled.source();
    let mut h = StableHasher::new();
    h.write(kernel_source.as_bytes());
    for arg in &args {
        match arg {
            KernelArg::Buffer(data) => {
                h.write_u8(0);
                h.write_usize(data.len());
                for v in data {
                    h.write_u32(v.to_bits());
                }
            }
            KernelArg::Float(v) => {
                h.write_u8(1);
                h.write_u32(v.to_bits());
            }
            KernelArg::Int(v) => {
                h.write_u8(2);
                h.write_i64(*v);
            }
        }
    }
    Ok(PreparedScore {
        program,
        module: compiled.module,
        stages,
        kernel_source,
        args,
        output_buffer_index,
        exec_key: h.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_ir::UserFun;

    /// High-level partial dot product: `join ∘ map(reduce(add, 0)) ∘ split 128 ∘ map(mult)
    /// ∘ zip` — Listing 1 of the paper before any implementation choices are made.
    pub(crate) fn high_level_partial_dot(n: usize) -> Program {
        let mut p = Program::new("partial_dot");
        let mult = p.user_fun(UserFun::mult_pair());
        let add = p.user_fun(UserFun::add());
        let m1 = p.map(mult);
        let red = p.reduce(add, 0.0);
        let m2 = p.map(red);
        let s = p.split(128usize);
        let j = p.join();
        let z = p.zip2();
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), n)),
                ("y", Type::array(Type::float(), n)),
            ],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                let mapped = p.apply1(m1, zipped);
                let split = p.apply1(s, mapped);
                let outer = p.apply1(m2, split);
                p.apply1(j, outer)
            },
        );
        p
    }

    #[test]
    fn exploration_derives_multiple_correct_dot_product_variants() {
        let program = high_level_partial_dot(512);
        let config = ExplorationConfig {
            max_depth: 5,
            beam_width: 48,
            rule_options: RuleOptions {
                split_sizes: vec![2, 4],
                vector_widths: vec![4],
                tile_sizes: vec![],
            },
            launch: LaunchConfig::d1(16, 4),
            best_n: 4,
            ..ExplorationConfig::default()
        };
        let result = explore(&program, &config).expect("exploration runs");
        assert!(
            result.variants.len() >= 2,
            "expected at least two validated variants, got {} (lowered {}, compile-rejected \
             {}, incorrect {})",
            result.variants.len(),
            result.lowered,
            result.rejected_compile,
            result.rejected_incorrect
        );
        // Distinct lowered programs, each carrying a non-trivial derivation.
        let mut renderings = HashSet::new();
        for v in &result.variants {
            assert!(!v.derivation.is_empty());
            assert!(v.kernel_source.contains("kernel void"));
            assert!(
                renderings.insert(v.program.to_string()),
                "duplicate variant returned"
            );
            assert!(
                v.program.first_high_level_pattern().is_none(),
                "variant still contains high-level patterns"
            );
        }
        // Ranked by estimated time.
        for pair in result.variants.windows(2) {
            assert!(pair[0].estimated_time <= pair[1].estimated_time);
        }
        // Kernel-level execution dedup never runs more kernels than complete candidates.
        assert!(result.executed_kernels <= result.lowered);
    }

    #[test]
    fn two_phase_api_matches_explore_and_shares_enumeration_across_launches() {
        let program = high_level_partial_dot(512);
        let config = ExplorationConfig {
            max_depth: 5,
            beam_width: 32,
            max_candidates: 1500,
            rule_options: RuleOptions {
                split_sizes: vec![2, 4],
                vector_widths: vec![4],
                tile_sizes: vec![],
            },
            launch: LaunchConfig::d1(16, 4),
            best_n: 3,
            ..ExplorationConfig::default()
        };
        let enumerated = enumerate(&program, &config).expect("enumeration runs");
        assert!(enumerated.lowered() > 0);
        let scored = enumerated.score(&config).expect("scoring runs");
        let direct = explore(&program, &config).expect("exploration runs");
        assert_eq!(scored.explored, direct.explored);
        assert_eq!(scored.lowered, direct.lowered);
        assert_eq!(scored.variants.len(), direct.variants.len());
        for (a, b) in scored.variants.iter().zip(&direct.variants) {
            assert_eq!(a.kernel_source, b.kernel_source);
            assert_eq!(a.estimated_time, b.estimated_time);
        }
        // Re-scoring the same enumeration under a different launch produces different
        // estimated times without re-running the search.
        let wider = ExplorationConfig {
            launch: LaunchConfig::d1(128, 32),
            ..config.clone()
        };
        let rescored = enumerated.score(&wider).expect("re-scoring runs");
        assert_eq!(rescored.explored, scored.explored);
        assert!(!rescored.variants.is_empty());
        // An invalid launch for the device is a typed error, not a silent mis-scoring.
        let invalid = ExplorationConfig {
            launch: LaunchConfig::d1(4096, 2048),
            ..config
        };
        assert!(matches!(
            enumerated.score(&invalid),
            Err(ExploreError::Launch(_))
        ));
    }

    /// The PR-5 miscompile shape: every work item stages the whole tile into `__local`
    /// through its own `toLocal(mapSeq id)` copy inside the `mapLcl` lambda.
    fn racy_per_item_staging() -> Program {
        let mut p = Program::new("racy_stage");
        let id = p.user_fun(UserFun::id_float());
        let add = p.user_fun(UserFun::add());
        let copy_lcl = {
            let m = p.map_seq(id);
            p.to_local(m)
        };
        let red = p.reduce_seq(add, 0.0);
        let stage_and_reduce = p.lambda(&["t"], |p, params| {
            let staged = p.apply1(copy_lcl, params[0]);
            p.apply1(red, staged)
        });
        let lcl = p.map_lcl(0, stage_and_reduce);
        let inner_split = p.split(4usize);
        let group_body = p.compose(&[lcl, inner_split]);
        let wrg = p.map_wrg(0, group_body);
        let s = p.split(16usize);
        let j = p.join();
        p.with_root(
            vec![("x", Type::array(Type::float(), 64usize))],
            |p, params| {
                let split = p.apply1(s, params[0]);
                let mapped = p.apply1(wrg, split);
                p.apply1(j, mapped)
            },
        );
        p
    }

    #[test]
    fn statically_racy_candidate_is_rejected_with_a_typed_incident() {
        let program = racy_per_item_staging();
        let config = ExplorationConfig {
            max_depth: 1,
            beam_width: 8,
            max_candidates: 200,
            launch: LaunchConfig::d1(16, 4),
            ..ExplorationConfig::default()
        };
        let collector = lift_telemetry::InMemory::new();
        let result = explore_with(&program, &config, &collector).expect("exploration runs");
        assert!(
            result.rejected_unsound >= 1,
            "the ownership pass should reject the racy input candidate (got {result:?})"
        );
        let incident = result
            .soundness
            .static_rejections
            .first()
            .expect("the static incident is recorded on the report");
        match incident {
            SoundnessIncident::OwnershipViolation {
                buffer,
                owner_level,
                site,
                ..
            } => {
                assert!(buffer.contains("__local"), "buffer: {buffer}");
                assert_eq!(*owner_level, "work-group");
                assert!(site.contains("toLocal"), "site: {site}");
            }
            other => panic!("expected an ownership violation, got {other:?}"),
        }
        // The per-reason counts have a fixed shape, ownership violations first.
        let counts = result.soundness.counts();
        assert_eq!(counts[0].0, "ownership_violation");
        assert!(counts[0].1 >= 1);
        // The rejection is a first-class telemetry event — emitted to any enabled
        // collector, not gated on `trace_rejections`. The racy candidate is the search
        // input itself (no derivation steps), so the rule reads `<input>`.
        assert!(
            collector.events().iter().any(|t| matches!(
                &t.event,
                Event::Rejection {
                    rule: "<input>",
                    reason: RejectReason::OwnershipViolation,
                    ..
                }
            )),
            "expected an ownership-violation Event::Rejection"
        );
    }

    #[test]
    fn race_detection_is_on_by_default_and_does_not_change_winners() {
        let program = high_level_partial_dot(512);
        let config = ExplorationConfig {
            max_depth: 5,
            beam_width: 32,
            max_candidates: 1500,
            rule_options: RuleOptions {
                split_sizes: vec![2, 4],
                vector_widths: vec![4],
                tile_sizes: vec![],
            },
            launch: LaunchConfig::d1(16, 4),
            best_n: 3,
            ..ExplorationConfig::default()
        };
        assert!(config.detect_races);
        let enumerated = enumerate(&program, &config).expect("enumeration runs");
        let detected = enumerated.score(&config).expect("scoring runs");
        let plain = enumerated
            .score(&ExplorationConfig {
                detect_races: false,
                ..config
            })
            .expect("scoring runs");
        // Sound derivations are unaffected by the detector: same winners, same scores,
        // and nothing was rejected for a dynamic soundness reason.
        assert!(!detected.variants.is_empty());
        assert_eq!(detected.variants.len(), plain.variants.len());
        for (a, b) in detected.variants.iter().zip(&plain.variants) {
            assert_eq!(a.kernel_source, b.kernel_source);
            assert_eq!(a.estimated_time, b.estimated_time);
        }
        assert_eq!(detected.rejected_race, 0);
        assert_eq!(detected.rejected_divergence, 0);
        assert!(detected.soundness.is_clean());
    }

    #[test]
    fn exploration_rejects_untypeable_input() {
        let p = Program::new("empty");
        assert!(explore(&p, &ExplorationConfig::default()).is_err());
    }

    #[test]
    fn dedup_keys_are_eight_bytes() {
        // The `seen` set retains exactly one `DedupKey` per distinct candidate: its payload
        // memory is bounded by 8 bytes × candidates, not by candidate renderings.
        assert_eq!(std::mem::size_of::<DedupKey>(), 8);
    }
}
