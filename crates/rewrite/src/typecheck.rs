//! Type checking directly on the tree term representation.
//!
//! The exploration driver derives thousands of candidate terms per search; converting each
//! one to an arena [`lift_ir::Program`] just to run [`lift_ir::infer_types`] dominated the
//! enumeration cost. This module re-states the typing rules of Section 5.1 over
//! [`TermExpr`]/[`TermFun`] so candidates are checked *in place*: the arena round-trip now
//! happens only for candidates that survive dedup, complete lowering, and reach the scoring
//! stage (where the arena form is needed for code generation anyway).
//!
//! The checker reuses [`lift_ir::Type`] and [`lift_ir::TypeError`] and mirrors the arena
//! checker rule for rule — `typecheck(term)` accepts exactly when
//! `infer_types(&mut term.to_program())` accepts (a differential test in the exploration
//! test-suite pins this equivalence on every candidate of a representative search).

use lift_arith::ArithExpr;
use lift_ir::{Type, TypeError};

use crate::term::{Term, TermExpr, TermFun};

/// Infers the result type of the term's body, or the first inconsistency found.
///
/// # Errors
///
/// Returns the same [`TypeError`] the arena checker reports for the converted program.
pub fn typecheck(term: &Term) -> Result<Type, TypeError> {
    let mut scope: Vec<(&str, Type)> = term
        .params
        .iter()
        .map(|(n, t)| (n.as_str(), t.clone()))
        .collect();
    check_expr(&term.body, &mut scope)
}

fn check_expr<'t>(e: &'t TermExpr, scope: &mut Vec<(&'t str, Type)>) -> Result<Type, TypeError> {
    match e {
        TermExpr::Literal(l) => Ok(l.ty()),
        TermExpr::Param(name) => scope
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| TypeError::UntypedParam { name: name.clone() }),
        TermExpr::Apply { f, args } => {
            let mut arg_types = Vec::with_capacity(args.len());
            for a in args {
                arg_types.push(check_expr(a, scope)?);
            }
            check_call(f, &arg_types, scope)
        }
    }
}

/// The pretty name of a function, used in error messages (mirrors `Pattern::name`).
fn fun_name(f: &TermFun) -> String {
    match f {
        TermFun::Lambda { .. } => "lambda".into(),
        TermFun::UserFun(uf) => uf.name().to_string(),
        TermFun::Map(_) => "map".into(),
        TermFun::Reduce(_) => "reduce".into(),
        TermFun::MapSeq(_) => "mapSeq".into(),
        TermFun::MapGlb(dim, _) => format!("mapGlb{dim}"),
        TermFun::MapWrg(dim, _) => format!("mapWrg{dim}"),
        TermFun::MapLcl(dim, _) => format!("mapLcl{dim}"),
        TermFun::MapVec(_) => "mapVec".into(),
        TermFun::ReduceSeq(_) => "reduceSeq".into(),
        TermFun::Id => "id".into(),
        TermFun::Iterate(n, _) => format!("iterate{n}"),
        TermFun::Split(chunk) => format!("split{chunk}"),
        TermFun::Join => "join".into(),
        TermFun::Gather(_) => "gather".into(),
        TermFun::Scatter(_) => "scatter".into(),
        TermFun::Transpose => "transpose".into(),
        TermFun::Zip(_) => "zip".into(),
        TermFun::Get(index) => format!("get{index}"),
        TermFun::Slide(size, step) => format!("slide({size},{step})"),
        TermFun::Pad(left, right, mode) => format!("pad{}({left},{right})", mode.name()),
        TermFun::ToGlobal(_) => "toGlobal".into(),
        TermFun::ToLocal(_) => "toLocal".into(),
        TermFun::ToPrivate(_) => "toPrivate".into(),
        TermFun::AsVector(width) => format!("asVector{width}"),
        TermFun::AsScalar => "asScalar".into(),
    }
}

/// The call arity of a function in tree form (mirrors `Pattern::arity`).
fn arity(f: &TermFun) -> usize {
    match f {
        TermFun::Reduce(_) | TermFun::ReduceSeq(_) => 2,
        TermFun::Zip(arity) => *arity,
        _ => 1,
    }
}

/// Infers the result type of calling `f` with arguments of the given types (the tree-form
/// mirror of the arena checker's `infer_call` + `infer_pattern`).
#[allow(clippy::too_many_lines)]
fn check_call<'t>(
    f: &'t TermFun,
    arg_types: &[Type],
    scope: &mut Vec<(&'t str, Type)>,
) -> Result<Type, TypeError> {
    // The memory-placement wrappers are transparent: arity checking is deferred to the
    // nested call, exactly as in the arena checker.
    let transparent = matches!(
        f,
        TermFun::ToGlobal(_) | TermFun::ToLocal(_) | TermFun::ToPrivate(_)
    );
    match f {
        TermFun::Lambda { params, body } => {
            if params.len() != arg_types.len() {
                return Err(TypeError::WrongArity {
                    function: "lambda".into(),
                    expected: params.len(),
                    found: arg_types.len(),
                });
            }
            let base = scope.len();
            for (p, t) in params.iter().zip(arg_types) {
                scope.push((p.as_str(), t.clone()));
            }
            let result = check_expr(body, scope);
            scope.truncate(base);
            return result;
        }
        TermFun::UserFun(uf) => {
            if uf.arity() != arg_types.len() {
                return Err(TypeError::WrongArity {
                    function: uf.name().to_string(),
                    expected: uf.arity(),
                    found: arg_types.len(),
                });
            }
            for (expected, found) in uf.param_types().iter().zip(arg_types) {
                if expected != found {
                    return Err(TypeError::Mismatch {
                        context: format!("call to user function `{}`", uf.name()),
                        expected: expected.to_string(),
                        found: found.to_string(),
                    });
                }
            }
            return Ok(uf.return_type().clone());
        }
        _ => {}
    }

    let expect_arity = arity(f);
    if !transparent && arg_types.len() != expect_arity {
        return Err(TypeError::WrongArity {
            function: fun_name(f),
            expected: expect_arity,
            found: arg_types.len(),
        });
    }
    let array_of = |f: &TermFun, t: &Type| -> Result<(Type, ArithExpr), TypeError> {
        match t.as_array() {
            Some((elem, len)) => Ok((elem.clone(), len.clone())),
            None => Err(TypeError::NotAnArray {
                pattern: fun_name(f),
                found: t.to_string(),
            }),
        }
    };

    match f {
        TermFun::Lambda { .. } | TermFun::UserFun(_) => unreachable!("handled above"),
        TermFun::Map(g)
        | TermFun::MapSeq(g)
        | TermFun::MapGlb(_, g)
        | TermFun::MapWrg(_, g)
        | TermFun::MapLcl(_, g) => {
            let (elem, len) = array_of(f, &arg_types[0])?;
            let out_elem = check_call(g, &[elem], scope)?;
            Ok(Type::array(out_elem, len))
        }
        TermFun::MapVec(g) => match &arg_types[0] {
            Type::Vector(kind, width) => {
                let out = check_call(g, &[Type::Scalar(*kind)], scope)?;
                match out {
                    Type::Scalar(out_kind) => Ok(Type::Vector(out_kind, *width)),
                    other => Err(TypeError::Mismatch {
                        context: "mapVec function result".into(),
                        expected: "a scalar".into(),
                        found: other.to_string(),
                    }),
                }
            }
            other => Err(TypeError::Mismatch {
                context: "mapVec argument".into(),
                expected: "a vector".into(),
                found: other.to_string(),
            }),
        },
        TermFun::Reduce(g) | TermFun::ReduceSeq(g) => {
            let init = arg_types[0].clone();
            let (elem, _len) = array_of(f, &arg_types[1])?;
            let acc = check_call(g, &[init.clone(), elem], scope)?;
            if acc != init {
                return Err(TypeError::Mismatch {
                    context: format!("{} accumulator", fun_name(f)),
                    expected: init.to_string(),
                    found: acc.to_string(),
                });
            }
            Ok(Type::array(acc, 1usize))
        }
        TermFun::Id => Ok(arg_types[0].clone()),
        TermFun::Iterate(n, g) => {
            let mut current = arg_types[0].clone();
            for _ in 0..*n {
                current = check_call(g, &[current], scope)?;
            }
            Ok(current)
        }
        TermFun::Split(chunk) => {
            let (elem, len) = array_of(f, &arg_types[0])?;
            let outer = len / chunk.clone();
            Ok(Type::array(Type::array(elem, chunk.clone()), outer))
        }
        TermFun::Join => {
            let (elem, outer) = array_of(f, &arg_types[0])?;
            let (inner_elem, inner) = array_of(f, &elem)?;
            Ok(Type::array(inner_elem, outer * inner))
        }
        TermFun::Gather(_) | TermFun::Scatter(_) => Ok(arg_types[0].clone()),
        TermFun::Transpose => {
            let (row, n) = array_of(f, &arg_types[0])?;
            let (elem, m) = array_of(f, &row)?;
            Ok(Type::array(Type::array(elem, n), m))
        }
        TermFun::Zip(_) => {
            let mut elems = Vec::with_capacity(arg_types.len());
            let mut len: Option<ArithExpr> = None;
            for t in arg_types {
                let (elem, l) = array_of(f, t)?;
                match &len {
                    None => len = Some(l),
                    Some(first) => {
                        if *first != l {
                            return Err(TypeError::ZipLengthMismatch {
                                first: first.to_string(),
                                other: l.to_string(),
                            });
                        }
                    }
                }
                elems.push(elem);
            }
            Ok(Type::array(
                Type::Tuple(elems),
                len.expect("zip has at least one argument"),
            ))
        }
        TermFun::Get(index) => match &arg_types[0] {
            Type::Tuple(elems) => {
                elems
                    .get(*index)
                    .cloned()
                    .ok_or(TypeError::TupleIndexOutOfRange {
                        index: *index,
                        arity: elems.len(),
                    })
            }
            other => Err(TypeError::Mismatch {
                context: "get".into(),
                expected: "a tuple".into(),
                found: other.to_string(),
            }),
        },
        TermFun::Slide(size, step) => {
            let (elem, len) = array_of(f, &arg_types[0])?;
            lift_ir::check_slide_divisibility(&len, size, step)?;
            let windows = (len - size.clone()) / step.clone() + 1;
            Ok(Type::array(Type::array(elem, size.clone()), windows))
        }
        TermFun::Pad(left, right, mode) => {
            let (elem, len) = array_of(f, &arg_types[0])?;
            lift_ir::check_pad_width(left, right, *mode, &len)?;
            Ok(Type::array(elem, left.clone() + len + right.clone()))
        }
        TermFun::ToGlobal(g) | TermFun::ToLocal(g) | TermFun::ToPrivate(g) => {
            check_call(g, arg_types, scope)
        }
        TermFun::AsVector(width) => {
            let (elem, len) = array_of(f, &arg_types[0])?;
            match elem {
                Type::Scalar(kind) => Ok(Type::array(
                    Type::Vector(kind, *width),
                    len / ArithExpr::cst(*width as i64),
                )),
                other => Err(TypeError::Mismatch {
                    context: "asVector".into(),
                    expected: "an array of scalars".into(),
                    found: other.to_string(),
                }),
            }
        }
        TermFun::AsScalar => {
            let (elem, len) = array_of(f, &arg_types[0])?;
            match elem {
                Type::Vector(kind, width) => Ok(Type::array(
                    Type::Scalar(kind),
                    len * ArithExpr::cst(width as i64),
                )),
                other => Err(TypeError::Mismatch {
                    context: "asScalar".into(),
                    expected: "an array of vectors".into(),
                    found: other.to_string(),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_ir::{infer_types, Program, UserFun};

    fn term_of(p: &Program) -> Term {
        let mut typed = p.clone();
        infer_types(&mut typed).expect("input types");
        Term::from_program(&typed).expect("converts")
    }

    #[test]
    fn term_checker_accepts_what_the_arena_checker_accepts() {
        let mut p = Program::new("dot");
        let mult = p.user_fun(UserFun::mult_pair());
        let add = p.user_fun(UserFun::add());
        let m = p.map(mult);
        let red = p.reduce(add, 0.0);
        let z = p.zip2();
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), 16usize)),
                ("y", Type::array(Type::float(), 16usize)),
            ],
            |p, params| {
                let zipped = p.apply(z, [params[0], params[1]]);
                let mapped = p.apply1(m, zipped);
                p.apply1(red, mapped)
            },
        );
        let term = term_of(&p);
        let ty = typecheck(&term).expect("term typechecks");
        // reduce produces a singleton array.
        assert_eq!(ty, Type::array(Type::float(), 1usize));
    }

    #[test]
    fn term_checker_rejects_zip_length_mismatch() {
        let mut p = Program::new("bad");
        let z = p.zip2();
        p.with_root(
            vec![
                ("x", Type::array(Type::float(), 8usize)),
                ("y", Type::array(Type::float(), 9usize)),
            ],
            |p, params| p.apply(z, [params[0], params[1]]),
        );
        // The arena checker rejects this program, so the term checker must too. The term is
        // built by hand because `Term::from_program` requires typed root parameters only.
        let term = Term::from_program(&p).expect("converts");
        let err = typecheck(&term).unwrap_err();
        assert!(matches!(err, TypeError::ZipLengthMismatch { .. }), "{err}");
        assert!(infer_types(&mut p.clone()).is_err());
    }

    #[test]
    fn term_checker_rejects_wrong_reduction_operator() {
        let mut p = Program::new("bad");
        // mult_pair has the wrong shape for a reduction operator.
        let bad = p.user_fun(UserFun::mult_pair());
        let pattern = p.reduce_seq_pattern(bad);
        p.with_root(
            vec![("x", Type::array(Type::float(), 8usize))],
            |p, params| {
                let init = p.literal_f32(0.0);
                p.apply(pattern, [init, params[0]])
            },
        );
        let term = Term::from_program(&p).expect("converts");
        assert!(typecheck(&term).is_err());
        assert!(infer_types(&mut p.clone()).is_err());
    }

    #[test]
    fn transparent_wrappers_defer_arity() {
        // toPrivate(reduceSeq(add)) is called with two arguments.
        let mut p = Program::new("wrapped");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce_seq_pattern(add);
        let wrapped = p.to_private(red);
        p.with_root(
            vec![("x", Type::array(Type::float(), 8usize))],
            |p, params| {
                let init = p.literal_f32(0.0);
                p.apply(wrapped, [init, params[0]])
            },
        );
        let term = term_of(&p);
        assert_eq!(
            typecheck(&term).expect("term typechecks"),
            Type::array(Type::float(), 1usize)
        );
    }
}
