//! Property tests for the rewrite rules: *every* applicable rule application must preserve
//! both types (the derived program re-typechecks) and semantics (the reference interpreter
//! computes the same result on random inputs).

use lift_arith::ArithExpr;
use lift_interp::{evaluate, Value};
use lift_ir::prelude::*;
use lift_rewrite::{all_rules, beta_normalize, RuleCx, RuleOptions, Term};
use lift_rewrite::{sites, traversal};
use proptest::prelude::*;

/// The high-level programs the properties are checked on.
#[derive(Clone, Copy, Debug)]
enum Subject {
    /// `join ∘ map(reduce(+,0)) ∘ split 16 ∘ map(×) ∘ zip` over 64 elements.
    PartialDot,
    /// `reduce(+, 0) ∘ map(square)` over 32 elements.
    SquareSum,
    /// `map(id) ∘ gather(reverse) ∘ join ∘ split 4` over 32 elements (layout-heavy).
    Layout,
    /// `map(reduce(+, 0)) ∘ slide(3, 1) ∘ pad(1, 1, clamp)` over 18 elements — the
    /// boundary-handled stencil shape the overlapped-tiling and pad rules target.
    Stencil,
}

fn build(subject: Subject) -> (Program, Vec<Vec<f32>>) {
    match subject {
        Subject::PartialDot => {
            let n = 64;
            let mut p = Program::new("pdot");
            let mult = p.user_fun(UserFun::mult_pair());
            let add = p.user_fun(UserFun::add());
            let m1 = p.map(mult);
            let red = p.reduce(add, 0.0);
            let m2 = p.map(red);
            let s = p.split(16usize);
            let j = p.join();
            let z = p.zip2();
            p.with_root(
                vec![
                    ("x", Type::array(Type::float(), n)),
                    ("y", Type::array(Type::float(), n)),
                ],
                |p, params| {
                    let zipped = p.apply(z, [params[0], params[1]]);
                    let mapped = p.apply1(m1, zipped);
                    let split = p.apply1(s, mapped);
                    let outer = p.apply1(m2, split);
                    p.apply1(j, outer)
                },
            );
            (p, vec![vec![0.0; n], vec![0.0; n]])
        }
        Subject::SquareSum => {
            let n = 32;
            let mut p = Program::new("sqsum");
            let mult = p.user_fun(UserFun::mult());
            let sq = p.lambda(&["v"], |p, params| p.apply(mult, [params[0], params[0]]));
            let add = p.user_fun(UserFun::add());
            let m = p.map(sq);
            let red = p.reduce(add, 0.0);
            p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
                let mapped = p.apply1(m, params[0]);
                p.apply1(red, mapped)
            });
            (p, vec![vec![0.0; n]])
        }
        Subject::Layout => {
            let n = 32;
            let mut p = Program::new("layout");
            let id = p.user_fun(UserFun::id_float());
            let m = p.map(id);
            let g = p.gather(Reorder::Reverse);
            let s = p.split(4usize);
            let j = p.join();
            p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
                let split = p.apply1(s, params[0]);
                let joined = p.apply1(j, split);
                let gathered = p.apply1(g, joined);
                p.apply1(m, gathered)
            });
            (p, vec![vec![0.0; n]])
        }
        Subject::Stencil => {
            let n = 18;
            let mut p = Program::new("stencil");
            let add = p.user_fun(UserFun::add());
            let red = p.reduce(add, 0.0);
            let m = p.map(red);
            let pad = p.pad(1usize, 1usize, PadMode::Clamp);
            let s = p.slide(3usize, 1usize);
            p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
                let padded = p.apply1(pad, params[0]);
                let windows = p.apply1(s, padded);
                p.apply1(m, windows)
            });
            (p, vec![vec![0.0; n]])
        }
    }
}

fn fill_inputs(shapes: &[Vec<f32>], seed: u32) -> Vec<Vec<f32>> {
    shapes
        .iter()
        .enumerate()
        .map(|(k, buf)| {
            (0..buf.len())
                .map(|i| {
                    let h = (i as u32)
                        .wrapping_mul(31)
                        .wrapping_add(seed)
                        .wrapping_add(k as u32 * 7919);
                    ((h % 16) as f32) * 0.25 - 2.0
                })
                .collect()
        })
        .collect()
}

/// Applies up to `choices.len()` randomly chosen rule applications, checking type and
/// semantics preservation after every step.
fn random_derivation_preserves(subject: Subject, choices: &[usize], seed: u32) {
    let (program, shapes) = build(subject);
    let inputs = fill_inputs(&shapes, seed);
    let values: Vec<Value> = inputs.iter().map(|b| Value::from_f32_slice(b)).collect();
    let reference = evaluate(&program, &values)
        .expect("the starting program evaluates")
        .flatten_f32();

    let options = RuleOptions {
        split_sizes: vec![2, 4],
        vector_widths: vec![2, 4],
        tile_sizes: vec![lift_rewrite::TileSize::d1(2), lift_rewrite::TileSize::d1(4)],
    };
    let mut term = Term::from_program(&program).expect("term conversion");
    for &choice in choices {
        // Enumerate every (site, rule, rewrite) triple currently applicable.
        let mut rewrites = Vec::new();
        let mut fresh = term.fresh;
        for site in sites(&term) {
            let Some(site_expr) = traversal::get(&term.body, &site.location) else {
                continue;
            };
            for rule in all_rules() {
                let results = {
                    let mut cx = RuleCx {
                        context: site.context,
                        arg_types: &site.arg_types,
                        env: &site.env,
                        options: &options,
                        fresh: &mut fresh,
                    };
                    rule.applications(site_expr, &mut cx)
                };
                for r in results {
                    rewrites.push((site.location.clone(), rule.name, r));
                }
            }
        }
        if rewrites.is_empty() {
            break;
        }
        let (location, rule_name, replacement) = rewrites.swap_remove(choice % rewrites.len());
        let body =
            traversal::replace(&term.body, &location, replacement).expect("location stays valid");
        term = Term {
            name: term.name.clone(),
            params: term.params.clone(),
            body: beta_normalize(&body),
            fresh,
        };

        // Type preservation: the derived program must re-typecheck.
        let mut derived = term.to_program();
        prop_assert!(
            infer_types(&mut derived).is_ok(),
            "rule `{rule_name}` produced an ill-typed program:\n{derived}"
        );
        // Semantics preservation: the interpreter result must be unchanged.
        let out = evaluate(&derived, &values);
        prop_assert!(
            out.is_ok(),
            "rule `{rule_name}` produced a program the interpreter rejects:\n{derived}"
        );
        let out = out.unwrap().flatten_f32();
        prop_assert_eq!(
            &out,
            &reference,
            "rule `{}` changed the program's semantics:\n{}",
            rule_name,
            derived
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of rule applications preserves types and interpreter semantics.
    #[test]
    fn every_rule_application_preserves_types_and_semantics(
        subject in prop_oneof![
            Just(Subject::PartialDot),
            Just(Subject::SquareSum),
            Just(Subject::Layout),
            Just(Subject::Stencil),
        ],
        c0 in 0usize..1000,
        c1 in 0usize..1000,
        c2 in 0usize..1000,
        c3 in 0usize..1000,
        seed in 0u32..1000,
    ) {
        random_derivation_preserves(subject, &[c0, c1, c2, c3], seed);
    }

    /// The arithmetic divisibility side condition matches concrete arithmetic.
    #[test]
    fn divisibility_check_is_sound(len in 1i64..4096, c in 1i64..64) {
        let checked = lift_rewrite::divides(c, &ArithExpr::cst(len));
        prop_assert_eq!(checked, len % c == 0);
    }
}
