//! Regression tests for the exploration hot path: the parallel driver must be
//! indistinguishable from the sequential one, the canonical structural hash must agree with
//! the pretty-printed rendering it replaced as the dedup key, and the term-level type
//! checker must agree with the arena checker it replaced as the enumeration gate.

use std::collections::HashSet;

use lift_benchmarks::dot_product;
use lift_ir::{infer_types, Program};
use lift_rewrite::{
    all_rules, canonical_key, explore, explore_with, get, replace, sites, typecheck,
    ExplorationConfig, RuleCx, RuleOptions, Term,
};
use lift_telemetry::InMemory;
use lift_vgpu::LaunchConfig;

fn search_config(threads: usize) -> ExplorationConfig {
    ExplorationConfig {
        max_depth: 5,
        beam_width: 48,
        max_candidates: 4000,
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: vec![],
        },
        launch: LaunchConfig::d1(16, 4),
        best_n: 4,
        threads,
        ..ExplorationConfig::default()
    }
}

#[test]
fn parallel_exploration_equals_sequential_exploration() {
    let program = dot_product::high_level_program(512);
    let sequential = explore(&program, &search_config(1)).expect("sequential runs");
    let parallel = explore(&program, &search_config(4)).expect("parallel runs");

    // Identical statistics…
    assert_eq!(sequential.explored, parallel.explored);
    assert_eq!(sequential.rejected_typecheck, parallel.rejected_typecheck);
    assert_eq!(sequential.dedup_hits, parallel.dedup_hits);
    assert_eq!(sequential.rejected_compile, parallel.rejected_compile);
    assert_eq!(sequential.rejected_incorrect, parallel.rejected_incorrect);
    assert_eq!(sequential.lowered, parallel.lowered);
    assert_eq!(sequential.executed_kernels, parallel.executed_kernels);

    // …and an identical variant list: same programs, same derivation chains (rule names and
    // locations, in order), same estimated times, in the same order.
    assert_eq!(sequential.variants.len(), parallel.variants.len());
    assert!(!sequential.variants.is_empty(), "search found variants");
    for (s, p) in sequential.variants.iter().zip(&parallel.variants) {
        assert_eq!(s.program.to_string(), p.program.to_string());
        assert_eq!(s.kernel_source, p.kernel_source);
        assert_eq!(s.estimated_time, p.estimated_time);
        let s_steps: Vec<_> = s.derivation.iter().map(|d| (d.rule, &d.location)).collect();
        let p_steps: Vec<_> = p.derivation.iter().map(|d| (d.rule, &d.location)).collect();
        assert_eq!(s_steps, p_steps);
    }
}

/// The exploration outcome reduced to everything observable: statistics, variant programs,
/// kernels, times and derivation chains.
fn fingerprint(result: &lift_rewrite::Exploration) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "explored={} typecheck={} dedup={} compile={} incorrect={} lowered={} kernels={}\n",
        result.explored,
        result.rejected_typecheck,
        result.dedup_hits,
        result.rejected_compile,
        result.rejected_incorrect,
        result.lowered,
        result.executed_kernels,
    );
    for v in &result.variants {
        let chain: Vec<String> = v
            .derivation
            .iter()
            .map(|s| format!("{} @ {}", s.rule, s.location))
            .collect();
        let _ = writeln!(
            out,
            "t={} chain=[{}]\n{}\n{}",
            v.estimated_time,
            chain.join("; "),
            v.program,
            v.kernel_source
        );
    }
    out
}

#[test]
fn an_enabled_collector_does_not_change_exploration_results() {
    // Telemetry is observability, not behaviour: the default Null-collector path, an
    // enabled in-memory collector, and an enabled collector with per-rejection tracing must
    // all produce byte-identical exploration outcomes.
    let program = dot_product::high_level_program(512);
    let config = search_config(4);
    let null_path = explore(&program, &config).expect("null-collector exploration runs");

    let collector = InMemory::new();
    let collected = explore_with(&program, &config, &collector).expect("collected runs");
    assert_eq!(fingerprint(&null_path), fingerprint(&collected));
    let events = collector.into_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, lift_telemetry::Event::BeamRound { .. })),
        "the enabled collector observed beam rounds"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.event, lift_telemetry::Event::Rejection { .. })),
        "rejection events stay off unless trace_rejections is set"
    );

    let tracing = InMemory::new();
    let traced = explore_with(
        &program,
        &ExplorationConfig {
            trace_rejections: true,
            ..config.clone()
        },
        &tracing,
    )
    .expect("traced runs");
    assert_eq!(fingerprint(&null_path), fingerprint(&traced));
    assert!(
        tracing
            .into_events()
            .iter()
            .any(|e| matches!(e.event, lift_telemetry::Event::Rejection { .. })),
        "trace_rejections surfaces per-site rejection events"
    );
}

#[test]
fn null_collector_results_match_the_committed_baseline() {
    // Pins the Null-collector path to the committed `BENCH_explore.json` numbers (the
    // candidate count, variant count, best cost and best chain recorded before the
    // telemetry layer existed): instrumentation must not perturb the search.
    let program = dot_product::high_level_program(512);
    let result = explore(&program, &search_config(4)).expect("exploration runs");
    assert_eq!(result.explored, 1036);
    assert_eq!(result.variants.len(), 4);
    let best = &result.variants[0];
    assert!(
        (best.estimated_time - 19039.903).abs() < 1e-2,
        "best estimated time drifted: {}",
        best.estimated_time
    );
    let chain: Vec<String> = best
        .derivation
        .iter()
        .map(|s| format!("{} @ {}", s.rule, s.location))
        .collect();
    assert_eq!(
        chain,
        [
            "map-to-mapGlb @ .arg0.arg0.arg0",
            "reduce-to-reduceSeq @ .arg0.fun1.body",
            "map-to-mapWrg-mapLcl @ .arg0",
        ]
    );
}

/// Enumerates every term derivable from `term` by one rule application, in the driver's
/// site-major, rule-minor order.
fn derive_once(term: &Term, options: &RuleOptions) -> Vec<Term> {
    let mut out = Vec::new();
    for site in sites(term) {
        let Some(site_expr) = get(&term.body, &site.location) else {
            continue;
        };
        for rule in all_rules() {
            let mut fresh = term.fresh;
            let rewrites = {
                let mut cx = RuleCx {
                    context: site.context,
                    arg_types: &site.arg_types,
                    env: &site.env,
                    options,
                    fresh: &mut fresh,
                };
                rule.applications(site_expr, &mut cx)
            };
            for replacement in rewrites {
                let Some(body) = replace(&term.body, &site.location, replacement) else {
                    continue;
                };
                out.push(Term {
                    name: term.name.clone(),
                    params: term.params.clone(),
                    body: lift_rewrite::beta_normalize(&body),
                    fresh,
                });
            }
        }
    }
    out
}

/// All candidates reachable from the dot-product program within two rule applications —
/// a few hundred terms covering every rule family.
fn two_level_candidates() -> Vec<Term> {
    let mut program = dot_product::high_level_program(512);
    infer_types(&mut program).expect("input types");
    let root = Term::from_program(&program).expect("converts");
    let options = RuleOptions {
        split_sizes: vec![2, 4],
        vector_widths: vec![4],
        tile_sizes: vec![lift_rewrite::TileSize::d1(2), lift_rewrite::TileSize::d1(4)],
    };
    let mut all = vec![root.clone()];
    let depth1 = derive_once(&root, &options);
    for t in depth1.iter().take(40) {
        all.extend(derive_once(t, &options));
    }
    all.extend(depth1);
    all
}

#[test]
fn structural_hash_equality_implies_rendering_equality() {
    // The dedup key replaced `Program::to_string()` in a `HashSet<String>`; soundness of
    // that replacement is exactly this implication (the converse — distinct renderings get
    // distinct keys — is what makes the dedup no coarser than before, checked here too).
    let candidates = two_level_candidates();
    assert!(candidates.len() > 200, "generator produced a real corpus");
    let mut by_key: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    let mut renderings: HashSet<String> = HashSet::new();
    let mut distinct_keys: HashSet<u64> = HashSet::new();
    for term in &candidates {
        let key = term.dedup_key();
        let rendering = render(term);
        match by_key.get(&key) {
            Some(existing) => assert_eq!(
                existing, &rendering,
                "hash collision: same key, different renderings"
            ),
            None => {
                by_key.insert(key, rendering.clone());
            }
        }
        renderings.insert(rendering);
        distinct_keys.insert(key);
    }
    assert_eq!(
        renderings.len(),
        distinct_keys.len(),
        "the key must be exactly as discriminating as the rendering"
    );

    // The canonical pretty-rendering (what `canonical_key` stores as the cache's collision
    // guard) must be at least as discriminating as the 8-byte key on the same corpus: two
    // hash-equal terms always carry equal guards, so a guard mismatch in the cache proves
    // a collision rather than ever serving a wrong entry.
    let mut by_key_pretty: std::collections::HashMap<u64, String> =
        std::collections::HashMap::new();
    for term in &candidates {
        match by_key_pretty.entry(term.dedup_key()) {
            std::collections::hash_map::Entry::Occupied(e) => assert_eq!(
                e.get(),
                &term.pretty(),
                "hash collision: same key, different canonical renderings"
            ),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(term.pretty());
            }
        }
    }
}

#[test]
fn canonical_keys_pair_the_hash_with_its_guard_rendering_and_skeleton() {
    // The service cache addresses entries by `canonical_key`: the structural hash, the
    // full canonical rendering (collision guard) and the knob-erased pattern skeleton
    // (warm-start similarity). The triple must be deterministic and agree field-by-field
    // with the term-level functions it is assembled from.
    let program = dot_product::high_level_program(512);
    let key = canonical_key(&program).expect("the dot product keys");
    assert_eq!(
        key,
        canonical_key(&program).expect("keying is deterministic")
    );

    let mut typed = program.clone();
    infer_types(&mut typed).expect("input types");
    let term = Term::from_program(&typed).expect("converts");
    assert_eq!(key.hash, term.dedup_key());
    assert_eq!(key.rendering, term.pretty());
    assert_eq!(key.skeleton, term.skeleton());

    // A different problem size is a different program (hash and guard both move), but the
    // pattern skeleton — every numeric knob erased — is shared, which is exactly what lets
    // the service warm-start across differently sized instances of the same shape.
    let resized = canonical_key(&dot_product::high_level_program(1024)).expect("keys");
    assert_ne!(key.hash, resized.hash);
    assert_ne!(key.rendering, resized.rendering);
    assert_eq!(key.skeleton, resized.skeleton);

    // Skeletons are strictly coarser than renderings over the rule corpus: derivations
    // that differ only in knobs (split 2 vs split 4) merge.
    let candidates = two_level_candidates();
    let renderings: HashSet<String> = candidates.iter().map(render).collect();
    let skeletons: HashSet<String> = candidates.iter().map(Term::skeleton).collect();
    assert!(skeletons.len() > 1, "the corpus spans several shapes");
    assert!(
        skeletons.len() < renderings.len(),
        "skeletons ({}) must merge knob variants of the {} renderings",
        skeletons.len(),
        renderings.len()
    );
}

#[test]
fn term_typechecker_agrees_with_arena_typechecker() {
    // The enumeration gate switched from arena `infer_types` (after `to_program`) to the
    // term-level checker; the two must agree on every candidate the search can produce.
    let candidates = two_level_candidates();
    let mut accepted = 0usize;
    for term in &candidates {
        let term_verdict = typecheck(term).is_ok();
        let mut program = term.to_program();
        let arena_verdict = infer_types(&mut program).is_ok();
        assert_eq!(
            term_verdict,
            arena_verdict,
            "typechecker disagreement on:\n{}",
            render(term)
        );
        accepted += usize::from(term_verdict);
    }
    assert!(accepted > 100, "corpus contains many well-typed candidates");
}

fn render(term: &Term) -> String {
    let mut program: Program = term.to_program();
    // Render after inference, like the old dedup key did (inference only annotates).
    let _ = infer_types(&mut program);
    program.to_string()
}
