//! Provenance round-trip: for every derived workload, replaying a candidate's recorded
//! rule chain (rule name + structural path + alternative index) through [`replay`] must
//! reproduce the exact term the search derived — hash-equal under the dedup key and
//! identical as a rendered program.
//!
//! This is the guarantee that makes a derivation transcript trustworthy: the chain is not
//! a log of what *probably* happened, it is a recipe that deterministically rebuilds the
//! variant from the high-level program.

use lift_benchmarks::{convolution, dot_product, jacobi, mm, nbody};
use lift_ir::Program;
use lift_rewrite::{enumerate, replay, ExplorationConfig, RuleOptions};
use lift_vgpu::LaunchConfig;

/// The derived (Table 1) workloads the auto-tuner tracks, at small sizes, with a search
/// budget that keeps this test fast while still producing lowered candidates for each.
fn workloads() -> Vec<(&'static str, Program, ExplorationConfig)> {
    let base = |tiles: Vec<lift_rewrite::TileSize>| ExplorationConfig {
        max_depth: 5,
        beam_width: 24,
        max_candidates: 600,
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: tiles,
        },
        launch: LaunchConfig::d1(16, 4),
        best_n: 4,
        ..ExplorationConfig::default()
    };
    vec![
        (
            "dot_product",
            dot_product::high_level_program(128),
            base(vec![]),
        ),
        (
            "dot_product_two_stage",
            dot_product::high_level_full_program(256),
            base(vec![]),
        ),
        (
            "matrix_multiply",
            mm::high_level_program(8, 8, 8),
            base(vec![]),
        ),
        ("nbody", nbody::high_level_program(16), base(vec![])),
        (
            "convolution_1d",
            convolution::high_level_program(64, convolution::FILTER),
            base(vec![lift_rewrite::TileSize::d1(2)]),
        ),
        ("jacobi_2d", jacobi::high_level_program(6, 8), {
            // The 2D Jacobi pipeline needs ~9 lowering steps (see `autotune_config`).
            let mut c = base(vec![lift_rewrite::TileSize::d1(2)]);
            c.max_depth = 10;
            c.beam_width = 32;
            c.max_candidates = 6000;
            c
        }),
    ]
}

#[test]
fn replaying_recorded_chains_reproduces_every_lowered_candidate() {
    for (name, program, config) in workloads() {
        let enumerated = enumerate(&program, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut replayed = 0usize;
        for (term, steps) in enumerated.lowered_candidates() {
            let rebuilt = replay(&program, steps, &config.rule_options)
                .unwrap_or_else(|e| panic!("{name}: replay failed: {e}"));
            assert_eq!(
                rebuilt.dedup_key(),
                term.dedup_key(),
                "{name}: replayed chain hashes to a different term:\n{}",
                term.to_program()
            );
            assert_eq!(
                rebuilt.to_program().to_string(),
                term.to_program().to_string(),
                "{name}: replayed chain renders differently"
            );
            replayed += 1;
        }
        assert!(
            replayed > 0,
            "{name}: the search produced no lowered candidates to replay"
        );
    }
}
