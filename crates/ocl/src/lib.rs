//! # OpenCL C abstract syntax tree
//!
//! The Lift compiler (Section 5.5 of the paper) generates OpenCL kernels. This crate provides
//! the kernel representation those kernels are generated into:
//!
//! * [`ast`] — types, expressions, statements, kernels and modules,
//! * [`printer`] — pretty printing to OpenCL C source text in the style of Figure 7.
//!
//! The AST is also the executable artefact of this reproduction: `lift-vgpu` interprets it
//! directly on a simulated GPU, which replaces the physical GPUs used in the paper's
//! evaluation.
//!
//! ```
//! use lift_ocl::{CExpr, CStmt, Kernel, KernelParam, CType, AddrSpace, print_kernel};
//!
//! let kernel = Kernel {
//!     name: "copy".into(),
//!     params: vec![
//!         KernelParam {
//!             name: "in".into(),
//!             ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
//!         },
//!         KernelParam { name: "out".into(), ty: CType::pointer(CType::Float, AddrSpace::Global) },
//!     ],
//!     body: vec![CStmt::Assign {
//!         lhs: CExpr::var("out").at(CExpr::global_id(0)),
//!         rhs: CExpr::var("in").at(CExpr::global_id(0)),
//!     }],
//! };
//! assert!(print_kernel(&kernel).contains("kernel void copy"));
//! ```

pub mod ast;
pub mod printer;

pub use ast::{
    AddrSpace, CBinOp, CExpr, CFunction, CStmt, CType, CUnOp, Fence, Kernel, KernelParam, Module,
    StructDef, TempBufferDecl,
};
pub use printer::{
    print_expr, print_function, print_kernel, print_module, print_stmt, print_struct,
};
