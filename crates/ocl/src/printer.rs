//! Pretty printing of the OpenCL AST to OpenCL C source text.
//!
//! The output follows the formatting of the kernels shown in the paper (Figure 7): kernels are
//! declared `kernel void NAME(...)`, barriers use the `CLK_*_MEM_FENCE` flags, and parallel
//! loops appear as plain `for` loops over the OpenCL id functions.

use crate::ast::{
    AddrSpace, CBinOp, CExpr, CFunction, CStmt, CType, CUnOp, Fence, Kernel, Module, StructDef,
};

/// Renders a whole module (structs, helper functions, kernels) as OpenCL C source.
///
/// Multi-kernel modules start with a comment block documenting the host ABI: the global
/// temporaries the host must allocate and pass to every kernel of the sequence.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    if !module.temp_buffers.is_empty() {
        out.push_str("/* host ABI: allocate and pass to every kernel of the sequence:\n");
        for t in &module.temp_buffers {
            out.push_str(&format!(
                " *   global {} {}[{}];\n",
                t.elem.name(),
                t.name,
                t.len
            ));
        }
        out.push_str(" */\n");
    }
    for s in &module.structs {
        out.push_str(&print_struct(s));
        out.push('\n');
    }
    for f in &module.functions {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    for k in &module.kernels {
        out.push_str(&print_kernel(k));
        out.push('\n');
    }
    out
}

/// Renders a struct definition.
pub fn print_struct(def: &StructDef) -> String {
    let mut out = String::from("typedef struct {\n");
    for (name, ty) in &def.fields {
        out.push_str(&format!("  {} {};\n", ty.name(), name));
    }
    out.push_str(&format!("}} {};\n", def.name));
    out
}

/// Renders a helper function (generated from a user function).
pub fn print_function(f: &CFunction) -> String {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(name, ty)| format!("{} {}", ty.name(), name))
        .collect();
    format!(
        "{} {}({}) {{\n  return {};\n}}\n",
        f.ret.name(),
        f.name,
        params.join(", "),
        print_expr(&f.body)
    )
}

/// Renders a kernel definition.
pub fn print_kernel(kernel: &Kernel) -> String {
    let mut out = format!("kernel void {}(", kernel.name);
    let params: Vec<String> = kernel
        .params
        .iter()
        .map(|p| print_param(&p.ty, &p.name))
        .collect();
    out.push_str(&params.join(", "));
    out.push_str(") {\n");
    for stmt in &kernel.body {
        out.push_str(&print_stmt(stmt, 1));
    }
    out.push_str("}\n");
    out
}

fn print_param(ty: &CType, name: &str) -> String {
    match ty {
        CType::Pointer {
            elem,
            addr,
            restrict,
            is_const,
        } => {
            let mut s = String::new();
            if *is_const {
                s.push_str("const ");
            }
            s.push_str(addr.keyword());
            s.push(' ');
            s.push_str(&elem.name());
            s.push_str(" *");
            if *restrict {
                s.push_str("restrict ");
            }
            s.push_str(name);
            s
        }
        other => format!("{} {}", other.name(), name),
    }
}

/// Renders a statement at the given indentation level.
pub fn print_stmt(stmt: &CStmt, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    match stmt {
        CStmt::Decl {
            ty,
            name,
            addr,
            array_len,
            init,
        } => {
            let mut s = pad.clone();
            if let Some(a) = addr {
                if *a != AddrSpace::Private {
                    s.push_str(a.keyword());
                    s.push(' ');
                }
            }
            match ty {
                CType::Pointer {
                    elem,
                    addr: ptr_addr,
                    ..
                } => {
                    s.push_str(&format!("{} {} *{}", ptr_addr.keyword(), elem.name(), name));
                }
                other => {
                    s.push_str(&format!("{} {}", other.name(), name));
                }
            }
            if let Some(len) = array_len {
                s.push_str(&format!("[{len}]"));
            }
            if let Some(e) = init {
                s.push_str(&format!(" = {}", print_expr(e)));
            }
            s.push_str(";\n");
            s
        }
        CStmt::Assign { lhs, rhs } => {
            format!("{pad}{} = {};\n", print_expr(lhs), print_expr(rhs))
        }
        CStmt::Expr(e) => format!("{pad}{};\n", print_expr(e)),
        CStmt::Block(stmts) => {
            let mut s = format!("{pad}{{\n");
            for st in stmts {
                s.push_str(&print_stmt(st, indent + 1));
            }
            s.push_str(&format!("{pad}}}\n"));
            s
        }
        CStmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            let mut s = format!(
                "{pad}for (int {var} = {}; {}; {var} += {}) {{\n",
                print_expr(init),
                print_expr(cond),
                print_expr(step)
            );
            for st in body {
                s.push_str(&print_stmt(st, indent + 1));
            }
            s.push_str(&format!("{pad}}}\n"));
            s
        }
        CStmt::If {
            cond,
            then,
            otherwise,
        } => {
            let mut s = format!("{pad}if ({}) {{\n", print_expr(cond));
            for st in then {
                s.push_str(&print_stmt(st, indent + 1));
            }
            match otherwise {
                Some(stmts) => {
                    s.push_str(&format!("{pad}}} else {{\n"));
                    for st in stmts {
                        s.push_str(&print_stmt(st, indent + 1));
                    }
                    s.push_str(&format!("{pad}}}\n"));
                }
                None => s.push_str(&format!("{pad}}}\n")),
            }
            s
        }
        CStmt::Barrier(fence) => format!("{pad}barrier({});\n", fence_flags(*fence)),
        CStmt::Return => format!("{pad}return;\n"),
        CStmt::Comment(text) => format!("{pad}// {text}\n"),
    }
}

fn fence_flags(fence: Fence) -> String {
    match (fence.local, fence.global) {
        (true, true) => "CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE".into(),
        (false, true) => "CLK_GLOBAL_MEM_FENCE".into(),
        _ => "CLK_LOCAL_MEM_FENCE".into(),
    }
}

/// Renders an expression.
pub fn print_expr(e: &CExpr) -> String {
    print_expr_prec(e, 0)
}

fn print_expr_prec(e: &CExpr, parent_prec: u8) -> String {
    let (s, prec) = match e {
        CExpr::IntLit(v) => (v.to_string(), 10),
        CExpr::FloatLit(v) => {
            let s = if v.fract() == 0.0 {
                format!("{v:.1}f")
            } else {
                format!("{v}f")
            };
            (s, 10)
        }
        CExpr::Var(name) => (name.clone(), 10),
        CExpr::Index(a) => {
            let s = a.to_string();
            // Precedence of the rendered arithmetic expression is unknown; treat anything
            // containing an operator as additive so it gets parenthesised where needed.
            let prec = if s.chars().any(|c| matches!(c, '+' | '-' | '*' | '/' | '%')) {
                4
            } else {
                10
            };
            (s, prec)
        }
        CExpr::Bin(op, a, b) => {
            let prec = bin_prec(*op);
            let s = format!(
                "{} {} {}",
                print_expr_prec(a, prec),
                op.symbol(),
                print_expr_prec(b, prec + 1)
            );
            (s, prec)
        }
        CExpr::Un(op, a) => {
            let sym = match op {
                CUnOp::Neg => "-",
                CUnOp::Not => "!",
            };
            (format!("{sym}{}", print_expr_prec(a, 9)), 9)
        }
        CExpr::Call(name, args) => {
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            (format!("{name}({})", rendered.join(", ")), 10)
        }
        CExpr::ArrayAccess(arr, idx) => (
            format!("{}[{}]", print_expr_prec(arr, 10), print_expr(idx)),
            10,
        ),
        CExpr::Field(obj, field) => (format!("{}.{}", print_expr_prec(obj, 10), field), 10),
        CExpr::Cast(ty, inner) => (format!("({}){}", ty.name(), print_expr_prec(inner, 9)), 9),
        CExpr::Ternary(c, t, other) => (
            format!(
                "({}) ? ({}) : ({})",
                print_expr(c),
                print_expr(t),
                print_expr(other)
            ),
            1,
        ),
        CExpr::StructLit(name, fields) => {
            let rendered: Vec<String> = fields.iter().map(print_expr).collect();
            (format!("({name}){{{}}}", rendered.join(", ")), 10)
        }
        CExpr::VectorLit(ty, elems) => {
            let rendered: Vec<String> = elems.iter().map(print_expr).collect();
            (format!("({})({})", ty.name(), rendered.join(", ")), 10)
        }
    };
    if prec < parent_prec {
        format!("({s})")
    } else {
        s
    }
}

fn bin_prec(op: CBinOp) -> u8 {
    match op {
        CBinOp::Or => 2,
        CBinOp::And => 3,
        CBinOp::Eq | CBinOp::Ne => 4,
        CBinOp::Lt | CBinOp::Le | CBinOp::Gt | CBinOp::Ge => 5,
        CBinOp::Add | CBinOp::Sub => 6,
        CBinOp::Mul | CBinOp::Div | CBinOp::Mod => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::KernelParam;
    use lift_arith::ArithExpr;

    #[test]
    fn expressions_render_with_precedence() {
        let e = CExpr::var("a").add(CExpr::var("b")).mul(CExpr::var("c"));
        assert_eq!(print_expr(&e), "(a + b) * c");
        let e = CExpr::var("a").mul(CExpr::var("b")).add(CExpr::var("c"));
        assert_eq!(print_expr(&e), "a * b + c");
    }

    #[test]
    fn float_literals_have_suffix() {
        assert_eq!(print_expr(&CExpr::float(0.0)), "0.0f");
        assert_eq!(print_expr(&CExpr::float(1.25)), "1.25f");
    }

    #[test]
    fn builtin_calls_render() {
        assert_eq!(print_expr(&CExpr::group_id(0)), "get_group_id(0)");
        assert_eq!(
            print_expr(&CExpr::var("x").at(CExpr::Index(ArithExpr::var("i")))),
            "x[i]"
        );
    }

    #[test]
    fn for_loop_matches_figure7_shape() {
        let body = vec![CStmt::Assign {
            lhs: CExpr::var("acc"),
            rhs: CExpr::var("acc").add(CExpr::int(1)),
        }];
        let f = CStmt::For {
            var: "wg_id".into(),
            init: CExpr::group_id(0),
            cond: CExpr::var("wg_id").lt(CExpr::var("N").div(CExpr::int(128))),
            step: CExpr::num_groups(0),
            body,
        };
        let s = print_stmt(&f, 0);
        assert!(
            s.contains(
                "for (int wg_id = get_group_id(0); wg_id < N / 128; wg_id += get_num_groups(0)) {"
            ),
            "{s}"
        );
        assert!(s.contains("acc = acc + 1;"), "{s}");
    }

    #[test]
    fn barrier_flags() {
        assert!(print_stmt(&CStmt::Barrier(Fence::local()), 0).contains("CLK_LOCAL_MEM_FENCE"));
        assert!(print_stmt(&CStmt::Barrier(Fence::global()), 0).contains("CLK_GLOBAL_MEM_FENCE"));
    }

    #[test]
    fn local_array_declaration() {
        let d = CStmt::Decl {
            ty: CType::Float,
            name: "tmp1".into(),
            addr: Some(AddrSpace::Local),
            array_len: Some(ArithExpr::cst(64)),
            init: None,
        };
        assert_eq!(print_stmt(&d, 1), "  local float tmp1[64];\n");
    }

    #[test]
    fn pointer_declaration_and_ternary_swap() {
        let d = CStmt::Decl {
            ty: CType::pointer(CType::Float, AddrSpace::Local),
            name: "in".into(),
            addr: None,
            array_len: None,
            init: Some(CExpr::var("tmp1")),
        };
        assert_eq!(print_stmt(&d, 1), "  local float *in = tmp1;\n");
        let swap = CStmt::Assign {
            lhs: CExpr::var("in"),
            rhs: CExpr::Ternary(
                Box::new(CExpr::var("out").eq(CExpr::var("tmp1"))),
                Box::new(CExpr::var("tmp1")),
                Box::new(CExpr::var("tmp3")),
            ),
        };
        assert_eq!(
            print_stmt(&swap, 1),
            "  in = (out == tmp1) ? (tmp1) : (tmp3);\n"
        );
    }

    #[test]
    fn kernel_header_matches_paper_style() {
        let k = Kernel {
            name: "KERNEL".into(),
            params: vec![
                KernelParam {
                    name: "x".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "N".into(),
                    ty: CType::Int,
                },
            ],
            body: vec![CStmt::Return],
        };
        let s = print_kernel(&k);
        assert!(
            s.starts_with("kernel void KERNEL(const global float *restrict x, int N) {"),
            "{s}"
        );
        assert!(s.contains("return;"));
    }

    #[test]
    fn struct_and_function_rendering() {
        let s = StructDef {
            name: "Tuple_float_float".into(),
            fields: vec![("_0".into(), CType::Float), ("_1".into(), CType::Float)],
        };
        let rendered = print_struct(&s);
        assert!(rendered.contains("typedef struct"));
        assert!(rendered.contains("float _0;"));
        let f = CFunction {
            name: "add".into(),
            ret: CType::Float,
            params: vec![("a".into(), CType::Float), ("b".into(), CType::Float)],
            body: CExpr::var("a").add(CExpr::var("b")),
        };
        let rendered = print_function(&f);
        assert!(rendered.contains("float add(float a, float b) {"));
        assert!(rendered.contains("return a + b;"));
    }

    #[test]
    fn module_concatenates_all_parts() {
        let mut m = Module::new();
        m.add_function(CFunction {
            name: "id".into(),
            ret: CType::Float,
            params: vec![("x".into(), CType::Float)],
            body: CExpr::var("x"),
        });
        m.kernels.push(Kernel {
            name: "K".into(),
            params: vec![],
            body: vec![],
        });
        let s = print_module(&m);
        assert!(s.contains("float id(float x)"));
        assert!(s.contains("kernel void K()"));
    }
}
