//! An abstract syntax tree for the subset of OpenCL C emitted by the Lift compiler.
//!
//! The code generator of Section 5.5 produces kernels in this representation. The AST serves
//! two purposes: it is pretty-printed to OpenCL C source (Figure 7) for inspection, golden
//! tests and code-size measurements, and it is executed directly by the virtual GPU
//! (`lift-vgpu`), which is how this reproduction runs the generated kernels without physical
//! GPU hardware.

use lift_arith::ArithExpr;

/// OpenCL address spaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AddrSpace {
    /// `global` memory.
    Global,
    /// `local` memory.
    Local,
    /// `private` memory (registers).
    Private,
}

impl AddrSpace {
    /// The OpenCL qualifier keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AddrSpace::Global => "global",
            AddrSpace::Local => "local",
            AddrSpace::Private => "private",
        }
    }
}

/// OpenCL C types.
#[derive(Clone, Debug, PartialEq)]
pub enum CType {
    /// `void`
    Void,
    /// `bool`
    Bool,
    /// `int`
    Int,
    /// `float`
    Float,
    /// `double`
    Double,
    /// A short vector such as `float4`.
    Vector(Box<CType>, usize),
    /// A named struct (used for tuple values).
    Struct(String),
    /// A pointer into one of the address spaces.
    Pointer {
        /// The pointee type.
        elem: Box<CType>,
        /// The address space the pointer refers to.
        addr: AddrSpace,
        /// Whether the pointer is declared `restrict`.
        restrict: bool,
        /// Whether the pointee is `const`.
        is_const: bool,
    },
}

impl CType {
    /// A non-const, non-restrict pointer to `elem` in `addr`.
    pub fn pointer(elem: CType, addr: AddrSpace) -> CType {
        CType::Pointer {
            elem: Box::new(elem),
            addr,
            restrict: false,
            is_const: false,
        }
    }

    /// A `const restrict` pointer, as used for kernel input parameters.
    pub fn const_restrict_pointer(elem: CType, addr: AddrSpace) -> CType {
        CType::Pointer {
            elem: Box::new(elem),
            addr,
            restrict: true,
            is_const: true,
        }
    }

    /// The C source name of this type.
    pub fn name(&self) -> String {
        match self {
            CType::Void => "void".into(),
            CType::Bool => "bool".into(),
            CType::Int => "int".into(),
            CType::Float => "float".into(),
            CType::Double => "double".into(),
            CType::Vector(elem, w) => format!("{}{}", elem.name(), w),
            CType::Struct(name) => name.clone(),
            CType::Pointer { elem, .. } => format!("{}*", elem.name()),
        }
    }

    /// Returns `true` if this is a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Pointer { .. })
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl CBinOp {
    /// The C operator symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CBinOp::Add => "+",
            CBinOp::Sub => "-",
            CBinOp::Mul => "*",
            CBinOp::Div => "/",
            CBinOp::Mod => "%",
            CBinOp::Lt => "<",
            CBinOp::Le => "<=",
            CBinOp::Gt => ">",
            CBinOp::Ge => ">=",
            CBinOp::Eq => "==",
            CBinOp::Ne => "!=",
            CBinOp::And => "&&",
            CBinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CUnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
}

/// OpenCL C expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum CExpr {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Reference to a named variable or parameter.
    Var(String),
    /// A symbolic index expression produced by the view system; printed through the
    /// arithmetic pretty-printer so that simplified indices appear verbatim in the source.
    Index(ArithExpr),
    /// Binary operation.
    Bin(CBinOp, Box<CExpr>, Box<CExpr>),
    /// Unary operation.
    Un(CUnOp, Box<CExpr>),
    /// Function or builtin call (`get_global_id(0)`, `sqrt(x)`, user functions, …).
    Call(String, Vec<CExpr>),
    /// Array subscript `array[index]`.
    ArrayAccess(Box<CExpr>, Box<CExpr>),
    /// Struct field access `value.field`.
    Field(Box<CExpr>, String),
    /// `(type) expr`
    Cast(CType, Box<CExpr>),
    /// `cond ? then : otherwise`
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// A struct literal `(T){a, b}` used to build tuple values.
    StructLit(String, Vec<CExpr>),
    /// A vector literal `(float4)(a, b, c, d)`.
    VectorLit(CType, Vec<CExpr>),
}

#[allow(clippy::should_implement_trait)] // builder methods, not operator impls
impl CExpr {
    /// A variable reference.
    pub fn var(name: impl Into<String>) -> CExpr {
        CExpr::Var(name.into())
    }

    /// An integer literal.
    pub fn int(v: i64) -> CExpr {
        CExpr::IntLit(v)
    }

    /// A float literal.
    pub fn float(v: f64) -> CExpr {
        CExpr::FloatLit(v)
    }

    /// `get_global_id(dim)`
    pub fn global_id(dim: u8) -> CExpr {
        CExpr::Call("get_global_id".into(), vec![CExpr::int(i64::from(dim))])
    }

    /// `get_local_id(dim)`
    pub fn local_id(dim: u8) -> CExpr {
        CExpr::Call("get_local_id".into(), vec![CExpr::int(i64::from(dim))])
    }

    /// `get_group_id(dim)`
    pub fn group_id(dim: u8) -> CExpr {
        CExpr::Call("get_group_id".into(), vec![CExpr::int(i64::from(dim))])
    }

    /// `get_global_size(dim)`
    pub fn global_size(dim: u8) -> CExpr {
        CExpr::Call("get_global_size".into(), vec![CExpr::int(i64::from(dim))])
    }

    /// `get_local_size(dim)`
    pub fn local_size(dim: u8) -> CExpr {
        CExpr::Call("get_local_size".into(), vec![CExpr::int(i64::from(dim))])
    }

    /// `get_num_groups(dim)`
    pub fn num_groups(dim: u8) -> CExpr {
        CExpr::Call("get_num_groups".into(), vec![CExpr::int(i64::from(dim))])
    }

    /// `self + rhs`
    pub fn add(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(CBinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`
    pub fn sub(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(CBinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`
    pub fn mul(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(CBinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`
    pub fn div(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(CBinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `self % rhs`
    pub fn rem(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(CBinOp::Mod, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`
    pub fn lt(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(CBinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`
    pub fn eq(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(CBinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self[index]`
    pub fn at(self, index: CExpr) -> CExpr {
        CExpr::ArrayAccess(Box::new(self), Box::new(index))
    }

    /// `self.field`
    pub fn field(self, name: impl Into<String>) -> CExpr {
        CExpr::Field(Box::new(self), name.into())
    }

    /// Counts integer division and modulo operations (including those inside symbolic
    /// indices); the cost model charges extra for these.
    pub fn div_mod_count(&self) -> usize {
        match self {
            CExpr::IntLit(_) | CExpr::FloatLit(_) | CExpr::Var(_) => 0,
            CExpr::Index(e) => e.div_mod_count(),
            CExpr::Bin(op, a, b) => {
                let own = usize::from(matches!(op, CBinOp::Div | CBinOp::Mod));
                own + a.div_mod_count() + b.div_mod_count()
            }
            CExpr::Un(_, a) => a.div_mod_count(),
            CExpr::Call(_, args) | CExpr::StructLit(_, args) | CExpr::VectorLit(_, args) => {
                args.iter().map(CExpr::div_mod_count).sum()
            }
            CExpr::ArrayAccess(a, i) => a.div_mod_count() + i.div_mod_count(),
            CExpr::Field(a, _) => a.div_mod_count(),
            CExpr::Cast(_, a) => a.div_mod_count(),
            CExpr::Ternary(c, t, e) => c.div_mod_count() + t.div_mod_count() + e.div_mod_count(),
        }
    }
}

/// The memory fence flags of an OpenCL `barrier` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fence {
    /// `CLK_LOCAL_MEM_FENCE`
    pub local: bool,
    /// `CLK_GLOBAL_MEM_FENCE`
    pub global: bool,
}

impl Fence {
    /// A local-memory fence.
    pub fn local() -> Fence {
        Fence {
            local: true,
            global: false,
        }
    }

    /// A global-memory fence.
    pub fn global() -> Fence {
        Fence {
            local: false,
            global: true,
        }
    }
}

/// OpenCL C statements.
#[derive(Clone, Debug, PartialEq)]
pub enum CStmt {
    /// A variable declaration, optionally with an address space, array size and initialiser.
    Decl {
        /// Declared type.
        ty: CType,
        /// Variable name.
        name: String,
        /// Address space qualifier (`local float tmp[64]`), if any.
        addr: Option<AddrSpace>,
        /// Array size for buffer declarations, if any.
        array_len: Option<ArithExpr>,
        /// Initialiser expression, if any.
        init: Option<CExpr>,
    },
    /// An assignment `lhs = rhs;`.
    Assign {
        /// The assigned place (variable, array element or field).
        lhs: CExpr,
        /// The value.
        rhs: CExpr,
    },
    /// An expression evaluated for its effect.
    Expr(CExpr),
    /// A nested block `{ ... }`.
    Block(Vec<CStmt>),
    /// `for (int var = init; cond; var += step) { body }`
    For {
        /// Loop variable name (declared `int`).
        var: String,
        /// Initial value.
        init: CExpr,
        /// Continuation condition.
        cond: CExpr,
        /// Per-iteration increment added to the loop variable.
        step: CExpr,
        /// Loop body.
        body: Vec<CStmt>,
    },
    /// `if (cond) { then } else { otherwise }`
    If {
        /// Condition.
        cond: CExpr,
        /// Then branch.
        then: Vec<CStmt>,
        /// Optional else branch.
        otherwise: Option<Vec<CStmt>>,
    },
    /// `barrier(...)`
    Barrier(Fence),
    /// `return;`
    Return,
    /// A comment line.
    Comment(String),
}

/// A kernel parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelParam {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: CType,
}

/// An OpenCL kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Kernel parameters (buffers and sizes).
    pub params: Vec<KernelParam>,
    /// Kernel body.
    pub body: Vec<CStmt>,
}

impl Kernel {
    /// Whether the kernel body reads any work-item function (`get_global_id`, …).
    ///
    /// A kernel that never consults the work-item ids computes the same result in every
    /// thread, so the host may launch it with a single work item; stages of a multi-kernel
    /// sequence use this to pick per-kernel launch dimensions.
    pub fn uses_work_items(&self) -> bool {
        fn expr(e: &CExpr) -> bool {
            match e {
                CExpr::IntLit(_) | CExpr::FloatLit(_) | CExpr::Var(_) | CExpr::Index(_) => false,
                CExpr::Bin(_, a, b) | CExpr::ArrayAccess(a, b) => expr(a) || expr(b),
                CExpr::Un(_, a) | CExpr::Field(a, _) | CExpr::Cast(_, a) => expr(a),
                CExpr::Call(name, args) => {
                    matches!(
                        name.as_str(),
                        "get_global_id"
                            | "get_local_id"
                            | "get_group_id"
                            | "get_global_size"
                            | "get_local_size"
                            | "get_num_groups"
                    ) || args.iter().any(expr)
                }
                CExpr::Ternary(a, b, c) => expr(a) || expr(b) || expr(c),
                CExpr::StructLit(_, es) | CExpr::VectorLit(_, es) => es.iter().any(expr),
            }
        }
        fn stmt(s: &CStmt) -> bool {
            match s {
                CStmt::Comment(_) | CStmt::Return => false,
                // A barrier only matters when more than one work item runs, and barriers
                // are only emitted around work-item parallel code — treat as sequential.
                CStmt::Barrier(_) => false,
                CStmt::Decl { init, .. } => init.as_ref().is_some_and(expr),
                CStmt::Assign { lhs, rhs } => expr(lhs) || expr(rhs),
                CStmt::Expr(e) => expr(e),
                CStmt::Block(b) => b.iter().any(stmt),
                CStmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => expr(init) || expr(cond) || expr(step) || body.iter().any(stmt),
                CStmt::If {
                    cond,
                    then,
                    otherwise,
                } => {
                    expr(cond)
                        || then.iter().any(stmt)
                        || otherwise.as_ref().is_some_and(|b| b.iter().any(stmt))
                }
            }
        }
        self.body.iter().any(stmt)
    }
}

/// A non-kernel function (generated from a user function).
#[derive(Clone, Debug, PartialEq)]
pub struct CFunction {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters.
    pub params: Vec<(String, CType)>,
    /// The returned expression (user functions are single-expression).
    pub body: CExpr,
}

/// A struct definition used for tuple values.
#[derive(Clone, Debug, PartialEq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Field names and types.
    pub fields: Vec<(String, CType)>,
}

/// A host-allocated global buffer shared by the kernels of a multi-kernel module.
///
/// Multi-kernel modules (a program split at device-wide synchronisation points) communicate
/// through global temporaries that outlive any single kernel. OpenCL has no module-level
/// buffer declarations, so these are part of the host ABI: the host allocates one buffer of
/// `len` elements per entry and passes it to every kernel of the sequence under `name`. On
/// the virtual GPU this is what `ExecutionRequest::launch_sequence` (crate `lift-vgpu`) does
/// when handed the module's launch plan and bound arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct TempBufferDecl {
    /// The kernel-parameter name every kernel of the sequence binds the buffer to.
    pub name: String,
    /// Element type of the buffer.
    pub elem: CType,
    /// Number of elements (symbolic in the size variables).
    pub len: ArithExpr,
}

/// A whole OpenCL translation unit: struct definitions, helper functions and kernels.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// Tuple struct definitions.
    pub structs: Vec<StructDef>,
    /// Helper functions (user functions).
    pub functions: Vec<CFunction>,
    /// Kernels.
    pub kernels: Vec<Kernel>,
    /// Host-allocated global temporaries shared by multi-kernel sequences (empty for
    /// ordinary single-kernel modules).
    pub temp_buffers: Vec<TempBufferDecl>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&CFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Adds a struct definition if one with the same name is not already present.
    pub fn add_struct(&mut self, def: StructDef) {
        if !self.structs.iter().any(|s| s.name == def.name) {
            self.structs.push(def);
        }
    }

    /// Adds a helper function if one with the same name is not already present.
    pub fn add_function(&mut self, f: CFunction) {
        if !self
            .functions
            .iter()
            .any(|existing| existing.name == f.name)
        {
            self.functions.push(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_builders_compose() {
        let e = CExpr::var("x").add(CExpr::int(1)).mul(CExpr::var("y"));
        match e {
            CExpr::Bin(CBinOp::Mul, lhs, _) => {
                assert!(matches!(*lhs, CExpr::Bin(CBinOp::Add, _, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn builtin_id_helpers() {
        assert_eq!(
            CExpr::local_id(0),
            CExpr::Call("get_local_id".into(), vec![CExpr::IntLit(0)])
        );
        assert_eq!(
            CExpr::num_groups(1),
            CExpr::Call("get_num_groups".into(), vec![CExpr::IntLit(1)])
        );
    }

    #[test]
    fn div_mod_count_looks_inside_indices() {
        let n = ArithExpr::size_var("N");
        let idx = ArithExpr::Mod(Box::new(ArithExpr::var("x")), Box::new(n));
        let e = CExpr::var("a")
            .at(CExpr::Index(idx))
            .add(CExpr::var("b").div(CExpr::int(2)));
        assert_eq!(e.div_mod_count(), 2);
    }

    #[test]
    fn ctype_names() {
        assert_eq!(CType::Float.name(), "float");
        assert_eq!(CType::Vector(Box::new(CType::Float), 4).name(), "float4");
        assert_eq!(
            CType::pointer(CType::Float, AddrSpace::Local).name(),
            "float*"
        );
        assert!(CType::pointer(CType::Float, AddrSpace::Local).is_pointer());
        assert!(!CType::Int.is_pointer());
    }

    #[test]
    fn module_deduplicates_structs_and_functions() {
        let mut m = Module::new();
        let s = StructDef {
            name: "Tuple_float_float".into(),
            fields: vec![],
        };
        m.add_struct(s.clone());
        m.add_struct(s);
        assert_eq!(m.structs.len(), 1);
        let f = CFunction {
            name: "add".into(),
            ret: CType::Float,
            params: vec![],
            body: CExpr::float(0.0),
        };
        m.add_function(f.clone());
        m.add_function(f);
        assert_eq!(m.functions.len(), 1);
        assert!(m.function("add").is_some());
        assert!(m.kernel("missing").is_none());
    }

    #[test]
    fn fence_constructors() {
        assert!(Fence::local().local);
        assert!(!Fence::local().global);
        assert!(Fence::global().global);
    }
}
