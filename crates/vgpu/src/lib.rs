//! # Virtual GPU
//!
//! The paper evaluates generated kernels on two physical GPUs. This crate replaces that
//! hardware with a *virtual GPU*: a SIMT interpreter for the OpenCL AST of `lift-ocl` plus an
//! analytical cost model.
//!
//! * [`ExecutionRequest::launch`] executes a kernel over an ND-range with global buffers,
//!   work-group local memory, private memory, barriers and divergent control flow (execution
//!   masks), on the engine the request selects ([`EngineSelection`]).
//! * The execution produces [`CostCounters`]: dynamic counts of floating-point work, integer
//!   index arithmetic (divisions/modulos counted separately), global-memory transactions with
//!   a per-SIMD-group coalescing analysis, local/private traffic, barriers and loop overhead.
//! * A [`DeviceProfile`] (modelled on the paper's AMD and NVIDIA cards) converts the counters
//!   into an estimated execution time, so experiments can compare *relative* performance the
//!   way Figure 8 does.
//!
//! The functional result of a launch is exact — kernels really execute — so the same run both
//! validates correctness against the reference interpreter and feeds the performance model.

mod bytecode;
mod cost;
mod device;
mod engine;
mod exec;
mod memory;

pub use cost::{
    estimated_sequence_time, CostCounters, ExecutionProfile, ExecutionReport, StageProfile,
    TimeBreakdown, COST_MODEL_VERSION,
};
pub use device::{DeviceProfile, LaunchConfig, LaunchError};
pub use engine::{
    BytecodeEngine, Engine, EngineSelection, ExecutionRequest, InterpreterEngine, PreparedLaunch,
};
pub use exec::{KernelLaunchSpec, LaunchResult, SequenceResult, VgpuError, VirtualGpu};
pub use memory::{GpuValue, KernelArg, Ptr};

/// The workspace-wide tolerance policy for comparing a kernel's output buffer against a
/// reference: element-wise `|a - e| <= 2e-3 * (1 + |e|)` and equal lengths. Shared by the
/// benchmark runner, the rewrite exploration's correctness gate and the integration tests so
/// the acceptance threshold cannot drift between them.
pub fn outputs_match(actual: &[f32], expected: &[f32]) -> bool {
    actual.len() == expected.len()
        && actual
            .iter()
            .zip(expected)
            .all(|(a, e)| (a - e).abs() <= 2e-3 * (1.0 + e.abs()))
}
