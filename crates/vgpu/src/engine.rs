//! The engine-agnostic launch API.
//!
//! A virtual-GPU launch has two halves: the engine-independent prologue (resolve the kernel,
//! lower it to the slot-indexed form, bind the arguments — [`crate::exec::prepare`]) and the
//! actual execution of the lowered body. [`Engine`] abstracts the second half, with two
//! implementations:
//!
//! * [`InterpreterEngine`] — the slotted SIMT tree-walker of `exec.rs` (PR 2), complete and
//!   the semantic reference.
//! * [`BytecodeEngine`] — compiles the lowered body once per launch into the flat register
//!   bytecode of `bytecode.rs` and runs that; counters, buffers and errors are byte-identical
//!   to the interpreter. Constructs the compiler does not support fall back to the
//!   interpreter, optionally reporting a telemetry [`Event::EngineFallback`].
//!
//! [`ExecutionRequest`] is the builder every caller goes through (the old `VirtualGpu`
//! methods are deprecated shims over it): it owns the cross-cutting launch options — device
//! validation, engine selection, race detection, telemetry — so call sites configure a
//! request once instead of picking one of five ad-hoc entry points.
//!
//! ```
//! # use lift_ocl::*;
//! # use lift_vgpu::*;
//! # fn demo(module: &Module, config: LaunchConfig, args: Vec<KernelArg>)
//! #     -> Result<LaunchResult, VgpuError> {
//! ExecutionRequest::new(module)
//!     .engine(EngineSelection::Auto)
//!     .race_detection(true)
//!     .launch("kernel_0", config, args)
//! # }
//! ```

use lift_ocl::Module;
use lift_telemetry::{Collector, Event};

use crate::bytecode;
use crate::device::{DeviceProfile, LaunchConfig};
use crate::exec::{prepare, KernelLaunchSpec, LaunchResult, Prepared, SequenceResult, VgpuError};
use crate::memory::KernelArg;

/// A prepared launch: the lowered kernel body with bound arguments and live execution state,
/// ready for an [`Engine`] to run. Opaque outside the crate; engines receive it mutably and
/// leave the executed state behind for the request to turn into a [`LaunchResult`].
pub struct PreparedLaunch {
    pub(crate) inner: Prepared,
}

/// An execution tier of the virtual GPU.
///
/// Both engines run the same lowered kernel form against the same state and must produce
/// byte-identical buffers, [`crate::CostCounters`] and [`VgpuError`]s — the differential test
/// suite holds them to that. An engine may *decline* a launch it cannot handle by executing
/// it on the interpreter and returning the reason (see [`Engine::execute`]).
pub trait Engine: Sync {
    /// Stable engine name, used in telemetry and benchmark records.
    fn name(&self) -> &'static str;

    /// Executes the prepared launch to completion.
    ///
    /// Returns `Ok(None)` when this engine ran the launch itself and `Ok(Some(reason))` when
    /// it fell back to the reference interpreter (the launch still completed, with identical
    /// results).
    ///
    /// # Errors
    ///
    /// Any [`VgpuError`] the kernel raises during execution.
    fn execute(&self, prepared: &mut PreparedLaunch) -> Result<Option<String>, VgpuError>;
}

/// The slotted SIMT tree-walking interpreter (the reference tier).
#[derive(Clone, Copy, Debug, Default)]
pub struct InterpreterEngine;

impl Engine for InterpreterEngine {
    fn name(&self) -> &'static str {
        "interpreter"
    }

    fn execute(&self, prepared: &mut PreparedLaunch) -> Result<Option<String>, VgpuError> {
        let Prepared { body, exec } = &mut prepared.inner;
        exec.run(body)?;
        Ok(None)
    }
}

/// The bytecode tier: compiles the lowered body once per launch into a flat register-file
/// program with instrumented counter ops, then runs it. Falls back to the interpreter on
/// constructs the compiler does not support.
#[derive(Clone, Copy, Debug, Default)]
pub struct BytecodeEngine;

impl Engine for BytecodeEngine {
    fn name(&self) -> &'static str {
        "bytecode"
    }

    fn execute(&self, prepared: &mut PreparedLaunch) -> Result<Option<String>, VgpuError> {
        let Prepared { body, exec } = &mut prepared.inner;
        match bytecode::compile(body, exec) {
            Ok(program) => {
                bytecode::run(exec, &program)?;
                Ok(None)
            }
            Err(reason) => {
                exec.run(body)?;
                Ok(Some(reason))
            }
        }
    }
}

/// Which execution tier an [`ExecutionRequest`] (or an exploration / tuning run) uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineSelection {
    /// Always the reference interpreter.
    Interpreter,
    /// The bytecode tier (which itself falls back to the interpreter per launch on
    /// unsupported constructs).
    Bytecode,
    /// Let the virtual GPU choose. Currently the bytecode tier — the fastest tier whose
    /// results are pinned byte-identical to the reference — but callers must not rely on
    /// which tier runs, only on the results.
    #[default]
    Auto,
}

impl EngineSelection {
    /// The engine this selection resolves to.
    pub fn engine(self) -> &'static dyn Engine {
        match self {
            EngineSelection::Interpreter => &InterpreterEngine,
            EngineSelection::Bytecode | EngineSelection::Auto => &BytecodeEngine,
        }
    }

    /// Stable lower-snake-case label (used in benchmark JSON and CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            EngineSelection::Interpreter => "interpreter",
            EngineSelection::Bytecode => "bytecode",
            EngineSelection::Auto => "auto",
        }
    }

    /// Parses a CLI/JSON label (`interpreter` | `bytecode` | `auto`).
    pub fn parse(s: &str) -> Option<EngineSelection> {
        match s {
            "interpreter" => Some(EngineSelection::Interpreter),
            "bytecode" => Some(EngineSelection::Bytecode),
            "auto" => Some(EngineSelection::Auto),
            _ => None,
        }
    }
}

/// A configured virtual-GPU launch: module, engine, device limits, race detection and
/// telemetry in one builder, executed with [`ExecutionRequest::launch`] (single kernel) or
/// [`ExecutionRequest::launch_sequence`] (multi-kernel plan over a shared argument pool).
///
/// Replaces the five pre-PR 8 `VirtualGpu` entry points (`launch`, `launch_on`,
/// `launch_sequence`, `launch_sequence_on`, `with_race_detection`), which survive as
/// deprecated shims over this type.
#[derive(Clone, Copy)]
pub struct ExecutionRequest<'a> {
    module: &'a Module,
    device: Option<&'a DeviceProfile>,
    engine: EngineSelection,
    race_detection: bool,
    collector: Option<&'a dyn Collector>,
}

impl<'a> ExecutionRequest<'a> {
    /// A request against `module` with the defaults: no device validation, engine
    /// [`EngineSelection::Auto`], race detection off, no telemetry.
    pub fn new(module: &'a Module) -> ExecutionRequest<'a> {
        ExecutionRequest {
            module,
            device: None,
            engine: EngineSelection::default(),
            race_detection: false,
            collector: None,
        }
    }

    /// Validates every launch configuration against the limits of `device` (work-group
    /// size, per-dimension local sizes, divisibility) before executing, rejecting with
    /// [`VgpuError::InvalidLaunch`] what a real driver would refuse.
    pub fn on_device(mut self, device: &'a DeviceProfile) -> ExecutionRequest<'a> {
        self.device = Some(device);
        self
    }

    /// Selects the execution tier (default [`EngineSelection::Auto`]).
    pub fn engine(mut self, engine: EngineSelection) -> ExecutionRequest<'a> {
        self.engine = engine;
        self
    }

    /// Turns the shadow-memory data-race detector on or off (default off). When on, every
    /// launch tracks the last writer and reader of each local and global cell per barrier
    /// epoch and fails with [`VgpuError::DataRace`] on unsynchronised conflicting accesses;
    /// stores of a bitwise-identical value are treated as no-ops.
    pub fn race_detection(mut self, on: bool) -> ExecutionRequest<'a> {
        self.race_detection = on;
        self
    }

    /// Attaches a telemetry sink: engine fallbacks are reported as
    /// [`Event::EngineFallback`].
    pub fn collector(mut self, collector: &'a dyn Collector) -> ExecutionRequest<'a> {
        self.collector = Some(collector);
        self
    }

    /// Whether launches of this request run the data-race detector.
    pub fn race_detection_enabled(&self) -> bool {
        self.race_detection
    }

    /// The engine selection of this request.
    pub fn engine_selection(&self) -> EngineSelection {
        self.engine
    }

    fn validate(&self, config: &LaunchConfig) -> Result<(), VgpuError> {
        if let Some(device) = self.device {
            device
                .validate_launch(config)
                .map_err(VgpuError::InvalidLaunch)?;
        }
        Ok(())
    }

    fn run_prepared(
        &self,
        kernel_name: &str,
        mut prepared: PreparedLaunch,
    ) -> Result<LaunchResult, VgpuError> {
        let fallback = self.engine.engine().execute(&mut prepared)?;
        if let (Some(reason), Some(collector)) = (fallback, self.collector) {
            if collector.enabled() {
                collector.record(Event::EngineFallback {
                    kernel: kernel_name.to_string(),
                    reason,
                });
            }
        }
        Ok(prepared.inner.finish())
    }

    /// Launches `kernel_name` over the given ND-range.
    ///
    /// # Errors
    ///
    /// Returns a [`VgpuError`] if the kernel is unknown, the arguments do not match, the
    /// launch violates the configured device, or the kernel performs an invalid memory
    /// access (including data races when detection is on).
    pub fn launch(
        &self,
        kernel_name: &str,
        config: LaunchConfig,
        args: Vec<KernelArg>,
    ) -> Result<LaunchResult, VgpuError> {
        self.validate(&config)?;
        let prepared = PreparedLaunch {
            inner: prepare(self.module, kernel_name, config, args, self.race_detection)?,
        };
        self.run_prepared(kernel_name, prepared)
    }

    /// Executes a sequence of kernels against a persistent pool of arguments.
    ///
    /// Every stage receives the *whole* pool in order (the shared-signature ABI of
    /// multi-kernel programs: unused parameters are harmless), and the buffers a stage
    /// modifies are visible to the following stages — this is how global-memory
    /// intermediates flow across the device-wide synchronisation points a kernel boundary
    /// represents. When a device is configured, every stage's launch is validated up front,
    /// before any stage executes.
    ///
    /// # Errors
    ///
    /// Returns [`VgpuError::InvalidLaunch`] if any stage's launch violates the configured
    /// device, and the first executing stage's [`VgpuError`] otherwise.
    pub fn launch_sequence(
        &self,
        stages: &[KernelLaunchSpec],
        mut pool: Vec<KernelArg>,
    ) -> Result<SequenceResult, VgpuError> {
        for stage in stages {
            self.validate(&stage.launch)?;
        }
        let mut reports = Vec::with_capacity(stages.len());
        for stage in stages {
            // Move the buffers into the stage's arguments (the launch returns every global
            // buffer), so a sequence never copies buffer contents between stages.
            let args: Vec<KernelArg> = pool
                .iter_mut()
                .map(|a| match a {
                    KernelArg::Buffer(b) => KernelArg::Buffer(std::mem::take(b)),
                    KernelArg::Int(v) => KernelArg::Int(*v),
                    KernelArg::Float(v) => KernelArg::Float(*v),
                })
                .collect();
            let prepared = PreparedLaunch {
                inner: prepare(
                    self.module,
                    &stage.kernel,
                    stage.launch,
                    args,
                    self.race_detection,
                )?,
            };
            let result = self.run_prepared(&stage.kernel, prepared)?;
            let mut buffers = result.buffers.into_iter();
            for arg in pool.iter_mut() {
                if let KernelArg::Buffer(b) = arg {
                    *b = buffers
                        .next()
                        .expect("launch returns one buffer per buffer arg");
                }
            }
            reports.push(result.report);
        }
        let buffers = pool
            .into_iter()
            .filter_map(|a| match a {
                KernelArg::Buffer(b) => Some(b),
                _ => None,
            })
            .collect();
        Ok(SequenceResult { buffers, reports })
    }
}
