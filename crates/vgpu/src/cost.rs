//! The analytical cost model.
//!
//! During execution the virtual GPU counts dynamic events per work item and per SIMD group:
//! floating-point operations, integer operations, integer divisions/modulos, global and local
//! memory accesses, coalesced memory transactions, barriers and loop iterations. A
//! [`DeviceProfile`](crate::DeviceProfile) turns these counters into an estimated execution
//! time. The model is deliberately simple — it captures exactly the effects the paper's
//! optimisations target (index arithmetic, memory coalescing, barriers and control flow), so
//! that the *relative* performance trends of Figure 8 can be reproduced without GPU hardware.

use crate::device::DeviceProfile;

/// Version of the analytical cost model. Bump whenever a change to the counters, their
/// weighting or the device profiles alters estimated times: scores recorded under a
/// different version are not comparable, so the derivation-service cache keys its entries
/// by this constant (alongside the rule-set version) and drops the whole generation when it
/// moves.
pub const COST_MODEL_VERSION: u32 = 1;

/// Dynamic event counters accumulated while executing a kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostCounters {
    /// Floating-point operations.
    pub flops: u64,
    /// Simple integer operations (index additions, comparisons, …).
    pub int_ops: u64,
    /// Integer divisions and modulos.
    pub div_mod_ops: u64,
    /// Individual global-memory accesses (loads + stores).
    pub global_accesses: u64,
    /// Global accesses performed through vector loads/stores.
    pub vector_accesses: u64,
    /// Coalesced global-memory transactions (segments touched per SIMD group).
    pub global_transactions: u64,
    /// Global accesses that fell outside a coalesced transaction pattern.
    pub uncoalesced_accesses: u64,
    /// Local-memory accesses.
    pub local_accesses: u64,
    /// Private-memory (register) accesses.
    pub private_accesses: u64,
    /// Work-group barriers executed (counted once per work group).
    pub barriers: u64,
    /// Executed loop iterations (for loop-overhead accounting).
    pub loop_iterations: u64,
    /// Work items that executed the kernel.
    pub work_items: u64,
    /// Work groups that executed the kernel.
    pub work_groups: u64,
    /// Lock-step statement rows executed, summed over all work groups. In SIMT execution a
    /// row costs the same wall-clock whether one thread or the whole group is active, so row
    /// counts measure *time*, where the event counters above measure *work*.
    pub lockstep_rows: u64,
    /// Lock-step rows of the busiest single work group — the critical path of the launch.
    pub group_span_rows: u64,
}

impl CostCounters {
    /// Merges the counters of work executed *concurrently* with this one (the work groups
    /// of a single launch): event counts add, and the critical path is the busiest group of
    /// either side (`group_span_rows` takes the max). Summing *sequential* launches needs
    /// spans added, not maxed — aggregate those at the `estimated_time` level instead.
    pub fn merge(&mut self, other: &CostCounters) {
        self.flops += other.flops;
        self.int_ops += other.int_ops;
        self.div_mod_ops += other.div_mod_ops;
        self.global_accesses += other.global_accesses;
        self.vector_accesses += other.vector_accesses;
        self.global_transactions += other.global_transactions;
        self.uncoalesced_accesses += other.uncoalesced_accesses;
        self.local_accesses += other.local_accesses;
        self.private_accesses += other.private_accesses;
        self.barriers += other.barriers;
        self.loop_iterations += other.loop_iterations;
        self.work_items += other.work_items;
        self.work_groups += other.work_groups;
        self.lockstep_rows += other.lockstep_rows;
        self.group_span_rows = self.group_span_rows.max(other.group_span_rows);
    }

    /// Estimates the execution time (in arbitrary "cycle" units) on the given device using a
    /// work–span (Brent's law) model: `T ≈ W/P + S`.
    ///
    /// `W` is the device-weighted sum of all counted events, spread over the device's lanes
    /// (`compute_units × simd_width`). `S` is the critical path: work groups execute rows in
    /// lock step, so a group's wall-clock is its row count regardless of how many threads
    /// are active per row, and the launch cannot finish before its busiest group (or before
    /// `rows / compute_units` when there are more groups than compute units). The span is
    /// priced at the launch's average device-cost per row.
    ///
    /// The span term is what makes launch configurations a meaningful auto-tuning dimension:
    /// a launch with too few busy work items concentrates rows in one group and is charged
    /// for the serialisation, while padding a launch with idle work items shortens nothing
    /// because idle threads do not reduce the busiest group's row count. Comparisons between
    /// kernels executed under the same launch are unaffected in spirit: both terms derive
    /// from the same counters, and the constant factor is irrelevant because experiments
    /// report performance *relative* to a baseline under the same model.
    pub fn estimated_time(&self, device: &DeviceProfile) -> f64 {
        self.time_breakdown(device).time
    }

    /// The full decomposition behind [`CostCounters::estimated_time`]: the device-weighted
    /// cost of each event class (compute, memory net of the vector-access discount,
    /// synchronisation) and the two terms of the work–span model. `estimated_time` *is*
    /// `time_breakdown(device).time` — one computation, two presentations — so a profile
    /// never disagrees with the ranking.
    pub fn time_breakdown(&self, device: &DeviceProfile) -> TimeBreakdown {
        let compute = self.flops as f64 * device.flop_cost
            + self.int_ops as f64 * device.int_op_cost
            + self.div_mod_ops as f64 * device.div_mod_cost
            + self.loop_iterations as f64 * device.loop_overhead;
        let vector_discount = self.vector_accesses as f64
            * device.global_transaction_cost
            * (1.0 - device.vector_access_discount)
            / device.simd_width as f64;
        let memory = self.global_accesses as f64 * device.global_access_cost
            + self.global_transactions as f64 * device.global_transaction_cost
            + self.uncoalesced_accesses as f64 * device.uncoalesced_penalty
            + self.local_accesses as f64 * device.local_access_cost
            + self.private_accesses as f64 * device.private_access_cost
            - vector_discount;
        let sync = self.barriers as f64 * device.barrier_cost;
        let total = (compute + memory + sync).max(0.0);
        let lanes = (device.compute_units * device.simd_width) as f64;
        let work_term = total / lanes;
        let span_term = if self.lockstep_rows > 0 {
            // Critical path in rows: the busiest group, or the group-level queue when more
            // groups exist than compute units — priced at the average cost per row.
            let span_rows = (self.group_span_rows as f64)
                .max(self.lockstep_rows as f64 / device.compute_units as f64);
            total * span_rows / self.lockstep_rows as f64
        } else {
            0.0
        };
        TimeBreakdown {
            compute,
            memory,
            sync,
            work_term,
            span_term,
            time: work_term + span_term,
        }
    }
}

/// The decomposition of one kernel's estimated time (see [`CostCounters::time_breakdown`]).
/// All values are in the model's arbitrary "cycle" units.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Device-weighted arithmetic cost (flops, integer ops, divisions, loop overhead).
    pub compute: f64,
    /// Device-weighted memory cost (global accesses + transactions + uncoalesced penalty +
    /// local + private traffic, net of the vector-access discount).
    pub memory: f64,
    /// Device-weighted synchronisation cost (barriers).
    pub sync: f64,
    /// `W/P`: total weighted events spread over the device's lanes.
    pub work_term: f64,
    /// `S`: the critical path — the busiest work group's rows (or the group-level queue),
    /// priced at the launch's average cost per row.
    pub span_term: f64,
    /// The estimated time, `work_term + span_term` (equal to
    /// [`CostCounters::estimated_time`]).
    pub time: f64,
}

/// The result of running a kernel on the virtual GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionReport {
    /// The dynamic event counters.
    pub counters: CostCounters,
}

impl ExecutionReport {
    /// Estimated execution time on `device` (arbitrary units, comparable across runs).
    pub fn estimated_time(&self, device: &DeviceProfile) -> f64 {
        self.counters.estimated_time(device)
    }
}

/// Estimated execution time of a *sequence* of kernel launches (a multi-kernel program).
///
/// Sequential launches compose by addition — each stage's work–span time is summed, not
/// merged (merging would take the max of the per-stage critical paths, which models
/// *concurrent* work groups, see [`CostCounters::merge`]) — plus the device's fixed
/// [`DeviceProfile::launch_overhead`] once per stage. A single-stage sequence therefore
/// costs its kernel time plus one launch overhead, so single- and multi-kernel programs
/// are compared under the same model.
pub fn estimated_sequence_time(stages: &[CostCounters], device: &DeviceProfile) -> f64 {
    stages.iter().map(|c| c.estimated_time(device)).sum::<f64>()
        + stages.len() as f64 * device.launch_overhead
}

/// One kernel stage of an [`ExecutionProfile`]: its raw counters plus their decomposed
/// estimated time.
#[derive(Clone, Debug, PartialEq)]
pub struct StageProfile {
    /// The kernel's name.
    pub kernel: String,
    /// The stage's dynamic event counters.
    pub counters: CostCounters,
    /// The decomposition of the stage's estimated time.
    pub breakdown: TimeBreakdown,
}

/// A structured profile of a (possibly multi-kernel) virtual-GPU execution: per-stage
/// counters and time decompositions instead of one opaque total. The totals agree exactly
/// with [`estimated_sequence_time`] over the same counters, so a profile can always be
/// cross-checked against the number the exploration or tuner ranked by.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionProfile {
    /// The kernel stages, in launch order.
    pub stages: Vec<StageProfile>,
    /// Total fixed launch overhead charged (one [`DeviceProfile::launch_overhead`] per
    /// stage).
    pub launch_overhead: f64,
    /// The sequence's estimated time: per-stage times summed plus `launch_overhead`
    /// (equal to [`estimated_sequence_time`]).
    pub estimated_time: f64,
}

impl ExecutionProfile {
    /// Builds a profile from per-stage kernel names and counters. A missing name (shorter
    /// `names` slice) falls back to `stage<i>`.
    pub fn from_stages(
        names: &[String],
        stages: &[CostCounters],
        device: &DeviceProfile,
    ) -> ExecutionProfile {
        let profiles: Vec<StageProfile> = stages
            .iter()
            .enumerate()
            .map(|(i, counters)| StageProfile {
                kernel: names.get(i).cloned().unwrap_or_else(|| format!("stage{i}")),
                counters: *counters,
                breakdown: counters.time_breakdown(device),
            })
            .collect();
        ExecutionProfile {
            launch_overhead: stages.len() as f64 * device.launch_overhead,
            estimated_time: estimated_sequence_time(stages, device),
            stages: profiles,
        }
    }
}

impl std::fmt::Display for ExecutionProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "execution profile: {} stage(s), estimated time {:.1} (launch overhead {:.1})",
            self.stages.len(),
            self.estimated_time,
            self.launch_overhead
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {}: time {:.1} = work {:.1} + span {:.1} (compute {:.1}, memory {:.1}, \
                 sync {:.1})",
                s.kernel,
                s.breakdown.time,
                s.breakdown.work_term,
                s.breakdown.span_term,
                s.breakdown.compute,
                s.breakdown.memory,
                s.breakdown.sync
            )?;
            writeln!(
                f,
                "    {} work items in {} group(s): {} flops, {} global accesses in {} \
                 transactions ({} uncoalesced), {} local, {} barriers",
                s.counters.work_items,
                s.counters.work_groups,
                s.counters.flops,
                s.counters.global_accesses,
                s.counters.global_transactions,
                s.counters.uncoalesced_accesses,
                s.counters.local_accesses,
                s.counters.barriers
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_all_fields() {
        let mut a = CostCounters {
            flops: 1,
            barriers: 2,
            ..Default::default()
        };
        let b = CostCounters {
            flops: 3,
            global_accesses: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flops, 4);
        assert_eq!(a.barriers, 2);
        assert_eq!(a.global_accesses, 5);
    }

    #[test]
    fn div_mod_heavy_kernels_cost_more() {
        let device = DeviceProfile::nvidia();
        let cheap = CostCounters {
            int_ops: 1000,
            ..Default::default()
        };
        let pricey = CostCounters {
            int_ops: 1000,
            div_mod_ops: 1000,
            ..Default::default()
        };
        assert!(pricey.estimated_time(&device) > 5.0 * cheap.estimated_time(&device));
    }

    #[test]
    fn coalescing_reduces_estimated_time() {
        let device = DeviceProfile::nvidia();
        let coalesced = CostCounters {
            global_accesses: 1024,
            global_transactions: 32,
            ..Default::default()
        };
        let scattered = CostCounters {
            global_accesses: 1024,
            global_transactions: 1024,
            uncoalesced_accesses: 992,
            ..Default::default()
        };
        assert!(scattered.estimated_time(&device) > 5.0 * coalesced.estimated_time(&device));
    }

    #[test]
    fn serialised_launches_are_charged_for_their_critical_path() {
        let device = DeviceProfile::nvidia();
        // The same total work: once concentrated in a single work group (one group executes
        // every row), once spread over many groups in parallel.
        let serialised = CostCounters {
            flops: 10_000,
            lockstep_rows: 10_000,
            group_span_rows: 10_000,
            ..Default::default()
        };
        let parallel = CostCounters {
            flops: 10_000,
            lockstep_rows: 10_000,
            group_span_rows: 1_000,
            ..Default::default()
        };
        assert!(serialised.estimated_time(&device) > 5.0 * parallel.estimated_time(&device));
        // With more groups than compute units, the queueing term takes over: shrinking the
        // busiest group below rows/compute_units changes nothing.
        let queued = CostCounters {
            flops: 10_000,
            lockstep_rows: 10_000,
            group_span_rows: 10_000 / device.compute_units as u64 / 2,
            ..Default::default()
        };
        let queued_smaller_span = CostCounters {
            group_span_rows: 1,
            ..queued
        };
        assert_eq!(
            queued.estimated_time(&device),
            queued_smaller_span.estimated_time(&device)
        );
    }

    #[test]
    fn merge_takes_the_max_group_span() {
        let mut a = CostCounters {
            lockstep_rows: 10,
            group_span_rows: 8,
            ..Default::default()
        };
        let b = CostCounters {
            lockstep_rows: 20,
            group_span_rows: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.lockstep_rows, 30);
        assert_eq!(a.group_span_rows, 8);
    }

    #[test]
    fn breakdown_time_equals_estimated_time() {
        for device in [DeviceProfile::nvidia(), DeviceProfile::amd()] {
            let counters = CostCounters {
                flops: 1234,
                int_ops: 567,
                div_mod_ops: 89,
                global_accesses: 4096,
                vector_accesses: 128,
                global_transactions: 130,
                uncoalesced_accesses: 17,
                local_accesses: 256,
                private_accesses: 512,
                barriers: 8,
                loop_iterations: 64,
                work_items: 256,
                work_groups: 4,
                lockstep_rows: 400,
                group_span_rows: 120,
            };
            let b = counters.time_breakdown(&device);
            // Bit-for-bit: the profile presents the same computation the ranking uses.
            assert_eq!(b.time, counters.estimated_time(&device));
            assert_eq!(b.time, b.work_term + b.span_term);
        }
    }

    #[test]
    fn execution_profile_totals_match_the_sequence_model() {
        let device = DeviceProfile::nvidia();
        let stages = [
            CostCounters {
                flops: 1000,
                lockstep_rows: 100,
                group_span_rows: 20,
                ..Default::default()
            },
            CostCounters {
                global_accesses: 2048,
                global_transactions: 64,
                lockstep_rows: 50,
                group_span_rows: 50,
                ..Default::default()
            },
        ];
        let names = vec!["k0".to_string()];
        let profile = ExecutionProfile::from_stages(&names, &stages, &device);
        assert_eq!(profile.stages.len(), 2);
        assert_eq!(profile.stages[0].kernel, "k0");
        // Missing names fall back to a positional label.
        assert_eq!(profile.stages[1].kernel, "stage1");
        assert_eq!(
            profile.estimated_time,
            estimated_sequence_time(&stages, &device)
        );
        assert_eq!(profile.launch_overhead, 2.0 * device.launch_overhead);
        let rendered = profile.to_string();
        assert!(rendered.contains("execution profile: 2 stage(s)"));
        assert!(rendered.contains("k0:"));
        assert!(rendered.contains("stage1:"));
    }

    #[test]
    fn estimated_time_is_never_negative() {
        let device = DeviceProfile::amd();
        let counters = CostCounters {
            vector_accesses: 1_000_000,
            ..Default::default()
        };
        assert!(counters.estimated_time(&device) >= 0.0);
    }
}
