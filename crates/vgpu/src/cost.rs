//! The analytical cost model.
//!
//! During execution the virtual GPU counts dynamic events per work item and per SIMD group:
//! floating-point operations, integer operations, integer divisions/modulos, global and local
//! memory accesses, coalesced memory transactions, barriers and loop iterations. A
//! [`DeviceProfile`](crate::DeviceProfile) turns these counters into an estimated execution
//! time. The model is deliberately simple — it captures exactly the effects the paper's
//! optimisations target (index arithmetic, memory coalescing, barriers and control flow), so
//! that the *relative* performance trends of Figure 8 can be reproduced without GPU hardware.

use crate::device::DeviceProfile;

/// Dynamic event counters accumulated while executing a kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostCounters {
    /// Floating-point operations.
    pub flops: u64,
    /// Simple integer operations (index additions, comparisons, …).
    pub int_ops: u64,
    /// Integer divisions and modulos.
    pub div_mod_ops: u64,
    /// Individual global-memory accesses (loads + stores).
    pub global_accesses: u64,
    /// Global accesses performed through vector loads/stores.
    pub vector_accesses: u64,
    /// Coalesced global-memory transactions (segments touched per SIMD group).
    pub global_transactions: u64,
    /// Global accesses that fell outside a coalesced transaction pattern.
    pub uncoalesced_accesses: u64,
    /// Local-memory accesses.
    pub local_accesses: u64,
    /// Private-memory (register) accesses.
    pub private_accesses: u64,
    /// Work-group barriers executed (counted once per work group).
    pub barriers: u64,
    /// Executed loop iterations (for loop-overhead accounting).
    pub loop_iterations: u64,
    /// Work items that executed the kernel.
    pub work_items: u64,
    /// Work groups that executed the kernel.
    pub work_groups: u64,
}

impl CostCounters {
    /// Adds another set of counters to this one.
    pub fn merge(&mut self, other: &CostCounters) {
        self.flops += other.flops;
        self.int_ops += other.int_ops;
        self.div_mod_ops += other.div_mod_ops;
        self.global_accesses += other.global_accesses;
        self.vector_accesses += other.vector_accesses;
        self.global_transactions += other.global_transactions;
        self.uncoalesced_accesses += other.uncoalesced_accesses;
        self.local_accesses += other.local_accesses;
        self.private_accesses += other.private_accesses;
        self.barriers += other.barriers;
        self.loop_iterations += other.loop_iterations;
        self.work_items += other.work_items;
        self.work_groups += other.work_groups;
    }

    /// Estimates the execution time (in arbitrary "cycle" units) on the given device.
    ///
    /// Work is assumed to be perfectly distributed over the device's compute units; the
    /// constant factor is irrelevant because every experiment reports performance *relative*
    /// to a baseline executed under the same model.
    pub fn estimated_time(&self, device: &DeviceProfile) -> f64 {
        let compute = self.flops as f64 * device.flop_cost
            + self.int_ops as f64 * device.int_op_cost
            + self.div_mod_ops as f64 * device.div_mod_cost
            + self.loop_iterations as f64 * device.loop_overhead;
        let vector_discount = self.vector_accesses as f64
            * device.global_transaction_cost
            * (1.0 - device.vector_access_discount)
            / device.simd_width as f64;
        let memory = self.global_transactions as f64 * device.global_transaction_cost
            + self.uncoalesced_accesses as f64 * device.uncoalesced_penalty
            + self.local_accesses as f64 * device.local_access_cost
            + self.private_accesses as f64 * device.private_access_cost
            - vector_discount;
        let sync = self.barriers as f64 * device.barrier_cost;
        let parallelism = device.compute_units as f64 * device.simd_width as f64;
        (compute + memory + sync).max(0.0) / parallelism
    }
}

/// The result of running a kernel on the virtual GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionReport {
    /// The dynamic event counters.
    pub counters: CostCounters,
}

impl ExecutionReport {
    /// Estimated execution time on `device` (arbitrary units, comparable across runs).
    pub fn estimated_time(&self, device: &DeviceProfile) -> f64 {
        self.counters.estimated_time(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_all_fields() {
        let mut a = CostCounters {
            flops: 1,
            barriers: 2,
            ..Default::default()
        };
        let b = CostCounters {
            flops: 3,
            global_accesses: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flops, 4);
        assert_eq!(a.barriers, 2);
        assert_eq!(a.global_accesses, 5);
    }

    #[test]
    fn div_mod_heavy_kernels_cost_more() {
        let device = DeviceProfile::nvidia();
        let cheap = CostCounters {
            int_ops: 1000,
            ..Default::default()
        };
        let pricey = CostCounters {
            int_ops: 1000,
            div_mod_ops: 1000,
            ..Default::default()
        };
        assert!(pricey.estimated_time(&device) > 5.0 * cheap.estimated_time(&device));
    }

    #[test]
    fn coalescing_reduces_estimated_time() {
        let device = DeviceProfile::nvidia();
        let coalesced = CostCounters {
            global_accesses: 1024,
            global_transactions: 32,
            ..Default::default()
        };
        let scattered = CostCounters {
            global_accesses: 1024,
            global_transactions: 1024,
            uncoalesced_accesses: 992,
            ..Default::default()
        };
        assert!(scattered.estimated_time(&device) > 5.0 * coalesced.estimated_time(&device));
    }

    #[test]
    fn estimated_time_is_never_negative() {
        let device = DeviceProfile::amd();
        let counters = CostCounters {
            vector_accesses: 1_000_000,
            ..Default::default()
        };
        assert!(counters.estimated_time(&device) >= 0.0);
    }
}
