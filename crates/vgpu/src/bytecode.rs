//! The bytecode execution tier of the virtual GPU.
//!
//! [`compile`] translates a lowered slot-indexed kernel ([`SStmt`]/[`SExpr`], see
//! [`crate::exec`]) once per launch into a flat, register-file program; [`run`] executes it
//! over the ND-range with exactly the slotted interpreter's observable semantics — the same
//! [`crate::CostCounters`], the same coalescing analysis, the same bounds checks and the
//! same shadow-memory race/divergence detection, producing byte-identical buffers, counters
//! and [`VgpuError`] results.
//!
//! # Program shape
//!
//! A program is two instruction streams:
//!
//! * **Row ops** ([`RowOp`]) mirror the lock-step statement rows of the SIMT interpreter:
//!   each op loops over the work items of the group under the current activity mask, charges
//!   one `lockstep_rows` per statement (one per round for loop heads) and flushes the
//!   coalescing window exactly where the interpreter does. Structured control flow becomes
//!   dense jumps over the row stream with an explicit mask stack (`If`/`Else`/`EndIf`,
//!   `ForInit`/`ForHead`/`ForStep`).
//! * **Expression ops** ([`EOp`]) are a register-file bytecode executed per work item. Index
//!   evaluation is fused into dedicated ops (`RAdd`/`RDivE`/…) that carge the interpreter's
//!   `int_ops`/`div_mod_ops` exactly; cost counters, pointer checks and memory instrumentation
//!   are explicit instructions (`ChargeInt`, `PtrChk`, `Load`, `StoreChk`, …), so
//!   instrumentation is part of the ISA rather than a property of a tree walk.
//!
//! Registers are `u32` operands: bit 31 selects the per-thread *cell file* (persistent
//! variable slots, reset to a per-launch prototype at each work group), otherwise the operand
//! indexes the *scratch file* of the current row program. Work items run sequentially within
//! a row, and every scratch register is written before it is read within a program, so one
//! shared scratch file serves all threads. Aggregates (OpenCL short vectors and tuple
//! structs) are scalarised into consecutive registers at compile time.
//!
//! # Fallback
//!
//! [`compile`] is deliberately partial: constructs whose cell-file mapping cannot be proven
//! equivalent to the interpreter's name-resolution order (assignment to a field of a
//! variable, slots that are both `__local` arrays and scalar assignees, shape-changing
//! variables, recursive user functions, …) return an error string and the engine falls back
//! to the slotted interpreter for that launch. The Lift code generator never emits these
//! shapes; the fallback keeps the tier sound for hand-written modules.

use std::rc::Rc;

use lift_ocl::{AddrSpace, CBinOp, CUnOp};

use crate::exec::{
    compare, CastKind, Exec, Group, Math1, Math2, SExpr, SIndex, SLhs, SStmt, ShadowCell, Thread,
    VgpuError, WorkItemFn,
};
use crate::memory::{GpuValue, Ptr};

/// Register operand bit selecting the per-thread cell file over the scratch file.
const CELL_BIT: u32 = 1 << 31;
/// "Discard the result" destination marker for [`RowOp::Eval`].
const NO_DST: u32 = u32::MAX;

/// A runtime value of the bytecode tier: the scalar subset of [`GpuValue`] plus `None` for
/// cells that hold no value yet (the interpreter's unset `thread.vals` entry). Aggregates
/// never exist at runtime — they are scalarised into consecutive registers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum V {
    /// No value: reading this as a variable is [`VgpuError::UnknownVariable`].
    None,
    Float(f64),
    Int(i64),
    Bool(bool),
    Ptr(Ptr),
}

impl V {
    /// Mirrors [`GpuValue::as_f64`] (`None` converts like an aggregate).
    fn as_f64(self) -> f64 {
        match self {
            V::Float(v) => v,
            V::Int(v) => v as f64,
            V::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            V::Ptr(_) | V::None => f64::NAN,
        }
    }

    /// Mirrors [`GpuValue::as_i64`].
    fn as_i64(self) -> i64 {
        match self {
            V::Int(v) => v,
            V::Float(v) => v as i64,
            V::Bool(b) => i64::from(b),
            V::Ptr(_) | V::None => 0,
        }
    }

    /// Mirrors [`GpuValue::as_bool`].
    fn as_bool(self) -> bool {
        match self {
            V::Bool(b) => b,
            V::Int(v) => v != 0,
            V::Float(v) => v != 0.0,
            V::Ptr(_) | V::None => false,
        }
    }

    /// Mirrors [`GpuValue::as_ptr`].
    fn as_ptr(self) -> Option<Ptr> {
        match self {
            V::Ptr(p) => Some(p),
            _ => None,
        }
    }
}

/// The compile-time shape of an expression value: a single register or `n` consecutive
/// registers for a scalarised aggregate. Vectors and structs are tracked separately because
/// the interpreter's binary operations are lane-wise over vectors only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    Scalar,
    Vector(u32),
    Struct(u32),
}

impl Shape {
    fn lanes(self) -> u32 {
        match self {
            Shape::Scalar => 1,
            Shape::Vector(n) | Shape::Struct(n) => n,
        }
    }

    fn is_scalar(self) -> bool {
        self == Shape::Scalar
    }
}

/// A compiled expression value: base register plus shape (aggregates occupy
/// `base..base + lanes`).
#[derive(Clone, Copy)]
struct Val {
    base: u32,
    shape: Shape,
}

impl Val {
    fn scalar(base: u32) -> Val {
        Val {
            base,
            shape: Shape::Scalar,
        }
    }
}

/// Expression bytecode, executed per work item within a row. Destinations are always scratch
/// registers; sources may carry [`CELL_BIT`]. Jump targets are relative to the row program.
#[derive(Clone, Copy)]
enum EOp {
    IntC {
        dst: u32,
        v: i64,
    },
    FloatC {
        dst: u32,
        v: f64,
    },
    BoolC {
        dst: u32,
        v: bool,
    },
    Mov {
        dst: u32,
        src: u32,
    },
    /// Errors with [`VgpuError::UnknownVariable`] if the cell holds no value.
    SlotChk {
        cell: u32,
        slot: u32,
    },
    /// `dst = Int(src.as_i64())` — a variable read in index position.
    IdxOf {
        dst: u32,
        src: u32,
    },
    /// The interpreter's `eval_bin` on two scalar values, charging by the runtime path.
    Bin {
        op: CBinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    Neg {
        dst: u32,
        src: u32,
    },
    Not {
        dst: u32,
        src: u32,
    },
    WorkItem {
        kind: WorkItemFn,
        dst: u32,
        dim: u32,
    },
    Math1 {
        kind: Math1,
        dst: u32,
        src: u32,
    },
    Math2 {
        kind: Math2,
        dst: u32,
        a: u32,
        b: u32,
    },
    Mad {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    CastInt {
        dst: u32,
        src: u32,
    },
    CastFloat {
        dst: u32,
        src: u32,
    },
    CastBool {
        dst: u32,
        src: u32,
    },
    /// `int_ops += n` — index-expression and ternary-condition charges.
    ChargeInt {
        n: u64,
    },
    /// `div_mod_ops += 1`, charged before the divisor evaluates (interpreter order).
    ChargeDivMod,
    /// `vector_accesses += width` after a `vload`/`vstore`.
    ChargeVec {
        width: u64,
    },
    /// Errors with [`VgpuError::DivisionByZero`] if the register is integer zero.
    ZChk {
        src: u32,
    },
    /// Fused index ops over `i64` (`Int` registers).
    RAdd {
        dst: u32,
        a: u32,
        b: u32,
    },
    RMul {
        dst: u32,
        a: u32,
        b: u32,
    },
    RDivE {
        dst: u32,
        a: u32,
        b: u32,
    },
    RRemE {
        dst: u32,
        a: u32,
        b: u32,
    },
    RPow {
        dst: u32,
        src: u32,
        e: u32,
    },
    RMin {
        dst: u32,
        a: u32,
        b: u32,
    },
    RMax {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Errors with the table entry if the register does not hold a pointer.
    PtrChk {
        src: u32,
        err: u32,
    },
    /// Width-1 load through [`Exec::load`] (bounds, counters, coalescing log, race checks).
    Load {
        dst: u32,
        ptr: u32,
        idx: u32,
    },
    /// One lane of a `vload{width}`: loads `idx * width + lane` at the vector width.
    LoadLane {
        dst: u32,
        ptr: u32,
        idx: u32,
        width: u32,
        lane: u32,
    },
    /// Width-1 store; errors with the table entry if the value is not scalar.
    StoreChk {
        ptr: u32,
        idx: u32,
        val: u32,
        err: u32,
    },
    /// One lane of a `vstore{width}`.
    StoreLane {
        ptr: u32,
        idx: u32,
        val: u32,
        width: u32,
        lane: u32,
    },
    /// Jump if the condition register is false (`as_bool`).
    Jz {
        cond: u32,
        target: u32,
    },
    Jmp {
        target: u32,
    },
    /// Unconditional error from the table (unknown function, invalid store, …).
    Fail {
        err: u32,
    },
}

/// Row-level ops: each handles the per-thread loop of one lock-step statement row.
#[derive(Clone, Copy)]
enum RowOp {
    Ret,
    Barrier,
    /// Group-wide `__local` allocation; writes the pointer into every thread's cell.
    DeclLocal {
        cell: u32,
        len: usize,
        slot: u32,
    },
    /// Per-active-thread private allocation.
    DeclPrivate {
        cell: u32,
        len: usize,
    },
    /// `DeclScalar` without initialiser: cell = `Float(0.0)` per active thread.
    ZeroCell {
        cell: u32,
    },
    /// Run a row program per active thread; copy `lanes` registers from `src` into the cell
    /// file at `dst` ([`NO_DST`] discards). Flushes the coalescing window afterwards.
    Eval {
        start: u32,
        len: u32,
        src: u32,
        dst: u32,
        lanes: u32,
    },
    /// Evaluate the condition per active thread (charging `int_ops`), push the then-mask if
    /// any thread took it, else jump to `else_pc`.
    If {
        start: u32,
        len: u32,
        cond: u32,
        else_pc: usize,
        has_else: bool,
    },
    /// Pop the then-mask (if pushed), push the saved else-mask if any thread holds it, else
    /// jump to `end_pc`.
    Else {
        end_pc: usize,
    },
    /// Pop the branch mask.
    EndIf,
    /// Evaluate the loop initialiser into the loop-variable cell.
    ForInit {
        start: u32,
        len: u32,
        src: u32,
        cell: u32,
    },
    /// One loop round: charge a row, evaluate the condition per active thread, push the
    /// iteration mask or exit to `end_pc`.
    ForHead {
        start: u32,
        len: u32,
        cond: u32,
        end_pc: usize,
    },
    /// Advance the loop variable per iterating thread, pop the iteration mask, jump back.
    ForStep {
        start: u32,
        len: u32,
        src: u32,
        cell: u32,
        slot: u32,
        head_pc: usize,
    },
    /// Charge the statement row, then raise the table error (e.g. an unresolvable
    /// `__local` length, raised at execution position like the interpreter).
    Fail {
        err: u32,
    },
}

/// A compiled kernel body: row stream, expression code, error table, the per-thread cell
/// prototype (kernel parameters pre-merged) and the scratch-file size.
pub(crate) struct Program {
    rows: Vec<RowOp>,
    code: Vec<EOp>,
    errors: Vec<VgpuError>,
    proto: Vec<V>,
    n_scratch: u32,
}

// ----------------------------------------------------------------------------- compilation

/// Per-slot cell-file mapping.
#[derive(Clone, Copy)]
struct CellInfo {
    base: u32,
    shape: Shape,
    /// The cell can never hold `None` at runtime (a kernel parameter is merged into the
    /// prototype), so reads skip the [`EOp::SlotChk`].
    nonnull: bool,
}

struct Compiler<'a> {
    exec: &'a Exec,
    rows: Vec<RowOp>,
    code: Vec<EOp>,
    errors: Vec<VgpuError>,
    cells: Vec<Option<CellInfo>>,
    n_cell_regs: u32,
    proto: Vec<V>,
    /// Start of the current row program in `code` (jump targets are relative to it).
    prog_start: usize,
    scratch_top: u32,
    max_scratch: u32,
    /// Slots declared as `__local` arrays (their reads in index position are unsupported).
    local_decl: Vec<bool>,
    /// Inlining stack of user-function indices (recursion is unsupported).
    fn_stack: Vec<usize>,
    /// Substitution stack for inlined user-function parameters (innermost binding last).
    subst: Vec<(usize, Val)>,
}

/// Compiles a lowered kernel body against its prepared launch state. Returns a reason string
/// for constructs the bytecode tier does not support (the engine falls back to the
/// interpreter).
pub(crate) fn compile(body: &[SStmt], exec: &Exec) -> Result<Program, String> {
    let nslots = exec.names.len();
    let local_decl = prescan(body, nslots, exec)?;
    let mut c = Compiler {
        exec,
        rows: Vec::new(),
        code: Vec::new(),
        errors: Vec::new(),
        cells: vec![None; nslots],
        n_cell_regs: 0,
        proto: Vec::new(),
        prog_start: 0,
        scratch_top: 0,
        max_scratch: 0,
        local_decl,
        fn_stack: Vec::new(),
        subst: Vec::new(),
    };
    c.block(body)?;
    Ok(Program {
        rows: c.rows,
        code: c.code,
        errors: c.errors,
        proto: c.proto,
        n_scratch: c.max_scratch,
    })
}

/// Collects `__local`-declared slots and rejects bodies whose slot usage cannot be mapped to
/// a single cell per slot: a slot that is both a `__local` array and a scalar assignee would
/// need the interpreter's two-level name resolution, and field assignment mutates only part
/// of a value.
fn prescan(body: &[SStmt], nslots: usize, exec: &Exec) -> Result<Vec<bool>, String> {
    let mut local = vec![false; nslots];
    let mut assigned = vec![false; nslots];
    walk(body, &mut local, &mut assigned)?;
    for slot in 0..nslots {
        if local[slot] && assigned[slot] {
            return Err(format!(
                "slot `{}` is both a __local array and an assigned variable",
                exec.names[slot]
            ));
        }
    }
    Ok(local)
}

fn walk(stmts: &[SStmt], local: &mut [bool], assigned: &mut [bool]) -> Result<(), String> {
    for s in stmts {
        match s {
            SStmt::Block(ss) => walk(ss, local, assigned)?,
            SStmt::DeclLocalArray { slot, .. } => local[*slot] = true,
            SStmt::DeclPrivateArray { slot, .. } | SStmt::DeclScalar { slot, .. } => {
                assigned[*slot] = true;
            }
            SStmt::Assign { lhs, .. } => match lhs {
                SLhs::Var(slot) => assigned[*slot] = true,
                SLhs::FieldOfVar(..) => {
                    return Err("assignment to a field of a variable".to_string())
                }
                SLhs::Array(..) | SLhs::Invalid(_) => {}
            },
            SStmt::If {
                then, otherwise, ..
            } => {
                walk(then, local, assigned)?;
                if let Some(o) = otherwise {
                    walk(o, local, assigned)?;
                }
            }
            SStmt::For { slot, body, .. } => {
                assigned[*slot] = true;
                walk(body, local, assigned)?;
            }
            SStmt::Return | SStmt::Barrier | SStmt::Expr(_) => {}
        }
    }
    Ok(())
}

impl Compiler<'_> {
    fn emit(&mut self, op: EOp) {
        self.code.push(op);
    }

    /// Allocates `n` consecutive scratch registers of the current row program.
    fn sn(&mut self, n: u32) -> u32 {
        let base = self.scratch_top;
        self.scratch_top += n;
        self.max_scratch = self.max_scratch.max(self.scratch_top);
        base
    }

    fn s1(&mut self) -> u32 {
        self.sn(1)
    }

    fn intc(&mut self, v: i64) -> u32 {
        let dst = self.s1();
        self.emit(EOp::IntC { dst, v });
        dst
    }

    fn floatc(&mut self, v: f64) -> u32 {
        let dst = self.s1();
        self.emit(EOp::FloatC { dst, v });
        dst
    }

    fn boolc(&mut self, v: bool) -> u32 {
        let dst = self.s1();
        self.emit(EOp::BoolC { dst, v });
        dst
    }

    fn errid(&mut self, e: VgpuError) -> u32 {
        if let Some(i) = self.errors.iter().position(|x| *x == e) {
            return i as u32;
        }
        self.errors.push(e);
        (self.errors.len() - 1) as u32
    }

    fn fail(&mut self, e: VgpuError) {
        let err = self.errid(e);
        self.emit(EOp::Fail { err });
    }

    /// Registers for a value that is never produced at runtime (code after an
    /// unconditional [`EOp::Fail`]).
    fn dummy(&mut self, shape: Shape) -> Val {
        Val {
            base: self.sn(shape.lanes()),
            shape,
        }
    }

    /// A register usable in `as_f64`/`as_i64`/`as_ptr` position: aggregates convert exactly
    /// like a `Float(NaN)` placeholder (`NaN`, `0`, `None` respectively).
    fn num(&mut self, v: Val) -> u32 {
        if v.shape.is_scalar() {
            v.base
        } else {
            self.floatc(f64::NAN)
        }
    }

    /// A register usable in `as_bool` position: aggregates read as `false`.
    fn cond(&mut self, v: Val) -> u32 {
        if v.shape.is_scalar() {
            v.base
        } else {
            self.boolc(false)
        }
    }

    fn movn(&mut self, dst: u32, src: u32, n: u32) {
        for k in 0..n {
            self.emit(EOp::Mov {
                dst: dst + k,
                src: src + k,
            });
        }
    }

    /// Begins a row program: resets the scratch allocator and records the start for
    /// relative jump targets; returns `(start, len, result)`.
    fn row_prog<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, String>,
    ) -> Result<(u32, u32, T), String> {
        let start = self.code.len();
        self.prog_start = start;
        self.scratch_top = 0;
        let out = f(self)?;
        Ok((start as u32, (self.code.len() - start) as u32, out))
    }

    /// The cell of `slot`, allocating on first touch. `want` enforces a shape (assignments,
    /// declarations); reads pass `None` and default to scalar. Kernel parameters are merged
    /// into the prototype, making the cell provably non-`None`.
    fn cell(&mut self, slot: usize, want: Option<Shape>) -> Result<CellInfo, String> {
        if let Some(info) = self.cells[slot] {
            if let Some(w) = want {
                if w != info.shape {
                    return Err(format!(
                        "slot `{}` changes shape during execution",
                        self.exec.names[slot]
                    ));
                }
            }
            return Ok(info);
        }
        let shape = want.unwrap_or(Shape::Scalar);
        let base = self.n_cell_regs;
        let lanes = shape.lanes();
        self.n_cell_regs += lanes;
        let param = self.exec.params[slot].as_ref();
        let nonnull = if shape.is_scalar() {
            match param {
                Some(p) => {
                    let v = match p {
                        GpuValue::Float(v) => V::Float(*v),
                        GpuValue::Int(v) => V::Int(*v),
                        GpuValue::Bool(b) => V::Bool(*b),
                        GpuValue::Ptr(p) => V::Ptr(*p),
                        GpuValue::Vector(_) | GpuValue::Struct(_) => {
                            return Err(format!(
                                "aggregate kernel parameter `{}`",
                                self.exec.names[slot]
                            ))
                        }
                    };
                    self.proto.push(v);
                    true
                }
                None => {
                    self.proto.push(V::None);
                    false
                }
            }
        } else {
            if param.is_some() {
                return Err(format!(
                    "slot `{}` shadows a kernel parameter with an aggregate",
                    self.exec.names[slot]
                ));
            }
            for _ in 0..lanes {
                self.proto.push(V::None);
            }
            false
        };
        let info = CellInfo {
            base,
            shape,
            nonnull,
        };
        self.cells[slot] = Some(info);
        Ok(info)
    }

    fn lookup_subst(&self, slot: usize) -> Option<Val> {
        self.subst
            .iter()
            .rev()
            .find(|(s, _)| *s == slot)
            .map(|(_, v)| *v)
    }

    /// A variable read in value position: inlined function parameters first, then the cell
    /// file (checked against `None` unless a parameter guarantees a value). The cell merges
    /// the interpreter's `thread.vals` → `__local` pointer → kernel parameter resolution
    /// order, which is sound because every defining construct writes the cell.
    fn read_var(&mut self, slot: usize) -> Result<Val, String> {
        if let Some(v) = self.lookup_subst(slot) {
            return Ok(v);
        }
        let info = self.cell(slot, None)?;
        if !info.nonnull {
            self.emit(EOp::SlotChk {
                cell: info.base,
                slot: slot as u32,
            });
        }
        Ok(Val {
            base: info.base | CELL_BIT,
            shape: info.shape,
        })
    }

    /// A variable read in index position. The interpreter resolves `thread.vals` then kernel
    /// parameters — skipping `__local` arrays — so local-array slots are unsupported here.
    fn read_idx_var(&mut self, slot: usize) -> Result<u32, String> {
        if let Some(v) = self.lookup_subst(slot) {
            if !v.shape.is_scalar() {
                // An aggregate value reads as integer 0, like `GpuValue::as_i64`.
                return Ok(self.intc(0));
            }
            let dst = self.s1();
            self.emit(EOp::IdxOf { dst, src: v.base });
            return Ok(dst);
        }
        if self.local_decl[slot] {
            return Err(format!(
                "__local array `{}` read in index position",
                self.exec.names[slot]
            ));
        }
        let info = self.cell(slot, None)?;
        if !info.nonnull {
            self.emit(EOp::SlotChk {
                cell: info.base,
                slot: slot as u32,
            });
        }
        if !info.shape.is_scalar() {
            return Ok(self.intc(0));
        }
        let dst = self.s1();
        self.emit(EOp::IdxOf {
            dst,
            src: info.base | CELL_BIT,
        });
        Ok(dst)
    }

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, e: &SExpr) -> Result<Val, String> {
        match e {
            SExpr::Int(v) => Ok(Val::scalar(self.intc(*v))),
            SExpr::Float(v) => Ok(Val::scalar(self.floatc(*v))),
            SExpr::Var(slot) => self.read_var(*slot),
            SExpr::Index(a) => Ok(Val::scalar(self.index(a)?)),
            SExpr::Bin(op, a, b) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                match (va.shape, vb.shape) {
                    // Lane-wise only when the left operand is a vector (interpreter rule).
                    (Shape::Vector(n), Shape::Vector(m)) => {
                        if m < n {
                            return Err("vector operands of mismatched width".to_string());
                        }
                        let dst = self.sn(n);
                        for i in 0..n {
                            self.emit(EOp::Bin {
                                op: *op,
                                dst: dst + i,
                                a: va.base + i,
                                b: vb.base + i,
                            });
                        }
                        Ok(Val {
                            base: dst,
                            shape: Shape::Vector(n),
                        })
                    }
                    (Shape::Vector(n), _) => {
                        let rb = self.num(vb);
                        let dst = self.sn(n);
                        for i in 0..n {
                            self.emit(EOp::Bin {
                                op: *op,
                                dst: dst + i,
                                a: va.base + i,
                                b: rb,
                            });
                        }
                        Ok(Val {
                            base: dst,
                            shape: Shape::Vector(n),
                        })
                    }
                    _ => {
                        let ra = self.num(va);
                        let rb = self.num(vb);
                        let dst = self.s1();
                        self.emit(EOp::Bin {
                            op: *op,
                            dst,
                            a: ra,
                            b: rb,
                        });
                        Ok(Val::scalar(dst))
                    }
                }
            }
            SExpr::Un(op, a) => {
                let va = self.expr(a)?;
                let dst = self.s1();
                match op {
                    CUnOp::Neg => {
                        let src = self.num(va);
                        self.emit(EOp::Neg { dst, src });
                    }
                    CUnOp::Not => {
                        let src = self.cond(va);
                        self.emit(EOp::Not { dst, src });
                    }
                }
                Ok(Val::scalar(dst))
            }
            SExpr::WorkItem(kind, dim) => {
                let vd = self.expr(dim)?;
                let dim = self.num(vd);
                let dst = self.s1();
                self.emit(EOp::WorkItem {
                    kind: *kind,
                    dst,
                    dim,
                });
                Ok(Val::scalar(dst))
            }
            SExpr::VLoad(width, idx, ptr) => {
                let w = *width as u32;
                let vi = self.expr(idx)?;
                let ri = self.num(vi);
                let vp = self.expr(ptr)?;
                if !vp.shape.is_scalar() {
                    self.fail(VgpuError::NotAPointer(format!("vload{width}")));
                    return Ok(self.dummy(Shape::Vector(w)));
                }
                let err = self.errid(VgpuError::NotAPointer(format!("vload{width}")));
                self.emit(EOp::PtrChk { src: vp.base, err });
                let dst = self.sn(w);
                for lane in 0..w {
                    self.emit(EOp::LoadLane {
                        dst: dst + lane,
                        ptr: vp.base,
                        idx: ri,
                        width: w,
                        lane,
                    });
                }
                self.emit(EOp::ChargeVec {
                    width: *width as u64,
                });
                Ok(Val {
                    base: dst,
                    shape: Shape::Vector(w),
                })
            }
            SExpr::VStore(width, value, idx, ptr) => {
                let w = *width as u32;
                let vv = self.expr(value)?;
                // A vector value stores its own lanes; anything else is broadcast `width`
                // times (a struct converts to NaN, like the interpreter's `as_f64`).
                let (lane_base, nlanes, broadcast) = match vv.shape {
                    Shape::Vector(n) => (vv.base, n, false),
                    Shape::Struct(_) => (self.floatc(f64::NAN), w, true),
                    Shape::Scalar => (vv.base, w, true),
                };
                let vi = self.expr(idx)?;
                let ri = self.num(vi);
                let vp = self.expr(ptr)?;
                if !vp.shape.is_scalar() {
                    self.fail(VgpuError::NotAPointer(format!("vstore{width}")));
                    return Ok(self.dummy(Shape::Scalar));
                }
                let err = self.errid(VgpuError::NotAPointer(format!("vstore{width}")));
                self.emit(EOp::PtrChk { src: vp.base, err });
                for lane in 0..nlanes {
                    self.emit(EOp::StoreLane {
                        ptr: vp.base,
                        idx: ri,
                        val: if broadcast {
                            lane_base
                        } else {
                            lane_base + lane
                        },
                        width: w,
                        lane,
                    });
                }
                self.emit(EOp::ChargeVec {
                    width: *width as u64,
                });
                Ok(Val::scalar(self.intc(0)))
            }
            SExpr::Math1(kind, a) => {
                let va = self.expr(a)?;
                let src = self.num(va);
                let dst = self.s1();
                self.emit(EOp::Math1 {
                    kind: *kind,
                    dst,
                    src,
                });
                Ok(Val::scalar(dst))
            }
            SExpr::Math2(kind, a, b) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                let ra = self.num(va);
                let rb = self.num(vb);
                let dst = self.s1();
                self.emit(EOp::Math2 {
                    kind: *kind,
                    dst,
                    a: ra,
                    b: rb,
                });
                Ok(Val::scalar(dst))
            }
            SExpr::Mad(a, b, c) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                let vc = self.expr(c)?;
                let ra = self.num(va);
                let rb = self.num(vb);
                let rc = self.num(vc);
                let dst = self.s1();
                self.emit(EOp::Mad {
                    dst,
                    a: ra,
                    b: rb,
                    c: rc,
                });
                Ok(Val::scalar(dst))
            }
            SExpr::CallFun(fidx, args) => {
                let fun = Rc::clone(&self.exec.functions[*fidx]);
                if fun.params.len() != args.len() {
                    self.fail(VgpuError::ArgumentMismatch {
                        expected: fun.params.len(),
                        found: args.len(),
                    });
                    return Ok(self.dummy(Shape::Scalar));
                }
                if self.fn_stack.contains(fidx) {
                    return Err("recursive user function".to_string());
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a)?);
                }
                // Inline the body with parameters substituted by the argument registers —
                // the compile-time image of the interpreter's save/bind/restore.
                let mark = self.subst.len();
                for (s, v) in fun.params.iter().zip(vals) {
                    self.subst.push((*s, v));
                }
                self.fn_stack.push(*fidx);
                let out = self.expr(&fun.body);
                self.fn_stack.pop();
                self.subst.truncate(mark);
                out
            }
            SExpr::UnknownCall(name) => {
                self.fail(VgpuError::UnknownFunction(name.clone()));
                Ok(self.dummy(Shape::Scalar))
            }
            SExpr::ArrayAccess(arr, idx) => {
                let va = self.expr(arr)?;
                if !va.shape.is_scalar() {
                    self.fail(VgpuError::NotAPointer("array expression".to_string()));
                    return Ok(self.dummy(Shape::Scalar));
                }
                let err = self.errid(VgpuError::NotAPointer("array expression".to_string()));
                self.emit(EOp::PtrChk { src: va.base, err });
                let vi = self.expr(idx)?;
                let ri = self.num(vi);
                let dst = self.s1();
                self.emit(EOp::Load {
                    dst,
                    ptr: va.base,
                    idx: ri,
                });
                Ok(Val::scalar(dst))
            }
            SExpr::Field(obj, idx, field) => {
                let vo = self.expr(obj)?;
                match vo.shape {
                    Shape::Struct(n) | Shape::Vector(n) => {
                        if (*idx as u32) < n {
                            Ok(Val::scalar(vo.base + *idx as u32))
                        } else {
                            self.fail(VgpuError::UnknownVariable(format!("field {field}")));
                            Ok(self.dummy(Shape::Scalar))
                        }
                    }
                    // Projecting a field out of a scalar passes the value through.
                    Shape::Scalar => Ok(vo),
                }
            }
            SExpr::Cast(kind, inner) => {
                let v = self.expr(inner)?;
                match kind {
                    CastKind::Keep => Ok(v),
                    CastKind::Int => {
                        if v.shape.is_scalar() {
                            let dst = self.s1();
                            self.emit(EOp::CastInt { dst, src: v.base });
                            Ok(Val::scalar(dst))
                        } else {
                            Ok(Val::scalar(self.intc(0)))
                        }
                    }
                    CastKind::Float => {
                        if v.shape.is_scalar() {
                            let dst = self.s1();
                            self.emit(EOp::CastFloat { dst, src: v.base });
                            Ok(Val::scalar(dst))
                        } else {
                            Ok(Val::scalar(self.floatc(f64::NAN)))
                        }
                    }
                    CastKind::Bool => {
                        if v.shape.is_scalar() {
                            let dst = self.s1();
                            self.emit(EOp::CastBool { dst, src: v.base });
                            Ok(Val::scalar(dst))
                        } else {
                            Ok(Val::scalar(self.boolc(false)))
                        }
                    }
                }
            }
            SExpr::Ternary(c, t, other) => {
                let vc = self.expr(c)?;
                let rc = self.cond(vc);
                self.emit(EOp::ChargeInt { n: 1 });
                let jz_at = self.code.len();
                self.emit(EOp::Jz {
                    cond: rc,
                    target: 0,
                });
                let vt = self.expr(t)?;
                let lanes = vt.shape.lanes();
                let res = self.sn(lanes);
                self.movn(res, vt.base, lanes);
                let jmp_at = self.code.len();
                self.emit(EOp::Jmp { target: 0 });
                let else_target = (self.code.len() - self.prog_start) as u32;
                if let EOp::Jz { target, .. } = &mut self.code[jz_at] {
                    *target = else_target;
                }
                let ve = self.expr(other)?;
                if ve.shape != vt.shape {
                    return Err("ternary branches of different shapes".to_string());
                }
                self.movn(res, ve.base, lanes);
                let end_target = (self.code.len() - self.prog_start) as u32;
                if let EOp::Jmp { target } = &mut self.code[jmp_at] {
                    *target = end_target;
                }
                Ok(Val {
                    base: res,
                    shape: vt.shape,
                })
            }
            SExpr::StructLit(fields) => {
                let parts = self.scalar_parts(fields)?;
                let n = parts.len() as u32;
                let dst = self.sn(n);
                for (k, r) in parts.into_iter().enumerate() {
                    self.emit(EOp::Mov {
                        dst: dst + k as u32,
                        src: r,
                    });
                }
                Ok(Val {
                    base: dst,
                    shape: Shape::Struct(n),
                })
            }
            SExpr::VectorLit(elems) => {
                let parts = self.scalar_parts(elems)?;
                let n = parts.len() as u32;
                let dst = self.sn(n);
                for (k, r) in parts.into_iter().enumerate() {
                    self.emit(EOp::Mov {
                        dst: dst + k as u32,
                        src: r,
                    });
                }
                Ok(Val {
                    base: dst,
                    shape: Shape::Vector(n),
                })
            }
        }
    }

    /// Evaluates literal aggregate elements left to right; nested aggregates are
    /// unsupported.
    fn scalar_parts(&mut self, elems: &[SExpr]) -> Result<Vec<u32>, String> {
        let mut parts = Vec::with_capacity(elems.len());
        for e in elems {
            let v = self.expr(e)?;
            if !v.shape.is_scalar() {
                return Err("nested aggregate literal".to_string());
            }
            parts.push(v.base);
        }
        Ok(parts)
    }

    /// Compiles an index expression, charging `int_ops`/`div_mod_ops` exactly where the
    /// interpreter's counting walk does.
    fn index(&mut self, a: &SIndex) -> Result<u32, String> {
        match a {
            SIndex::Cst(c) => Ok(self.intc(*c)),
            SIndex::Var(slot) => self.read_idx_var(*slot),
            SIndex::Sum(ts) => {
                if ts.len() > 1 {
                    self.emit(EOp::ChargeInt {
                        n: (ts.len() - 1) as u64,
                    });
                }
                if ts.is_empty() {
                    return Ok(self.intc(0));
                }
                let mut acc = self.index(&ts[0])?;
                for t in &ts[1..] {
                    let r = self.index(t)?;
                    let dst = self.s1();
                    self.emit(EOp::RAdd { dst, a: acc, b: r });
                    acc = dst;
                }
                Ok(acc)
            }
            SIndex::Prod(fs) => {
                if fs.len() > 1 {
                    self.emit(EOp::ChargeInt {
                        n: (fs.len() - 1) as u64,
                    });
                }
                if fs.is_empty() {
                    return Ok(self.intc(1));
                }
                let mut acc = self.index(&fs[0])?;
                for f in &fs[1..] {
                    let r = self.index(f)?;
                    let dst = self.s1();
                    self.emit(EOp::RMul { dst, a: acc, b: r });
                    acc = dst;
                }
                Ok(acc)
            }
            SIndex::IntDiv(a, b) => {
                self.emit(EOp::ChargeDivMod);
                let rb = self.index(b)?;
                self.emit(EOp::ZChk { src: rb });
                let ra = self.index(a)?;
                let dst = self.s1();
                self.emit(EOp::RDivE { dst, a: ra, b: rb });
                Ok(dst)
            }
            SIndex::Mod(a, b) => {
                self.emit(EOp::ChargeDivMod);
                let rb = self.index(b)?;
                self.emit(EOp::ZChk { src: rb });
                let ra = self.index(a)?;
                let dst = self.s1();
                self.emit(EOp::RRemE { dst, a: ra, b: rb });
                Ok(dst)
            }
            SIndex::Pow(b, e) => {
                let n = u64::from(e.saturating_sub(1));
                if n > 0 {
                    self.emit(EOp::ChargeInt { n });
                }
                let src = self.index(b)?;
                let dst = self.s1();
                self.emit(EOp::RPow { dst, src, e: *e });
                Ok(dst)
            }
            SIndex::Min(a, b) => {
                self.emit(EOp::ChargeInt { n: 1 });
                let ra = self.index(a)?;
                let rb = self.index(b)?;
                let dst = self.s1();
                self.emit(EOp::RMin { dst, a: ra, b: rb });
                Ok(dst)
            }
            SIndex::Max(a, b) => {
                self.emit(EOp::ChargeInt { n: 1 });
                let ra = self.index(a)?;
                let rb = self.index(b)?;
                let dst = self.s1();
                self.emit(EOp::RMax { dst, a: ra, b: rb });
                Ok(dst)
            }
        }
    }

    fn block(&mut self, stmts: &[SStmt]) -> Result<(), String> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self, s: &SStmt) -> Result<(), String> {
        match s {
            SStmt::Block(ss) => self.block(ss),
            SStmt::Return => {
                self.rows.push(RowOp::Ret);
                Ok(())
            }
            SStmt::Barrier => {
                self.rows.push(RowOp::Barrier);
                Ok(())
            }
            SStmt::DeclLocalArray { slot, len } => {
                // Lengths are launch-invariant (they resolve against kernel arguments
                // only), so resolve once here; failures are raised at execution position.
                match self.exec.resolve_len(len) {
                    Ok(l) => {
                        let info = self.cell(*slot, Some(Shape::Scalar))?;
                        self.rows.push(RowOp::DeclLocal {
                            cell: info.base,
                            len: l,
                            slot: *slot as u32,
                        });
                    }
                    Err(e) => {
                        let err = self.errid(e);
                        self.rows.push(RowOp::Fail { err });
                    }
                }
                Ok(())
            }
            SStmt::DeclPrivateArray { slot, len } => {
                match self.exec.resolve_len(len) {
                    Ok(l) => {
                        let info = self.cell(*slot, Some(Shape::Scalar))?;
                        self.rows.push(RowOp::DeclPrivate {
                            cell: info.base,
                            len: l,
                        });
                    }
                    Err(e) => {
                        let err = self.errid(e);
                        self.rows.push(RowOp::Fail { err });
                    }
                }
                Ok(())
            }
            SStmt::DeclScalar { slot, init } => {
                match init {
                    None => {
                        let info = self.cell(*slot, Some(Shape::Scalar))?;
                        self.rows.push(RowOp::ZeroCell { cell: info.base });
                    }
                    Some(e) => {
                        let (start, len, v) = self.row_prog(|c| c.expr(e))?;
                        let info = self.cell(*slot, Some(v.shape))?;
                        self.rows.push(RowOp::Eval {
                            start,
                            len,
                            src: v.base,
                            dst: info.base,
                            lanes: v.shape.lanes(),
                        });
                    }
                }
                Ok(())
            }
            SStmt::Assign { lhs, rhs } => match lhs {
                SLhs::Var(slot) => {
                    let (start, len, v) = self.row_prog(|c| c.expr(rhs))?;
                    let info = self.cell(*slot, Some(v.shape))?;
                    self.rows.push(RowOp::Eval {
                        start,
                        len,
                        src: v.base,
                        dst: info.base,
                        lanes: v.shape.lanes(),
                    });
                    Ok(())
                }
                SLhs::Array(arr, idx) => {
                    let (start, len, ()) = self.row_prog(|c| {
                        let vr = c.expr(rhs)?;
                        let va = c.expr(arr)?;
                        if !va.shape.is_scalar() {
                            c.fail(VgpuError::NotAPointer("array expression".to_string()));
                            return Ok(());
                        }
                        let err = c.errid(VgpuError::NotAPointer("array expression".to_string()));
                        c.emit(EOp::PtrChk { src: va.base, err });
                        let vi = c.expr(idx)?;
                        let ri = c.num(vi);
                        if vr.shape.is_scalar() {
                            let err = c.errid(VgpuError::InvalidStore("array element".to_string()));
                            c.emit(EOp::StoreChk {
                                ptr: va.base,
                                idx: ri,
                                val: vr.base,
                                err,
                            });
                        } else {
                            // Aggregates are never scalar stores.
                            c.fail(VgpuError::InvalidStore("array element".to_string()));
                        }
                        Ok(())
                    })?;
                    self.rows.push(RowOp::Eval {
                        start,
                        len,
                        src: 0,
                        dst: NO_DST,
                        lanes: 0,
                    });
                    Ok(())
                }
                SLhs::FieldOfVar(..) => Err("assignment to a field of a variable".to_string()),
                SLhs::Invalid(rendering) => {
                    let (start, len, ()) = self.row_prog(|c| {
                        c.expr(rhs)?;
                        c.fail(VgpuError::InvalidStore(rendering.clone()));
                        Ok(())
                    })?;
                    self.rows.push(RowOp::Eval {
                        start,
                        len,
                        src: 0,
                        dst: NO_DST,
                        lanes: 0,
                    });
                    Ok(())
                }
            },
            SStmt::Expr(e) => {
                let (start, len, _) = self.row_prog(|c| c.expr(e))?;
                self.rows.push(RowOp::Eval {
                    start,
                    len,
                    src: 0,
                    dst: NO_DST,
                    lanes: 0,
                });
                Ok(())
            }
            SStmt::If {
                cond,
                then,
                otherwise,
            } => {
                let (start, len, rc) = self.row_prog(|c| {
                    let v = c.expr(cond)?;
                    Ok(c.cond(v))
                })?;
                let if_at = self.rows.len();
                self.rows.push(RowOp::If {
                    start,
                    len,
                    cond: rc,
                    else_pc: 0,
                    has_else: otherwise.is_some(),
                });
                self.block(then)?;
                if let Some(ow) = otherwise {
                    let else_at = self.rows.len();
                    self.rows.push(RowOp::Else { end_pc: 0 });
                    self.block(ow)?;
                    let endif_at = self.rows.len();
                    self.rows.push(RowOp::EndIf);
                    if let RowOp::If { else_pc, .. } = &mut self.rows[if_at] {
                        *else_pc = else_at;
                    }
                    if let RowOp::Else { end_pc } = &mut self.rows[else_at] {
                        *end_pc = endif_at + 1;
                    }
                } else {
                    let endif_at = self.rows.len();
                    self.rows.push(RowOp::EndIf);
                    if let RowOp::If { else_pc, .. } = &mut self.rows[if_at] {
                        *else_pc = endif_at + 1;
                    }
                }
                Ok(())
            }
            SStmt::For {
                slot,
                init,
                cond,
                step,
                body,
            } => {
                let (istart, ilen, vi) = self.row_prog(|c| c.expr(init))?;
                if !vi.shape.is_scalar() {
                    return Err("aggregate loop variable".to_string());
                }
                let info = self.cell(*slot, Some(Shape::Scalar))?;
                self.rows.push(RowOp::ForInit {
                    start: istart,
                    len: ilen,
                    src: vi.base,
                    cell: info.base,
                });
                let head_at = self.rows.len();
                let (cstart, clen, rc) = self.row_prog(|c| {
                    let v = c.expr(cond)?;
                    Ok(c.cond(v))
                })?;
                self.rows.push(RowOp::ForHead {
                    start: cstart,
                    len: clen,
                    cond: rc,
                    end_pc: 0,
                });
                self.block(body)?;
                let (sstart, slen, rs) = self.row_prog(|c| {
                    let v = c.expr(step)?;
                    Ok(c.num(v))
                })?;
                self.rows.push(RowOp::ForStep {
                    start: sstart,
                    len: slen,
                    src: rs,
                    cell: info.base,
                    slot: *slot as u32,
                    head_pc: head_at,
                });
                let after = self.rows.len();
                if let RowOp::ForHead { end_pc, .. } = &mut self.rows[head_at] {
                    *end_pc = after;
                }
                Ok(())
            }
        }
    }
}

// ------------------------------------------------------------------------------- execution

#[inline(always)]
fn rd(r: u32, cells: &[V], scratch: &[V]) -> V {
    if r & CELL_BIT != 0 {
        cells[(r ^ CELL_BIT) as usize]
    } else {
        scratch[r as usize]
    }
}

/// Executes a compiled program against prepared launch state, mirroring the interpreter's
/// group/thread iteration order, mask discipline and counter placement exactly.
pub(crate) fn run(exec: &mut Exec, prog: &Program) -> Result<(), VgpuError> {
    let groups = exec.config.num_groups();
    let local = exec.config.local;
    let n: usize = local.iter().product();
    let ncells = prog.proto.len();

    let mut threads: Vec<Thread> = Vec::with_capacity(n);
    for lz in 0..local[2] {
        for ly in 0..local[1] {
            for lx in 0..local[0] {
                threads.push(Thread {
                    lid: [lx, ly, lz],
                    gid: [0, 0, 0],
                    linear: lx + local[0] * (ly + local[1] * lz),
                    vals: Vec::new(),
                    private: Vec::new(),
                    returned: false,
                });
            }
        }
    }

    let mut vm = Vm {
        prog,
        n,
        ncells,
        cells: vec![V::None; ncells * n],
        scratch: vec![V::None; prog.n_scratch as usize],
        masks: Vec::with_capacity(n * 4),
        else_masks: Vec::new(),
        if_stack: Vec::new(),
        tm: vec![false; n],
        em: vec![false; n],
        threads,
    };

    for gz in 0..groups[2] {
        for gy in 0..groups[1] {
            for gx in 0..groups[0] {
                let mut group = Group {
                    id: [gx, gy, gz],
                    linear: gx + groups[0] * (gy + groups[1] * gz),
                    local: Vec::new(),
                    local_slots: Vec::new(),
                    epoch: 0,
                    shadow_local: Vec::new(),
                    local_names: Vec::new(),
                };
                for t in vm.threads.iter_mut() {
                    t.gid = [
                        gx * local[0] + t.lid[0],
                        gy * local[1] + t.lid[1],
                        gz * local[2] + t.lid[2],
                    ];
                    t.private.clear();
                    t.returned = false;
                }
                for t in 0..n {
                    vm.cells[t * ncells..(t + 1) * ncells].copy_from_slice(&prog.proto);
                }
                vm.masks.clear();
                vm.masks.resize(n, true);
                vm.else_masks.clear();
                vm.if_stack.clear();
                exec.counters.work_groups += 1;
                exec.counters.work_items += n as u64;
                let rows_before = exec.counters.lockstep_rows;
                vm.run_group(exec, &mut group)?;
                let group_rows = exec.counters.lockstep_rows - rows_before;
                exec.counters.group_span_rows = exec.counters.group_span_rows.max(group_rows);
            }
        }
    }
    Ok(())
}

/// Per-launch VM state, reused across work groups: cell/scratch register files, the mask
/// stack arena (frames of `n` booleans; the top frame is the current activity mask) and the
/// pending else-mask arena of open `if` rows.
struct Vm<'p> {
    prog: &'p Program,
    n: usize,
    ncells: usize,
    cells: Vec<V>,
    scratch: Vec<V>,
    masks: Vec<bool>,
    else_masks: Vec<bool>,
    /// Per open `if` with an `else`: whether the then-mask was pushed.
    if_stack: Vec<bool>,
    /// Transient then-/iteration-mask buffer.
    tm: Vec<bool>,
    /// Transient else-mask buffer.
    em: Vec<bool>,
    threads: Vec<Thread>,
}

impl Vm<'_> {
    #[allow(clippy::too_many_lines)]
    fn run_group(&mut self, exec: &mut Exec, group: &mut Group) -> Result<(), VgpuError> {
        let n = self.n;
        let ncells = self.ncells;
        let mut pc = 0usize;
        while pc < self.prog.rows.len() {
            match self.prog.rows[pc] {
                RowOp::Ret => {
                    exec.counters.lockstep_rows += 1;
                    let top = self.masks.len() - n;
                    for i in 0..n {
                        if self.masks[top + i] {
                            self.threads[i].returned = true;
                        }
                    }
                    pc += 1;
                }
                RowOp::Barrier => {
                    exec.counters.lockstep_rows += 1;
                    let top = self.masks.len() - n;
                    let mut arrived = 0;
                    let mut expected = 0;
                    for i in 0..n {
                        if !self.threads[i].returned {
                            expected += 1;
                            if self.masks[top + i] {
                                arrived += 1;
                            }
                        }
                    }
                    if arrived != expected {
                        return Err(VgpuError::DivergentBarrier {
                            group: group.id,
                            arrived,
                            expected,
                        });
                    }
                    exec.counters.barriers += 1;
                    group.epoch += 1;
                    pc += 1;
                }
                RowOp::DeclLocal { cell, len, slot } => {
                    exec.counters.lockstep_rows += 1;
                    let idx = group.local.len();
                    group.local.push(vec![0.0; len]);
                    if exec.detect {
                        group.shadow_local.push(vec![ShadowCell::default(); len]);
                        group.local_names.push(exec.names[slot as usize].clone());
                    }
                    let p = V::Ptr(Ptr {
                        space: AddrSpace::Local,
                        buffer: idx,
                        offset: 0,
                    });
                    // The allocation is group-wide: every thread resolves the slot to it,
                    // regardless of the current mask (interpreter semantics).
                    for t in 0..n {
                        self.cells[t * ncells + cell as usize] = p;
                    }
                    pc += 1;
                }
                RowOp::DeclPrivate { cell, len } => {
                    exec.counters.lockstep_rows += 1;
                    let top = self.masks.len() - n;
                    for i in 0..n {
                        if !self.masks[top + i] || self.threads[i].returned {
                            continue;
                        }
                        let t = &mut self.threads[i];
                        let idx = t.private.len();
                        t.private.push(vec![0.0; len]);
                        self.cells[i * ncells + cell as usize] = V::Ptr(Ptr {
                            space: AddrSpace::Private,
                            buffer: idx,
                            offset: 0,
                        });
                    }
                    pc += 1;
                }
                RowOp::ZeroCell { cell } => {
                    exec.counters.lockstep_rows += 1;
                    let top = self.masks.len() - n;
                    for i in 0..n {
                        if self.masks[top + i] && !self.threads[i].returned {
                            self.cells[i * ncells + cell as usize] = V::Float(0.0);
                        }
                    }
                    pc += 1;
                }
                RowOp::Eval {
                    start,
                    len,
                    src,
                    dst,
                    lanes,
                } => {
                    exec.counters.lockstep_rows += 1;
                    let code = &self.prog.code[start as usize..(start + len) as usize];
                    let top = self.masks.len() - n;
                    for i in 0..n {
                        if !self.masks[top + i] || self.threads[i].returned {
                            continue;
                        }
                        let tc = &mut self.cells[i * ncells..(i + 1) * ncells];
                        run_prog(
                            code,
                            &self.prog.errors,
                            exec,
                            group,
                            &mut self.threads[i],
                            tc,
                            &mut self.scratch,
                        )?;
                        if dst != NO_DST {
                            for k in 0..lanes {
                                let v = rd(src + k, tc, &self.scratch);
                                tc[(dst + k) as usize] = v;
                            }
                        }
                    }
                    exec.flush_accesses();
                    pc += 1;
                }
                RowOp::If {
                    start,
                    len,
                    cond,
                    else_pc,
                    has_else,
                } => {
                    exec.counters.lockstep_rows += 1;
                    let code = &self.prog.code[start as usize..(start + len) as usize];
                    let top = self.masks.len() - n;
                    self.tm.fill(false);
                    self.em.fill(false);
                    let mut any_then = false;
                    for i in 0..n {
                        if !self.masks[top + i] || self.threads[i].returned {
                            continue;
                        }
                        let tc = &mut self.cells[i * ncells..(i + 1) * ncells];
                        run_prog(
                            code,
                            &self.prog.errors,
                            exec,
                            group,
                            &mut self.threads[i],
                            tc,
                            &mut self.scratch,
                        )?;
                        let c = rd(cond, tc, &self.scratch).as_bool();
                        exec.counters.int_ops += 1;
                        if c {
                            self.tm[i] = true;
                            any_then = true;
                        } else {
                            self.em[i] = true;
                        }
                    }
                    exec.flush_accesses();
                    if has_else {
                        self.else_masks.extend_from_slice(&self.em);
                        self.if_stack.push(any_then);
                    }
                    if any_then {
                        self.masks.extend_from_slice(&self.tm);
                        pc += 1;
                    } else {
                        pc = else_pc;
                    }
                }
                RowOp::Else { end_pc } => {
                    let then_pushed = self.if_stack.pop().expect("balanced if stack");
                    if then_pushed {
                        self.masks.truncate(self.masks.len() - n);
                    }
                    let off = self.else_masks.len() - n;
                    let any = self.else_masks[off..].iter().any(|b| *b);
                    if any {
                        for i in 0..n {
                            let b = self.else_masks[off + i];
                            self.masks.push(b);
                        }
                    }
                    self.else_masks.truncate(off);
                    pc = if any { pc + 1 } else { end_pc };
                }
                RowOp::EndIf => {
                    self.masks.truncate(self.masks.len() - n);
                    pc += 1;
                }
                RowOp::ForInit {
                    start,
                    len,
                    src,
                    cell,
                } => {
                    exec.counters.lockstep_rows += 1;
                    let code = &self.prog.code[start as usize..(start + len) as usize];
                    let top = self.masks.len() - n;
                    for i in 0..n {
                        if !self.masks[top + i] || self.threads[i].returned {
                            continue;
                        }
                        let tc = &mut self.cells[i * ncells..(i + 1) * ncells];
                        run_prog(
                            code,
                            &self.prog.errors,
                            exec,
                            group,
                            &mut self.threads[i],
                            tc,
                            &mut self.scratch,
                        )?;
                        let v = rd(src, tc, &self.scratch);
                        tc[cell as usize] = v;
                    }
                    exec.flush_accesses();
                    pc += 1;
                }
                RowOp::ForHead {
                    start,
                    len,
                    cond,
                    end_pc,
                } => {
                    // One row per round: the group-wide condition check.
                    exec.counters.lockstep_rows += 1;
                    let code = &self.prog.code[start as usize..(start + len) as usize];
                    let top = self.masks.len() - n;
                    self.tm.fill(false);
                    let mut any = false;
                    for i in 0..n {
                        if !self.masks[top + i] || self.threads[i].returned {
                            continue;
                        }
                        let tc = &mut self.cells[i * ncells..(i + 1) * ncells];
                        run_prog(
                            code,
                            &self.prog.errors,
                            exec,
                            group,
                            &mut self.threads[i],
                            tc,
                            &mut self.scratch,
                        )?;
                        let c = rd(cond, tc, &self.scratch).as_bool();
                        exec.counters.int_ops += 1;
                        if c {
                            self.tm[i] = true;
                            any = true;
                            exec.counters.loop_iterations += 1;
                        }
                    }
                    exec.flush_accesses();
                    if any {
                        self.masks.extend_from_slice(&self.tm);
                        pc += 1;
                    } else {
                        pc = end_pc;
                    }
                }
                RowOp::ForStep {
                    start,
                    len,
                    src,
                    cell,
                    slot,
                    head_pc,
                } => {
                    let code = &self.prog.code[start as usize..(start + len) as usize];
                    let top = self.masks.len() - n;
                    for i in 0..n {
                        if !self.masks[top + i] || self.threads[i].returned {
                            continue;
                        }
                        let tc = &mut self.cells[i * ncells..(i + 1) * ncells];
                        run_prog(
                            code,
                            &self.prog.errors,
                            exec,
                            group,
                            &mut self.threads[i],
                            tc,
                            &mut self.scratch,
                        )?;
                        let cur = tc[cell as usize];
                        if matches!(cur, V::None) {
                            return Err(VgpuError::UnknownVariable(
                                exec.names[slot as usize].clone(),
                            ));
                        }
                        let next = V::Int(cur.as_i64() + rd(src, tc, &self.scratch).as_i64());
                        exec.counters.int_ops += 1;
                        tc[cell as usize] = next;
                    }
                    self.masks.truncate(self.masks.len() - n);
                    exec.flush_accesses();
                    pc = head_pc;
                }
                RowOp::Fail { err } => {
                    exec.counters.lockstep_rows += 1;
                    return Err(self.prog.errors[err as usize].clone());
                }
            }
        }
        Ok(())
    }
}

/// Executes one row program for one work item.
#[allow(clippy::too_many_lines)]
fn run_prog(
    code: &[EOp],
    errors: &[VgpuError],
    exec: &mut Exec,
    group: &mut Group,
    thread: &mut Thread,
    cells: &mut [V],
    scratch: &mut [V],
) -> Result<(), VgpuError> {
    let mut pc = 0usize;
    while pc < code.len() {
        match code[pc] {
            EOp::IntC { dst, v } => scratch[dst as usize] = V::Int(v),
            EOp::FloatC { dst, v } => scratch[dst as usize] = V::Float(v),
            EOp::BoolC { dst, v } => scratch[dst as usize] = V::Bool(v),
            EOp::Mov { dst, src } => scratch[dst as usize] = rd(src, cells, scratch),
            EOp::SlotChk { cell, slot } => {
                if matches!(cells[cell as usize], V::None) {
                    return Err(VgpuError::UnknownVariable(
                        exec.names[slot as usize].clone(),
                    ));
                }
            }
            EOp::IdxOf { dst, src } => {
                scratch[dst as usize] = V::Int(rd(src, cells, scratch).as_i64());
            }
            EOp::Bin { op, dst, a, b } => {
                let va = rd(a, cells, scratch);
                let vb = rd(b, cells, scratch);
                scratch[dst as usize] = bin(exec, op, va, vb)?;
            }
            EOp::Neg { dst, src } => {
                exec.counters.flops += 1;
                scratch[dst as usize] = match rd(src, cells, scratch) {
                    V::Int(i) => V::Int(-i),
                    other => V::Float(-other.as_f64()),
                };
            }
            EOp::Not { dst, src } => {
                exec.counters.int_ops += 1;
                scratch[dst as usize] = V::Bool(!rd(src, cells, scratch).as_bool());
            }
            EOp::WorkItem { kind, dst, dim } => {
                let d = rd(dim, cells, scratch).as_i64() as usize;
                let v = match kind {
                    WorkItemFn::GlobalId => thread.gid[d],
                    WorkItemFn::LocalId => thread.lid[d],
                    WorkItemFn::GroupId => group.id[d],
                    WorkItemFn::GlobalSize => exec.config.global[d],
                    WorkItemFn::LocalSize => exec.config.local[d],
                    WorkItemFn::NumGroups => exec.config.num_groups()[d],
                };
                scratch[dst as usize] = V::Int(v as i64);
            }
            EOp::Math1 { kind, dst, src } => {
                let v = rd(src, cells, scratch).as_f64();
                exec.counters.flops += 4;
                let out = match kind {
                    Math1::Sqrt => v.sqrt(),
                    Math1::Rsqrt => 1.0 / v.sqrt(),
                    Math1::Fabs => v.abs(),
                    Math1::Exp => v.exp(),
                    Math1::Log => v.ln(),
                    Math1::Floor => v.floor(),
                };
                scratch[dst as usize] = V::Float(out);
            }
            EOp::Math2 { kind, dst, a, b } => {
                let x = rd(a, cells, scratch).as_f64();
                let y = rd(b, cells, scratch).as_f64();
                exec.counters.flops += 1;
                let out = match kind {
                    Math2::Min => x.min(y),
                    Math2::Max => x.max(y),
                };
                scratch[dst as usize] = V::Float(out);
            }
            EOp::Mad { dst, a, b, c } => {
                let x = rd(a, cells, scratch).as_f64();
                let y = rd(b, cells, scratch).as_f64();
                let z = rd(c, cells, scratch).as_f64();
                exec.counters.flops += 2;
                scratch[dst as usize] = V::Float(x * y + z);
            }
            EOp::CastInt { dst, src } => {
                scratch[dst as usize] = V::Int(rd(src, cells, scratch).as_i64());
            }
            EOp::CastFloat { dst, src } => {
                scratch[dst as usize] = V::Float(rd(src, cells, scratch).as_f64());
            }
            EOp::CastBool { dst, src } => {
                scratch[dst as usize] = V::Bool(rd(src, cells, scratch).as_bool());
            }
            EOp::ChargeInt { n } => exec.counters.int_ops += n,
            EOp::ChargeDivMod => exec.counters.div_mod_ops += 1,
            EOp::ChargeVec { width } => exec.counters.vector_accesses += width,
            EOp::ZChk { src } => {
                if rd(src, cells, scratch).as_i64() == 0 {
                    return Err(VgpuError::DivisionByZero);
                }
            }
            EOp::RAdd { dst, a, b } => {
                scratch[dst as usize] =
                    V::Int(rd(a, cells, scratch).as_i64() + rd(b, cells, scratch).as_i64());
            }
            EOp::RMul { dst, a, b } => {
                scratch[dst as usize] =
                    V::Int(rd(a, cells, scratch).as_i64() * rd(b, cells, scratch).as_i64());
            }
            EOp::RDivE { dst, a, b } => {
                scratch[dst as usize] = V::Int(
                    rd(a, cells, scratch)
                        .as_i64()
                        .div_euclid(rd(b, cells, scratch).as_i64()),
                );
            }
            EOp::RRemE { dst, a, b } => {
                scratch[dst as usize] = V::Int(
                    rd(a, cells, scratch)
                        .as_i64()
                        .rem_euclid(rd(b, cells, scratch).as_i64()),
                );
            }
            EOp::RPow { dst, src, e } => {
                scratch[dst as usize] = V::Int(rd(src, cells, scratch).as_i64().pow(e));
            }
            EOp::RMin { dst, a, b } => {
                scratch[dst as usize] = V::Int(
                    rd(a, cells, scratch)
                        .as_i64()
                        .min(rd(b, cells, scratch).as_i64()),
                );
            }
            EOp::RMax { dst, a, b } => {
                scratch[dst as usize] = V::Int(
                    rd(a, cells, scratch)
                        .as_i64()
                        .max(rd(b, cells, scratch).as_i64()),
                );
            }
            EOp::PtrChk { src, err } => {
                if rd(src, cells, scratch).as_ptr().is_none() {
                    return Err(errors[err as usize].clone());
                }
            }
            EOp::Load { dst, ptr, idx } => {
                let p = rd(ptr, cells, scratch)
                    .as_ptr()
                    .expect("pointer verified by PtrChk");
                let i = rd(idx, cells, scratch).as_i64();
                let v = exec.load(p, i, group, thread, 1)?;
                scratch[dst as usize] = V::Float(v.as_f64());
            }
            EOp::LoadLane {
                dst,
                ptr,
                idx,
                width,
                lane,
            } => {
                let p = rd(ptr, cells, scratch)
                    .as_ptr()
                    .expect("pointer verified by PtrChk");
                let i = rd(idx, cells, scratch).as_i64();
                let v = exec.load(
                    p,
                    i * i64::from(width) + i64::from(lane),
                    group,
                    thread,
                    width as usize,
                )?;
                scratch[dst as usize] = V::Float(v.as_f64());
            }
            EOp::StoreChk { ptr, idx, val, err } => {
                let v = rd(val, cells, scratch);
                if !matches!(v, V::Float(_) | V::Int(_) | V::Bool(_)) {
                    return Err(errors[err as usize].clone());
                }
                let p = rd(ptr, cells, scratch)
                    .as_ptr()
                    .expect("pointer verified by PtrChk");
                let i = rd(idx, cells, scratch).as_i64();
                exec.store(p, i, v.as_f64(), group, thread, 1)?;
            }
            EOp::StoreLane {
                ptr,
                idx,
                val,
                width,
                lane,
            } => {
                let p = rd(ptr, cells, scratch)
                    .as_ptr()
                    .expect("pointer verified by PtrChk");
                let i = rd(idx, cells, scratch).as_i64();
                let v = rd(val, cells, scratch).as_f64();
                exec.store(
                    p,
                    i * i64::from(width) + i64::from(lane),
                    v,
                    group,
                    thread,
                    width as usize,
                )?;
            }
            EOp::Jz { cond, target } => {
                if !rd(cond, cells, scratch).as_bool() {
                    pc = target as usize;
                    continue;
                }
            }
            EOp::Jmp { target } => {
                pc = target as usize;
                continue;
            }
            EOp::Fail { err } => return Err(errors[err as usize].clone()),
        }
        pc += 1;
    }
    Ok(())
}

/// The interpreter's `eval_bin` over scalar runtime values, charging by the dynamic path:
/// pointer arithmetic/comparison, integer ops, then mixed/floating point.
fn bin(exec: &mut Exec, op: CBinOp, a: V, b: V) -> Result<V, VgpuError> {
    if let V::Ptr(p) = a {
        return Ok(match op {
            CBinOp::Add => V::Ptr(Ptr {
                offset: p.offset + b.as_i64(),
                ..p
            }),
            CBinOp::Sub => V::Ptr(Ptr {
                offset: p.offset - b.as_i64(),
                ..p
            }),
            CBinOp::Eq => V::Bool(Some(p) == b.as_ptr()),
            CBinOp::Ne => V::Bool(Some(p) != b.as_ptr()),
            _ => return Err(VgpuError::NotAPointer("invalid pointer operation".into())),
        });
    }
    if let (V::Int(x), V::Int(y)) = (a, b) {
        return Ok(match op {
            CBinOp::Add | CBinOp::Sub | CBinOp::Mul => {
                exec.counters.int_ops += 1;
                V::Int(match op {
                    CBinOp::Add => x + y,
                    CBinOp::Sub => x - y,
                    _ => x * y,
                })
            }
            CBinOp::Div | CBinOp::Mod => {
                exec.counters.div_mod_ops += 1;
                if y == 0 {
                    return Err(VgpuError::DivisionByZero);
                }
                V::Int(if op == CBinOp::Div {
                    x.div_euclid(y)
                } else {
                    x.rem_euclid(y)
                })
            }
            _ => {
                exec.counters.int_ops += 1;
                V::Bool(compare(op, x as f64, y as f64))
            }
        });
    }
    let (x, y) = (a.as_f64(), b.as_f64());
    Ok(match op {
        CBinOp::Add | CBinOp::Sub | CBinOp::Mul | CBinOp::Div => {
            exec.counters.flops += 1;
            V::Float(match op {
                CBinOp::Add => x + y,
                CBinOp::Sub => x - y,
                CBinOp::Mul => x * y,
                _ => x / y,
            })
        }
        CBinOp::Mod => {
            exec.counters.div_mod_ops += 1;
            V::Float(x % y)
        }
        _ => {
            exec.counters.int_ops += 1;
            V::Bool(compare(op, x, y))
        }
    })
}
