//! Device profiles and launch configurations.
//!
//! The paper evaluates on two physical GPUs (an AMD Radeon R9 295X2 and an NVIDIA GTX Titan
//! Black). This reproduction replaces them with *device profiles*: sets of cost-model weights
//! that capture the performance characteristics the paper's optimisations interact with —
//! the relative cost of integer division/modulo, the penalty for uncoalesced global memory
//! traffic, the cost of barriers and loop overhead. Absolute numbers are not meaningful; the
//! profiles are calibrated so that *relative* comparisons (generated vs hand-written code,
//! optimisations on vs off) behave like the paper's Figure 8.

/// A work-group/ND-range launch configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Global work size per dimension.
    pub global: [usize; 3],
    /// Local (work-group) size per dimension.
    pub local: [usize; 3],
}

/// Why a [`LaunchConfig`] is invalid for a device (see [`DeviceProfile::validate_launch`]).
///
/// Before this typed validation existed, a too-large work group simply executed and the cost
/// counters silently described a machine with no occupancy limits; launches that violate the
/// device are now rejected up front.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// A global or local size is zero in some dimension.
    ZeroSize {
        /// The offending dimension (0, 1 or 2).
        dim: usize,
    },
    /// The local size does not divide the global size in some dimension.
    NotDivisible {
        /// The offending dimension (0, 1 or 2).
        dim: usize,
        /// The global size in that dimension.
        global: usize,
        /// The local size in that dimension.
        local: usize,
    },
    /// The work group (product of the local sizes) exceeds the device maximum.
    WorkGroupTooLarge {
        /// The requested work-group size.
        requested: usize,
        /// The device's maximum work-group size.
        max: usize,
    },
    /// A single dimension of the local size exceeds the device's per-dimension maximum.
    LocalDimTooLarge {
        /// The offending dimension (0, 1 or 2).
        dim: usize,
        /// The requested local size in that dimension.
        requested: usize,
        /// The device's maximum for that dimension.
        max: usize,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::ZeroSize { dim } => {
                write!(f, "launch size is zero in dimension {dim}")
            }
            LaunchError::NotDivisible { dim, global, local } => write!(
                f,
                "local size {local} does not divide global size {global} in dimension {dim}"
            ),
            LaunchError::WorkGroupTooLarge { requested, max } => write!(
                f,
                "work-group size {requested} exceeds the device maximum of {max}"
            ),
            LaunchError::LocalDimTooLarge {
                dim,
                requested,
                max,
            } => write!(
                f,
                "local size {requested} in dimension {dim} exceeds the device maximum of {max}"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

impl LaunchConfig {
    /// A one-dimensional launch.
    pub fn d1(global: usize, local: usize) -> LaunchConfig {
        LaunchConfig {
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// A two-dimensional launch.
    pub fn d2(global: (usize, usize), local: (usize, usize)) -> LaunchConfig {
        LaunchConfig {
            global: [global.0, global.1, 1],
            local: [local.0, local.1, 1],
        }
    }

    /// Number of work groups per dimension.
    ///
    /// # Panics
    ///
    /// Panics if any local size is zero or does not divide the global size.
    pub fn num_groups(&self) -> [usize; 3] {
        let mut out = [0; 3];
        for (d, slot) in out.iter_mut().enumerate() {
            assert!(self.local[d] > 0, "local size must be positive");
            assert_eq!(
                self.global[d] % self.local[d],
                0,
                "global size must be a multiple of the local size"
            );
            *slot = self.global[d] / self.local[d];
        }
        out
    }

    /// Total number of work items.
    pub fn total_work_items(&self) -> usize {
        self.global.iter().product()
    }

    /// Number of work items per work group.
    pub fn work_group_size(&self) -> usize {
        self.local.iter().product()
    }
}

/// Cost-model weights describing a GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// Width of the SIMD unit used for coalescing analysis (warp / wavefront size).
    pub simd_width: usize,
    /// Number of compute units able to execute work groups concurrently.
    pub compute_units: usize,
    /// Maximum work-group size (product of the local sizes) the device accepts.
    pub max_work_group_size: usize,
    /// Maximum local size per dimension (`CL_DEVICE_MAX_WORK_ITEM_SIZES`).
    pub max_work_item_sizes: [usize; 3],
    /// Cost of a floating-point operation.
    pub flop_cost: f64,
    /// Cost of a simple integer operation (add, mul, compare).
    pub int_op_cost: f64,
    /// Cost of an integer division or modulo; these are the operations array-access
    /// simplification removes (Section 7.4).
    pub div_mod_cost: f64,
    /// Issue cost charged per individual global-memory access, *on top of* the per-segment
    /// transaction cost. A perfectly coalesced warp still executes one load instruction per
    /// thread and occupies the LSU/bus for it — this term is what makes redundant
    /// overlapping reads (each stencil element fetched once per window it appears in)
    /// genuinely more expensive than staging the tile in local memory once.
    pub global_access_cost: f64,
    /// Cost of one coalesced global-memory transaction (per SIMD group and segment).
    pub global_transaction_cost: f64,
    /// Additional cost charged per *uncoalesced* global access.
    pub uncoalesced_penalty: f64,
    /// Cost of a local-memory access.
    pub local_access_cost: f64,
    /// Cost of a private-memory (register) access.
    pub private_access_cost: f64,
    /// Cost of a work-group barrier.
    pub barrier_cost: f64,
    /// Fixed overhead per executed loop iteration (condition + increment bookkeeping).
    pub loop_overhead: f64,
    /// Discount factor applied to vectorised memory operations (0.0–1.0; lower is cheaper).
    pub vector_access_discount: f64,
    /// Fixed cost per kernel launch (driver dispatch + device-wide synchronisation).
    ///
    /// Multi-kernel programs pay this once per stage, which is what makes the single- vs
    /// multi-stage decision a real trade-off for the auto-tuner: splitting buys parallelism
    /// in the first stage but pays an extra launch for every device-wide synchronisation
    /// point.
    pub launch_overhead: f64,
}

impl DeviceProfile {
    /// A profile modelled on the NVIDIA GTX Titan Black used in the paper: very sensitive to
    /// memory coalescing, moderately expensive integer division, cheap local memory.
    pub fn nvidia() -> DeviceProfile {
        DeviceProfile {
            name: "nvidia-titan-black".into(),
            simd_width: 32,
            compute_units: 15,
            max_work_group_size: 1024,
            max_work_item_sizes: [1024, 1024, 64],
            flop_cost: 1.0,
            int_op_cost: 1.0,
            div_mod_cost: 18.0,
            global_access_cost: 2.0,
            global_transaction_cost: 32.0,
            uncoalesced_penalty: 8.0,
            local_access_cost: 1.0,
            private_access_cost: 0.25,
            barrier_cost: 20.0,
            loop_overhead: 2.0,
            vector_access_discount: 0.85,
            launch_overhead: 800.0,
        }
    }

    /// A profile modelled on the AMD Radeon R9 295X2 used in the paper: wider wavefronts,
    /// more expensive integer division and barriers, cheaper vector accesses.
    pub fn amd() -> DeviceProfile {
        DeviceProfile {
            name: "amd-r9-295x2".into(),
            simd_width: 64,
            compute_units: 44,
            max_work_group_size: 256,
            max_work_item_sizes: [256, 256, 256],
            flop_cost: 1.0,
            int_op_cost: 1.1,
            div_mod_cost: 28.0,
            global_access_cost: 1.6,
            global_transaction_cost: 36.0,
            uncoalesced_penalty: 6.0,
            local_access_cost: 1.5,
            private_access_cost: 0.25,
            barrier_cost: 30.0,
            loop_overhead: 2.5,
            vector_access_discount: 0.7,
            launch_overhead: 1200.0,
        }
    }

    /// Checks that `launch` is executable on this device: positive sizes, local sizes that
    /// divide the global sizes, per-dimension local limits and the total work-group limit.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`LaunchError`].
    pub fn validate_launch(&self, launch: &LaunchConfig) -> Result<(), LaunchError> {
        for dim in 0..3 {
            if launch.global[dim] == 0 || launch.local[dim] == 0 {
                return Err(LaunchError::ZeroSize { dim });
            }
            if !launch.global[dim].is_multiple_of(launch.local[dim]) {
                return Err(LaunchError::NotDivisible {
                    dim,
                    global: launch.global[dim],
                    local: launch.local[dim],
                });
            }
            if launch.local[dim] > self.max_work_item_sizes[dim] {
                return Err(LaunchError::LocalDimTooLarge {
                    dim,
                    requested: launch.local[dim],
                    max: self.max_work_item_sizes[dim],
                });
            }
        }
        let wg = launch.work_group_size();
        if wg > self.max_work_group_size {
            return Err(LaunchError::WorkGroupTooLarge {
                requested: wg,
                max: self.max_work_group_size,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_config_dimensions() {
        let c = LaunchConfig::d1(1024, 128);
        assert_eq!(c.num_groups(), [8, 1, 1]);
        assert_eq!(c.total_work_items(), 1024);
        assert_eq!(c.work_group_size(), 128);
        let c = LaunchConfig::d2((64, 32), (16, 8));
        assert_eq!(c.num_groups(), [4, 4, 1]);
        assert_eq!(c.work_group_size(), 128);
    }

    #[test]
    #[should_panic(expected = "multiple of the local size")]
    fn non_divisible_launch_is_rejected() {
        LaunchConfig::d1(100, 32).num_groups();
    }

    #[test]
    fn launch_validation_catches_each_violation() {
        let nv = DeviceProfile::nvidia();
        assert_eq!(nv.validate_launch(&LaunchConfig::d1(1024, 128)), Ok(()));
        assert_eq!(
            nv.validate_launch(&LaunchConfig::d1(0, 1)),
            Err(LaunchError::ZeroSize { dim: 0 })
        );
        assert_eq!(
            nv.validate_launch(&LaunchConfig {
                global: [64, 1, 1],
                local: [64, 0, 1],
            }),
            Err(LaunchError::ZeroSize { dim: 1 })
        );
        assert_eq!(
            nv.validate_launch(&LaunchConfig::d1(100, 32)),
            Err(LaunchError::NotDivisible {
                dim: 0,
                global: 100,
                local: 32,
            })
        );
        // 2048 work items exceed the Titan Black's 1024 limit.
        assert_eq!(
            nv.validate_launch(&LaunchConfig::d1(4096, 2048)),
            Err(LaunchError::LocalDimTooLarge {
                dim: 0,
                requested: 2048,
                max: 1024,
            })
        );
        assert_eq!(
            nv.validate_launch(&LaunchConfig::d2((2048, 64), (1024, 2))),
            Err(LaunchError::WorkGroupTooLarge {
                requested: 2048,
                max: 1024,
            })
        );
        // The same 512-item work group is fine on NVIDIA but too large for the AMD profile.
        let big = LaunchConfig::d1(1024, 512);
        assert_eq!(nv.validate_launch(&big), Ok(()));
        assert!(matches!(
            DeviceProfile::amd().validate_launch(&big),
            Err(LaunchError::LocalDimTooLarge { .. })
        ));
    }

    #[test]
    fn profiles_differ_in_the_ways_that_matter() {
        let nv = DeviceProfile::nvidia();
        let amd = DeviceProfile::amd();
        assert_ne!(nv.simd_width, amd.simd_width);
        assert!(amd.div_mod_cost > nv.div_mod_cost);
        assert!(nv.uncoalesced_penalty > amd.uncoalesced_penalty);
        assert!(amd.vector_access_discount < nv.vector_access_discount);
    }
}
