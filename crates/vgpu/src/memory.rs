//! Runtime values and memory objects of the virtual GPU.

use lift_ocl::AddrSpace;

/// An argument passed to a kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub enum KernelArg {
    /// A global-memory buffer of `float` elements. Buffers are returned (possibly modified)
    /// after the launch.
    Buffer(Vec<f32>),
    /// A scalar `int` argument (array sizes, iteration counts, …).
    Int(i64),
    /// A scalar `float` argument.
    Float(f32),
}

impl KernelArg {
    /// Convenience constructor for a buffer of zeros (output buffers).
    pub fn zeros(len: usize) -> KernelArg {
        KernelArg::Buffer(vec![0.0; len])
    }
}

/// A pointer value: an address space, a buffer id within that space and an element offset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ptr {
    /// The address space of the pointee.
    pub space: AddrSpace,
    /// Index into the buffer table of that space.
    pub buffer: usize,
    /// Offset in elements from the start of the buffer.
    pub offset: i64,
}

/// A runtime value manipulated by the kernel interpreter.
#[derive(Clone, Debug, PartialEq)]
pub enum GpuValue {
    /// A floating-point value.
    Float(f64),
    /// An integer value.
    Int(i64),
    /// A boolean value.
    Bool(bool),
    /// A pointer into global, local or private memory.
    Ptr(Ptr),
    /// A short vector of values (OpenCL `float4` and friends).
    Vector(Vec<GpuValue>),
    /// A struct value used for tuples.
    Struct(Vec<GpuValue>),
}

impl GpuValue {
    /// Interprets the value as a float.
    pub fn as_f64(&self) -> f64 {
        match self {
            GpuValue::Float(v) => *v,
            GpuValue::Int(v) => *v as f64,
            GpuValue::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            _ => f64::NAN,
        }
    }

    /// Interprets the value as an integer (truncating floats).
    pub fn as_i64(&self) -> i64 {
        match self {
            GpuValue::Int(v) => *v,
            GpuValue::Float(v) => *v as i64,
            GpuValue::Bool(b) => i64::from(*b),
            _ => 0,
        }
    }

    /// Interprets the value as a boolean (non-zero = true).
    pub fn as_bool(&self) -> bool {
        match self {
            GpuValue::Bool(b) => *b,
            GpuValue::Int(v) => *v != 0,
            GpuValue::Float(v) => *v != 0.0,
            _ => false,
        }
    }

    /// Returns the pointer if this value is one.
    pub fn as_ptr(&self) -> Option<Ptr> {
        match self {
            GpuValue::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// Returns `true` if the value is numeric (float, int or bool).
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            GpuValue::Float(_) | GpuValue::Int(_) | GpuValue::Bool(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_between_scalar_kinds() {
        assert_eq!(GpuValue::Float(2.5).as_f64(), 2.5);
        assert_eq!(GpuValue::Int(3).as_f64(), 3.0);
        assert_eq!(GpuValue::Float(2.9).as_i64(), 2);
        assert!(GpuValue::Int(1).as_bool());
        assert!(!GpuValue::Float(0.0).as_bool());
        assert!(GpuValue::Bool(true).is_scalar());
    }

    #[test]
    fn pointer_round_trip() {
        let p = Ptr {
            space: AddrSpace::Local,
            buffer: 1,
            offset: 16,
        };
        let v = GpuValue::Ptr(p);
        assert_eq!(v.as_ptr(), Some(p));
        assert!(!v.is_scalar());
        assert_eq!(GpuValue::Int(0).as_ptr(), None);
    }

    #[test]
    fn zeros_creates_an_output_buffer() {
        match KernelArg::zeros(4) {
            KernelArg::Buffer(b) => assert_eq!(b, vec![0.0; 4]),
            other => panic!("expected buffer, got {other:?}"),
        }
    }
}
